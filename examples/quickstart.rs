//! Quickstart: stand up a SWAMP platform, register a soil probe, publish
//! sealed telemetry through the simulated network, and read it back through
//! the authorization layer.
//!
//! Run with: `cargo run --example quickstart`

use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, Platform};
use swamp::sensors::device::DeviceKind;
use swamp::sim::{SimDuration, SimTime};

fn main() {
    // A farm-fog deployment: the context broker lives on the farm premises
    // and keeps working through Internet outages.
    let mut platform = Platform::builder(DeploymentConfig::FarmFog)
        .seed(42)
        .build();

    // Register a soil-moisture probe owned by the demo farm. This creates
    // its network node + LPWAN link, provisions its link key, and records
    // it in the device registry.
    platform
        .register_device(
            SimTime::ZERO,
            "probe-ne-1",
            DeviceKind::SoilProbe,
            "owner:demo-farm",
        )
        .unwrap();

    // The device publishes an NGSI entity update. It is sealed with the
    // device key (ChaCha20 + HMAC) and crosses the lossy field radio.
    let mut publishes = 0;
    let mut t = SimTime::ZERO;
    while platform.observe().counter("ingest.accepted").unwrap() == 0 {
        let mut update = Entity::new("urn:swamp:device:probe-ne-1", "SoilProbe");
        update.set("moisture_vwc", 0.243);
        update.set("temperature_c", 21.7);
        update.set("seq", publishes as f64);
        platform
            .device_publish(t, "probe-ne-1", &update)
            .expect("publish accepted by the network");
        publishes += 1;
        t += SimDuration::from_secs(30);
        platform.pump(t);
    }
    println!("telemetry ingested after {publishes} transmission(s) over the lossy LPWAN link");

    // Users authenticate via the OAuth2-style identity provider; ownership
    // policies decide who can read the probe.
    platform
        .idm
        .register_user("maria", "vineyard$", &["owner:demo-farm"]);
    platform.idm.register_user("eve", "whatever", &[]);
    let (maria_token, _) = platform
        .idm
        .password_grant(t, "maria", "vineyard$")
        .expect("registered user");
    let (eve_token, _) = platform
        .idm
        .password_grant(t, "eve", "whatever")
        .expect("registered user");

    let entity = platform
        .authorized_read(t, &maria_token, "urn:swamp:device:probe-ne-1")
        .expect("the owner reads her own probe");
    println!(
        "maria (owner) reads moisture_vwc = {:?}",
        entity.number("moisture_vwc")
    );

    let denied = platform.authorized_read(t, &eve_token, "urn:swamp:device:probe-ne-1");
    println!("eve (no rights) read attempt denied: {}", denied.is_err());

    // The historical store answered the scheduler's questions.
    let last = platform
        .history
        .last("urn:swamp:device:probe-ne-1", "moisture_vwc")
        .expect("history recorded");
    println!(
        "history: last moisture sample = {:.3} at {}",
        last.value, last.at
    );

    // One merged observability snapshot covers the platform, network,
    // uplink engine, store and detector bank.
    let snap = platform.observe();
    println!("\nplatform counters:");
    for (name, value) in snap.counters() {
        println!("  {name:<32} {value}");
    }
}
