//! Fog-based availability: the platform keeps irrigating through a 12-hour
//! Internet outage, then replicates the buffered history to the cloud —
//! the paper's availability requirement, live.
//!
//! Run with: `cargo run --release --example fog_failover`

use swamp::codec::ngsi::Entity;
use swamp::core::platform::{DeploymentConfig, Platform};
use swamp::fog::availability::{AvailabilityTracker, OutageSchedule, ServedBy};
use swamp::sensors::device::DeviceKind;
use swamp::sim::{SimDuration, SimTime};

fn run(config: DeploymentConfig, label: &str) {
    let mut platform = Platform::builder(config).seed(7).build();
    platform
        .register_device(
            SimTime::ZERO,
            "probe-1",
            DeviceKind::SoilProbe,
            "owner:farm",
        )
        .unwrap();

    // Internet outage from hour 6 to hour 18 of a 36-hour window.
    let mut outage = OutageSchedule::new();
    outage.add_outage(SimTime::from_hours(6), SimTime::from_hours(18));

    let mut tracker = AvailabilityTracker::new(SimDuration::from_hours(1));
    for h in 0..36u64 {
        let t = SimTime::from_hours(h);
        platform.set_internet(!outage.is_down(t));

        let mut update = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
        update.set("moisture_vwc", 0.25 - 0.002 * h as f64);
        update.set("seq", h as f64);
        let _ = platform.device_publish(t, "probe-1", &update);
        platform.pump(t + SimDuration::from_mins(30));

        tracker.record(platform.service_point());
    }
    // Outage over; let replication drain.
    platform.set_internet(true);
    for extra in 0..12 {
        platform.pump(SimTime::from_hours(36 + extra));
    }

    let (cloud, fog, unserved) = tracker.breakdown();
    println!("== {label} ==");
    println!(
        "availability: {:.1}%  (cloud-served {cloud} h, fog-served {fog} h, unserved {unserved} h)",
        tracker.availability() * 100.0
    );
    let ingested = platform.observe().counter("ingest.accepted").unwrap();
    println!("telemetry ingested at the platform: {ingested}");
    if let Some(replica) = platform.cloud_replica() {
        println!(
            "cloud replica after reconnect: {} records ({} duplicates discarded)",
            replica.record_count(),
            replica.duplicates()
        );
    } else {
        println!("cloud-only: whatever the outage swallowed is gone");
    }
    println!();
}

fn main() {
    println!("12-hour Internet outage, hourly irrigation decisions, 36-hour window\n");
    run(DeploymentConfig::CloudOnly, "cloud-only deployment");
    run(DeploymentConfig::FarmFog, "farm-fog deployment");
    let _ = ServedBy::Fog; // (referenced for doc purposes)
}
