//! The CBEC pilot: optimizing water distribution from the consortium's
//! canal network to farms in a dry week — the pilot's stated primary goal.
//!
//! Builds a canal tree, telemeters per-farm demands, and compares the
//! physical upstream-first outcome against the SWAMP platform's centrally
//! computed max–min-fair allocation, with and without a gate failure.
//!
//! Run with: `cargo run --example cbec_distribution`

use swamp::irrigation::network::DistributionNetwork;
use swamp::pilots::experiments::e10_distribution;

fn main() {
    // A small legible scenario first.
    // Source (800 m³/day) → trunk (500) → { farm A (300),
    //                                        branch (250) → farm B (250), farm C (150) }
    // plus farm D (200) at the headworks.
    let mut net = DistributionNetwork::new(800.0);
    let trunk = net.add_junction(net.root(), 500.0);
    let branch = net.add_junction(trunk, 250.0);
    let a = net.add_farm(trunk, 300.0);
    let b = net.add_farm(branch, 250.0);
    let c = net.add_farm(branch, 150.0);
    let d = net.add_farm(net.root(), 200.0);
    let demands = net.demands();

    let names = [
        "A (trunk)",
        "B (branch)",
        "C (branch tail)",
        "D (headworks)",
    ];
    println!("farm demands: A=300 B=250 C=150 D=200 m3/day; source 800, trunk 500, branch 250\n");

    let greedy = net.allocate_greedy_upstream();
    let fair = net.allocate_max_min();
    println!("farm             greedy   max-min");
    for (i, farm) in [a, b, c, d].iter().enumerate() {
        println!(
            "{:<15} {:>7.0}  {:>8.0}",
            names[i], greedy.per_farm_m3[farm.0], fair.per_farm_m3[farm.0]
        );
    }
    println!(
        "\nJain fairness: greedy {:.3} vs max-min {:.3}",
        greedy.jain_fairness(&demands),
        fair.jain_fairness(&demands)
    );

    // A gate failure (or an attacker closing it — the paper's distribution
    // DoS) takes farm A offline; the platform reallocates.
    net.set_gate(a, false);
    let realloc = net.allocate_max_min();
    println!("\nafter farm A's gate closes (maintenance or attack):");
    for (i, farm) in [a, b, c, d].iter().enumerate() {
        println!("{:<15} {:>7.0}", names[i], realloc.per_farm_m3[farm.0]);
    }

    // The full E10 sweep across supply levels.
    println!("\n{}", e10_distribution(42).report());
}
