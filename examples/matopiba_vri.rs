//! The MATOPIBA pilot: Variable Rate Irrigation on a center pivot for
//! dry-season soybean — the paper's headline water/energy-saving scenario.
//!
//! Runs the full pilot comparison (smart policy vs conventional fixed
//! calendar), then demonstrates the machine-level VRI plan compilation.
//!
//! Run with: `cargo run --release --example matopiba_vri`

use swamp::irrigation::vri::{compile_plan, water_saving_vs_uniform, Prescription};
use swamp::pilots::pilots::{run_pilot, PilotSite};
use swamp::sensors::actuators::CenterPivot;
use swamp::sim::SimTime;

fn main() {
    let seed = 42;
    let report = run_pilot(PilotSite::Matopiba, seed);

    println!("=== {} ===", report.site.name());
    println!(
        "baseline (fixed calendar): {:>9.0} m3 water, {:>7.0} kWh, yield {:.3}",
        report.baseline.account.volume_m3,
        report.baseline.account.energy_kwh,
        report.baseline.mean_yield(),
    );
    println!(
        "smart (ET-driven VRI):     {:>9.0} m3 water, {:>7.0} kWh, yield {:.3}",
        report.smart.account.volume_m3,
        report.smart.account.energy_kwh,
        report.smart.mean_yield(),
    );
    println!(
        "savings: {:.1}% water, {:.1}% pumping energy, yield delta {:+.3}",
        report.water_saving() * 100.0,
        report.energy_saving() * 100.0,
        report.yield_delta(),
    );

    // Machine level: compile one day's per-zone prescription into a pivot
    // sector-speed plan.
    println!("\n--- VRI plan compilation for one pivot pass ---");
    let mut pivot = CenterPivot::new("pivot-1", 8, 18.0, 8.0);
    // Per-sector water need from this morning's soil-probe readings, mm.
    let rx = Prescription::new(vec![8.0, 12.0, 16.0, 10.0, 0.0, 8.0, 14.0, 9.0]);
    let plan = compile_plan(&pivot, &rx, 8.0);
    println!("sector  need_mm  speed  nozzles  achieved_mm");
    for s in 0..8 {
        println!(
            "{:>6}  {:>7.1}  {:>5.2}  {:>7}  {:>11.1}",
            s,
            rx.depths_mm()[s],
            plan.sector_speeds[s],
            if plan.nozzles_off[s] { "off" } else { "on" },
            plan.achieved_mm[s],
        );
    }
    let (vri_mean, uniform, saving) = water_saving_vs_uniform(&rx);
    println!(
        "\nthis pass: VRI applies {vri_mean:.1} mm mean vs {uniform:.1} mm uniform \
         ({:.0}% water saved)",
        saving * 100.0
    );

    pivot
        .set_sector_speeds(plan.sector_speeds.clone())
        .expect("plan is within the machine envelope");
    pivot.start(SimTime::ZERO);
    println!(
        "pivot accepted the plan; full revolution takes {:.1} h",
        pivot.revolution_hours()
    );
}
