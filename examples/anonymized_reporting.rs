//! Data governance: publishing a consortium yield report without exposing
//! individual farms to commodity-market eavesdroppers.
//!
//! The paper: "intruders may … even manipulate the commodity markets" and
//! "data anonymization is another helpful technique for data governance".
//! This example shows what each party sees: the raw data (the farms), the
//! k-anonymized publication (the market analysts), and the nothing an
//! eavesdropper gets off the sealed wire.
//!
//! Run with: `cargo run -p swamp --example anonymized_reporting`

use swamp::crypto::SecretKey;
use swamp::security::anonymize::{k_anonymize, Pseudonymizer, YieldRecord};
use swamp::security::attacks::Eavesdropper;
use swamp::sim::SimRng;

fn main() {
    // The consortium's private yield data for the season.
    let mut rng = SimRng::seed_from(42);
    let records: Vec<YieldRecord> = (0..24)
        .map(|i| YieldRecord {
            farm_id: format!("farm-{:02}", i),
            area_ha: 15.0 + rng.uniform_range(0.0, 120.0),
            yield_t_ha: 2.2 + rng.uniform_range(0.0, 2.4),
        })
        .collect();

    println!("--- raw records (never leave the consortium) ---");
    for r in records.iter().take(4) {
        println!(
            "{}  area {:>6.1} ha  yield {:>4.2} t/ha",
            r.farm_id, r.area_ha, r.yield_t_ha
        );
    }
    println!("… ({} records total)\n", records.len());

    // k-anonymized publication for analysts: every record indistinguishable
    // from at least k-1 others.
    let pseudo = Pseudonymizer::new(b"consortium-governance-key");
    for k in [2usize, 5, 10] {
        let report = k_anonymize(&records, k, &pseudo).expect("enough records");
        println!(
            "k={k:>2}: min class {}, re-identification risk <= {:.1}%, \
             information loss {:.0}%",
            report.min_class_size,
            report.reidentification_risk * 100.0,
            report.information_loss * 100.0
        );
        if k == 5 {
            println!("      sample published rows:");
            for r in report.records.iter().take(3) {
                println!(
                    "      {}  area [{:.0}, {:.0}) ha  yield [{:.2}, {:.2}) t/ha",
                    r.pseudonym, r.area_range.0, r.area_range.1, r.yield_range.0, r.yield_range.1
                );
            }
        }
    }

    // Wire view: the same report in transit, sealed. The eavesdropper by
    // the uplink learns nothing at all.
    let publication = format!("{records:?}");
    let key = SecretKey::derive(b"consortium uplink", "report-channel");
    let sealed = key.seal(&[1u8; 12], b"report", publication.as_bytes());
    let mut eve = Eavesdropper::new();
    eve.process([sealed.as_slice()]);
    println!(
        "\neavesdropper on the uplink: {} capture(s), plaintext leak fraction {:.0}%",
        eve.intercepted().len(),
        eve.leak_fraction() * 100.0
    );
}
