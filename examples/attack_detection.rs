//! The paper's §III threat model, attack by attack: each adversary runs
//! against the platform's defenses and the outcome is printed.
//!
//! Run with: `cargo run --release --example attack_detection`

use swamp::crypto::SecretKey;
use swamp::pilots::experiments::{e12_behavior, e2_dos, e3_tamper, e4_sybil};
use swamp::security::attacks::{Eavesdropper, Interception};

fn main() {
    let seed = 42;

    println!("### DoS on the broker (E2): flood vs SDN rate-guard mitigation\n");
    println!("{}", e2_dos(seed).report());

    println!("### Sensor-value tampering (E3): z-score detection sweep\n");
    println!("{}", e3_tamper(seed).report());

    println!("### Sybil NDVI swarm (E4): spatial-consistency filtering\n");
    println!("{}", e4_sybil(seed).report());

    println!("### Actuator takeover (E12): behavioral sequence baseline\n");
    println!("{}", e12_behavior(seed).report());

    // Eavesdropping: what the wire gives away with and without the
    // mandated cryptography.
    println!("### Eavesdropping on the field link\n");
    let market_sensitive = br#"{"farm":"guaspari","yield_t_ha":3.4,"quality":"A"}"#;
    let key = SecretKey::derive(b"pilot master secret", "link:probe-1");
    let sealed = key.seal(&[1u8; 12], b"probe-1", market_sensitive);

    let mut eve = Eavesdropper::new();
    eve.process([market_sensitive.as_slice(), sealed.as_slice()]);
    for (i, capture) in eve.intercepted().iter().enumerate() {
        match capture {
            Interception::Plaintext(text) => {
                println!("capture {i}: PLAINTEXT LEAK -> {text}")
            }
            Interception::Opaque { len } => {
                println!("capture {i}: opaque ciphertext ({len} bytes) — nothing learned")
            }
        }
    }
    println!(
        "\nleak fraction without crypto: 100% — with the platform's AEAD: {:.0}%",
        0.0
    );
}
