//! Online statistics used throughout SWAMP: by anomaly detectors (which keep
//! running baselines of sensor behavior), by the network substrate (latency
//! summaries) and by the experiment harnesses (result tables).

use std::fmt;

/// Numerically stable online mean/variance (Welford's algorithm).
///
/// # Example
/// ```
/// use swamp_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_std_dev(), 2.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n; 0 if empty).
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1; 0 if fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.sample_std_dev(),
            if self.n == 0 { 0.0 } else { self.min },
            if self.n == 0 { 0.0 } else { self.max },
        )
    }
}

/// Exponentially weighted moving average with optional variance tracking.
///
/// # Example
/// ```
/// use swamp_sim::stats::Ewma;
/// let mut e = Ewma::new(0.5);
/// e.push(10.0);
/// e.push(20.0);
/// assert_eq!(e.value(), 15.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
    variance: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0,1], got {alpha}"
        );
        Ewma {
            alpha,
            value: None,
            variance: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        match self.value {
            None => self.value = Some(x),
            Some(v) => {
                let delta = x - v;
                let incr = self.alpha * delta;
                self.value = Some(v + incr);
                // West (1979) exponentially weighted variance update.
                self.variance = (1.0 - self.alpha) * (self.variance + delta * incr);
            }
        }
    }

    /// Current smoothed value (0 before any observation).
    pub fn value(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// Whether at least one observation has been pushed.
    pub fn is_primed(&self) -> bool {
        self.value.is_some()
    }

    /// Exponentially weighted standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// A fixed-bin histogram over a closed range, with linear-interpolated
/// quantile estimation. Out-of-range samples are clamped into the edge bins
/// and counted, so quantiles remain monotone.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram of `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let nbins = self.bins.len();
        if x < self.lo {
            self.underflow += 1;
            self.bins[0] += 1;
        } else if x >= self.hi {
            self.overflow += 1;
            self.bins[nbins - 1] += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * nbins as f64) as usize;
            self.bins[idx.min(nbins - 1)] += 1;
        }
    }

    /// Total samples (including clamped ones).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples that fell below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Estimated quantile `q` in `[0,1]`, by linear interpolation within the
    /// containing bin. Returns `None` when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut cum = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = cum + c as f64;
            if next >= target && c > 0 {
                let frac = if c == 0 {
                    0.0
                } else {
                    (target - cum) / c as f64
                };
                return Some(self.lo + (i as f64 + frac.clamp(0.0, 1.0)) * width);
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Bin counts, for rendering.
    pub fn bin_counts(&self) -> &[u64] {
        &self.bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_textbook() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        for _ in 0..200 {
            e.push(42.0);
        }
        assert!((e.value() - 42.0).abs() < 1e-9);
        assert!(e.std_dev() < 1e-6);
    }

    #[test]
    fn ewma_first_sample_primes() {
        let mut e = Ewma::new(0.1);
        assert!(!e.is_primed());
        e.push(7.0);
        assert!(e.is_primed());
        assert_eq!(e.value(), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn histogram_quantiles_on_uniform_data() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..10_000 {
            h.push((i % 100) as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 2.0, "median {median}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() < 2.0, "p99 {p99}");
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(-5.0);
        h.push(15.0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bin_counts()[0], 1);
        assert_eq!(h.bin_counts()[9], 1);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new(0.0, 1.0, 20);
        let mut seed = 1u64;
        for _ in 0..1000 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.push((seed >> 11) as f64 / (1u64 << 53) as f64);
        }
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = h.quantile(i as f64 / 10.0).unwrap();
            assert!(q >= last, "quantiles must be monotone");
            last = q;
        }
    }
}
