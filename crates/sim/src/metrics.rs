//! A small metric registry shared by SWAMP components.
//!
//! **Role change (observability redesign):** platform pieces no longer
//! mutate a `Metrics` on their hot paths — they register typed handles with
//! `swamp-obs` and this registry survives only as a *read-compat view*
//! materialized from `ObsSnapshot::to_metrics()`. The string-keyed
//! event-mutators (`incr`, `incr_by`, `observe`) went through a deprecation
//! window and have been **removed**; the `deprecated-api` analyzer rule
//! keeps the names from coming back. Views are built with the absolute
//! setters ([`Metrics::set_counter`], [`Metrics::set_gauge`],
//! [`Metrics::set_summary`]). Iteration order stays lexicographic so
//! pre-migration report tables remain byte-identical.

use std::collections::BTreeMap;
use std::fmt;

use crate::stats::OnlineStats;

/// A string-keyed registry of counters, gauges and value summaries, kept as
/// the read-compat view over `swamp-obs` snapshots.
///
/// Iteration order is lexicographic (BTreeMap), so reports are stable.
///
/// # Example
/// ```
/// use swamp_sim::metrics::Metrics;
/// use swamp_sim::stats::OnlineStats;
/// let mut m = Metrics::new();
/// m.set_counter("broker.updates", 5);
/// m.set_gauge("fog.buffer_len", 17.0);
/// let mut lat = OnlineStats::new();
/// lat.push(12.5);
/// m.set_summary("net.latency_ms", lat);
/// assert_eq!(m.counter("broker.updates"), 5);
/// assert_eq!(m.gauge("fog.buffer_len"), Some(17.0));
/// assert_eq!(m.summary("net.latency_ms").unwrap().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    summaries: BTreeMap<String, OnlineStats>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Sets a counter to an absolute value (snapshot-view constructor).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Reads a counter (0 if never incremented).
    ///
    /// Note the long-standing footgun this keeps for compatibility: a
    /// never-registered (typo'd) name silently reads as 0. New code should
    /// read through `ObsSnapshot::counter`, which returns an `Err` for
    /// unknown names.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Sets a summary to pre-accumulated stats (snapshot-view constructor).
    pub fn set_summary(&mut self, name: &str, stats: OnlineStats) {
        self.summaries.insert(name.to_owned(), stats);
    }

    /// Reads a summary.
    pub fn summary(&self, name: &str) -> Option<&OnlineStats> {
        self.summaries.get(name)
    }

    /// Iterates counters in lexicographic order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in lexicographic order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates summaries in lexicographic order.
    pub fn summaries(&self) -> impl Iterator<Item = (&str, &OnlineStats)> {
        self.summaries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry into this one (counters add, gauges take the
    /// other's value, summaries merge).
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.summaries {
            self.summaries.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Clears everything.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.summaries.clear();
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "counter {k} = {v}")?;
        }
        for (k, v) in &self.gauges {
            writeln!(f, "gauge   {k} = {v}")?;
        }
        for (k, s) in &self.summaries {
            writeln!(f, "summary {k} : {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(values: &[f64]) -> OnlineStats {
        let mut s = OnlineStats::new();
        for v in values {
            s.push(*v);
        }
        s
    }

    #[test]
    fn counters_read_back() {
        let mut m = Metrics::new();
        m.set_counter("a", 10);
        assert_eq!(m.counter("a"), 10);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.set_gauge("g", 1.0);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn summaries_track_stats() {
        let mut m = Metrics::new();
        m.set_summary("lat", stats_of(&[10.0, 20.0]));
        let s = m.summary("lat").unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 15.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Metrics::new();
        a.set_counter("c", 3);
        a.set_summary("s", stats_of(&[1.0]));
        let mut b = Metrics::new();
        b.set_counter("c", 4);
        b.set_summary("s", stats_of(&[3.0]));
        b.set_gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 7);
        assert_eq!(a.summary("s").unwrap().mean(), 2.0);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    fn display_is_stable_and_nonempty() {
        let mut m = Metrics::new();
        m.set_counter("z.last", 1);
        m.set_counter("a.first", 1);
        let text = m.to_string();
        let a_pos = text.find("a.first").unwrap();
        let z_pos = text.find("z.last").unwrap();
        assert!(a_pos < z_pos, "lexicographic order expected");
    }

    #[test]
    fn view_setters_overwrite_absolutely() {
        let mut m = Metrics::new();
        m.set_counter("c", 7);
        m.set_counter("c", 3);
        assert_eq!(m.counter("c"), 3);
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        m.set_summary("lat", s);
        assert_eq!(m.summary("lat").unwrap().mean(), 2.0);
    }

    #[test]
    fn reset_clears() {
        let mut m = Metrics::new();
        m.set_counter("c", 1);
        m.set_gauge("g", 1.0);
        m.set_summary("s", stats_of(&[1.0]));
        m.reset();
        assert_eq!(m.counter("c"), 0);
        assert_eq!(m.gauge("g"), None);
        assert!(m.summary("s").is_none());
    }
}
