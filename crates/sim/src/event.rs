//! A deterministic discrete-event queue.
//!
//! [`EventQueue`] orders events by virtual timestamp and, among simultaneous
//! events, by insertion order (stable FIFO). This tie-break is what makes
//! SWAMP scenarios bit-reproducible: a `BinaryHeap` alone would pop equal-time
//! events in an arbitrary order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first,
        // and among equal times lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list keyed by [`SimTime`], FIFO-stable at equal times.
///
/// # Example
/// ```
/// use swamp_sim::{SimTime, event::EventQueue};
/// let mut q = EventQueue::new();
/// let t = SimTime::from_secs(10);
/// q.schedule(t, "first");
/// q.schedule(t, "second"); // same instant: preserves insertion order
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The virtual time of the most recently popped event (initially zero).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at absolute time `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — scheduling into
    /// the past would silently corrupt causality.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `horizon`; the clock never advances past `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Drops all pending events (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.schedule(SimTime::from_secs(20), "b");
        assert_eq!(q.pop_until(SimTime::from_secs(15)).unwrap().1, "a");
        assert!(q.pop_until(SimTime::from_secs(15)).is_none());
        assert_eq!(q.len(), 1);
        // Clock did not advance past the horizon.
        assert_eq!(q.now(), SimTime::from_secs(10));
        assert_eq!(q.pop_until(SimTime::from_secs(20)).unwrap().1, "b");
    }

    #[test]
    fn schedule_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "a");
        q.pop();
        q.schedule(q.now(), "b"); // zero-delay event at the current instant
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.pop();
        q.schedule(q.now() + SimDuration::from_secs(1), ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_secs(1));
    }
}
