//! Deterministic pseudo-random number generation for SWAMP simulations.
//!
//! [`SimRng`] wraps the xoshiro256** algorithm (Blackman & Vigna), which is
//! fast, has a 256-bit state, and passes BigCrush. We implement it here
//! rather than depending on an external generator so that every SWAMP
//! experiment is reproducible from a single `u64` seed regardless of
//! dependency versions, and so that the generator can be *split* into
//! independent per-device streams without correlation.

use std::fmt;

/// A deterministic xoshiro256** generator with simulation-oriented helpers.
///
/// # Example
/// ```
/// use swamp_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // State intentionally elided: printing it would invite seed reuse bugs.
        write!(f, "SimRng {{ .. }}")
    }
}

/// SplitMix64, used to expand a 64-bit seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator for a named stream.
    ///
    /// Used to give each simulated device its own uncorrelated stream while
    /// keeping the whole scenario reproducible from one scenario seed.
    pub fn split(&mut self, label: &str) -> SimRng {
        // Mix the label into a fresh seed drawn from this generator.
        let mut h: u64 = 0xcbf29ce484222325; // FNV-1a offset basis
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        SimRng::seed_from(self.next_u64() ^ h)
    }

    /// Next raw 64 bits (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn uniform_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid uniform range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.uniform_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "invalid int range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform_f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal variate via the Marsaglia polar method.
    pub fn normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform_f64() - 1.0;
            let v = 2.0 * self.uniform_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev` is negative.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std_dev {std_dev}");
        mean + std_dev * self.normal()
    }

    /// Exponential variate with the given rate `lambda` (mean `1/lambda`).
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(
            lambda > 0.0,
            "exponential rate must be positive, got {lambda}"
        );
        // Inverse CDF; 1-u avoids ln(0).
        -(1.0 - self.uniform_f64()).ln() / lambda
    }

    /// Poisson variate with the given mean.
    ///
    /// Uses Knuth's method for small means and a normal approximation above
    /// 30, which is accurate enough for the traffic models that use it.
    ///
    /// # Panics
    /// Panics if `mean` is negative or not finite.
    pub fn poisson(&mut self, mean: f64) -> u64 {
        assert!(
            mean.is_finite() && mean >= 0.0,
            "invalid Poisson mean {mean}"
        );
        if mean == 0.0 {
            return 0;
        }
        if mean > 30.0 {
            let x = self.normal_with(mean, mean.sqrt()).round();
            return if x < 0.0 { 0 } else { x as u64 };
        }
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_streams_are_reproducible_and_distinct() {
        let mut root1 = SimRng::seed_from(9);
        let mut root2 = SimRng::seed_from(9);
        let mut c1 = root1.split("device-1");
        let mut c2 = root2.split("device-1");
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut root = SimRng::seed_from(9);
        let mut a = root.split("device-1");
        let mut b = root.split("device-2");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut r = SimRng::seed_from(42);
        for _ in 0..10_000 {
            let x = r.uniform_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_uniform_enough() {
        let mut r = SimRng::seed_from(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±5%.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn int_range_hits_bounds() {
        let mut r = SimRng::seed_from(77);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.int_range(-3, 3);
            assert!((-3..=3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 3;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from(13);
        let n = 100_000;
        let lambda = 2.5;
        let mean: f64 = (0..n).map(|_| r.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / lambda).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn poisson_mean_small_and_large() {
        let mut r = SimRng::seed_from(17);
        let n = 50_000;
        for target in [0.5, 4.0, 50.0] {
            let mean: f64 = (0..n).map(|_| r.poisson(target) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - target).abs() < target.max(1.0) * 0.05,
                "target {target} mean {mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped rather than panicking.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(21);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn pick_handles_empty() {
        let mut r = SimRng::seed_from(1);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        assert_eq!(r.pick(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
