//! Virtual time for the SWAMP simulations.
//!
//! [`SimTime`] is an instant measured in milliseconds since the simulation
//! epoch (the start of the scenario, conventionally midnight of day-of-year
//! 1). [`SimDuration`] is a span between two instants. Both are plain `u64`
//! newtypes: cheap to copy, totally ordered, and free of wall-clock leakage.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Milliseconds in one second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;
/// Milliseconds in one (simulation) day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

/// An instant of virtual time, in milliseconds since the simulation epoch.
///
/// # Example
/// ```
/// use swamp_sim::{SimTime, SimDuration};
/// let t = SimTime::from_days(2) + SimDuration::from_hours(6);
/// assert_eq!(t.day(), 2);
/// assert_eq!(t.hour_of_day(), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MILLIS_PER_SEC)
    }

    /// Creates an instant from whole hours since the epoch.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * MILLIS_PER_HOUR)
    }

    /// Creates an instant from whole days since the epoch.
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * MILLIS_PER_DAY)
    }

    /// Raw milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0 / MILLIS_PER_SEC
    }

    /// Seconds since the epoch as a float (for physics/agronomy math).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Whole simulation days elapsed since the epoch (day 0 is the first day).
    pub const fn day(self) -> u64 {
        self.0 / MILLIS_PER_DAY
    }

    /// Hour of the current day, `0..=23`.
    pub const fn hour_of_day(self) -> u64 {
        (self.0 % MILLIS_PER_DAY) / MILLIS_PER_HOUR
    }

    /// Fraction of the current day elapsed, `0.0..1.0`.
    pub fn day_fraction(self) -> f64 {
        (self.0 % MILLIS_PER_DAY) as f64 / MILLIS_PER_DAY as f64
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Elapsed duration since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let h = self.hour_of_day();
        let m = (self.0 % MILLIS_PER_HOUR) / MILLIS_PER_MIN;
        let s = (self.0 % MILLIS_PER_MIN) / MILLIS_PER_SEC;
        let ms = self.0 % MILLIS_PER_SEC;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of virtual time, in milliseconds.
///
/// # Example
/// ```
/// use swamp_sim::SimDuration;
/// let d = SimDuration::from_mins(90);
/// assert_eq!(d.as_hours_f64(), 1.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MILLIS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MILLIS_PER_MIN)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * MILLIS_PER_HOUR)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MILLIS_PER_DAY)
    }

    /// Creates a duration from fractional seconds, rounding to milliseconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Raw milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / MILLIS_PER_SEC
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Hours as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// Days as a float.
    pub fn as_days_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_DAY as f64
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({}ms)", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MILLIS_PER_DAY {
            write!(f, "{:.2}d", self.as_days_f64())
        } else if self.0 >= MILLIS_PER_HOUR {
            write!(f, "{:.2}h", self.as_hours_f64())
        } else if self.0 >= MILLIS_PER_SEC {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(5);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour_of_day(), 5);
        assert_eq!(t - SimTime::from_days(3), SimDuration::from_hours(5));
    }

    #[test]
    fn duration_since_is_exact() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(25);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(25);
        let _ = a.duration_since(b);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_secs(10);
        let b = SimTime::from_secs(25);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    fn day_fraction_ranges() {
        assert_eq!(SimTime::from_days(1).day_fraction(), 0.0);
        let noon = SimTime::from_days(1) + SimDuration::from_hours(12);
        assert!((noon.day_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds_to_millis() {
        assert_eq!(SimDuration::from_secs_f64(1.2345).as_millis(), 1235);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(0).to_string(), "d0+00:00:00.000");
        let t = SimTime::from_days(2) + SimDuration::from_mins(61);
        assert_eq!(t.to_string(), "d2+01:01:00.000");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_hours(36).to_string(), "1.50d");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_mins(10);
        assert_eq!(d * 6, SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(1) / 4, SimDuration::from_mins(15));
    }
}
