//! # swamp-sim — deterministic simulation kernel for the SWAMP platform
//!
//! This crate is the substrate every other SWAMP crate builds on. It provides:
//!
//! - [`SimTime`] / [`SimDuration`] — virtual time (no wall-clock anywhere in
//!   the simulation), with calendar helpers for agronomic models that think
//!   in days-of-year.
//! - [`rng::SimRng`] — a seedable, splittable xoshiro256** PRNG plus the
//!   distributions the sensor and weather models need (uniform, normal,
//!   exponential, Poisson, Bernoulli).
//! - [`event::EventQueue`] — a deterministic discrete-event queue with
//!   stable FIFO ordering among simultaneous events.
//! - [`stats`] — online statistics (Welford mean/variance, EWMA, histograms,
//!   quantile estimation) used by detectors and by the experiment harnesses.
//! - [`metrics`] — a tiny metric registry for counters/gauges shared by the
//!   platform components and printed by the experiment harnesses.
//!
//! Everything is deterministic given a seed: repeated runs of any SWAMP
//! experiment with the same seed produce identical output.
//!
//! ## Example
//!
//! ```
//! use swamp_sim::{SimTime, SimDuration, event::EventQueue, rng::SimRng};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(5), "sample");
//! q.schedule(SimTime::ZERO + SimDuration::from_secs(1), "boot");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "boot");
//! assert_eq!(t.as_secs(), 1);
//!
//! let mut rng = SimRng::seed_from(42);
//! let x = rng.uniform_f64(); // deterministic for seed 42
//! assert!((0.0..1.0).contains(&x));
//! ```

pub mod event;
pub mod metrics;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
