//! # swamp-workload — the pilot-diverse workload engine
//!
//! The paper grounds SWAMP in four pilots — CBEC (Bologna, canal
//! distribution), Intercrop (Cartagena, phase-shifted horticulture),
//! Guaspari (Espírito Santo do Pinhal, drone-surveyed vineyard) and
//! MATOPIBA (Brazilian cerrado, large open-loop fleets) — and argues the
//! platform must serve all of them at once. This crate turns each pilot
//! into a *distinct, reproducible workload*: one [`WorkloadSpec`] compiles
//! into a [`CompiledWorkload`] — a per-round schedule of NGSI entity
//! updates shaped like that pilot's traffic:
//!
//! - **CBEC** — diurnal telemetry (daytime-heavy reporting over a
//!   drawdown/refill irrigation cycle);
//! - **Intercrop** — seasonal/night-shifted reporting with two sampling
//!   cohorts at different cadences and night irrigation windows;
//! - **Guaspari** — mobile-fog drone collection: every probe samples
//!   continuously but delivers only inside its node's non-overlapping
//!   contact windows, flushing the buffered backlog in order;
//! - **MATOPIBA** — open-loop arrivals at a declared rate (the offered
//!   load never adapts to the platform), with scheduled uplink partitions
//!   whose heal triggers a reconnection storm that conserves every queued
//!   record.
//!
//! Every record carries a ground-truth [`Label`] on the side, and a spec
//! may overlay labeled attacks ([`AttackOverlay`]: Sybil bursts,
//! sensor-tamper drift, actuator-takeover sequences) so detector
//! experiments can score precision/recall against truth instead of
//! eyeballing alert logs. Compilation is a pure function of the spec —
//! same seed, byte-identical stream ([`CompiledWorkload::stream_digest`])
//! — which is what makes the E16 harness and the detector differential
//! suite (`crates/pilots/tests/`) possible.
//!
//! ## Example
//!
//! ```
//! use swamp_workload::{Pilot, WorkloadSpec};
//!
//! let spec = WorkloadSpec::new(Pilot::Guaspari, 42, 16, 96);
//! let w = spec.compile();
//! assert_eq!(w.batches.len(), 96);
//! assert!(w.generated > 0);
//! // Same spec, same stream — bit for bit.
//! assert_eq!(w.stream_digest(), spec.compile().stream_digest());
//! ```

pub mod signal;
pub mod spec;

pub use signal::{is_day, MoistureSignal, JUMP_QUANTUM, STEADY_QUANTUM};
pub use spec::{
    AttackOverlay, CompiledWorkload, ContactWindow, Label, LabeledRecord, Pilot, RoundBatch,
    WorkloadSpec,
};
