//! `WorkloadSpec` → `CompiledWorkload`: the deterministic compiler from
//! a pilot profile to a per-round schedule of labeled NGSI records.
//!
//! Compilation is a pure function of the spec. Every device owns a
//! [`SimRng`] split off the spec seed by device id, and physics
//! ([`MoistureSignal::advance`]/[`MoistureSignal::sense`]) consume
//! randomness every round whether or not the round's sample is
//! delivered — so the *delivery shaping* (cadence, drone windows,
//! partitions) can never bend the *physical* signal. That is what makes
//! the same spec byte-identical ([`CompiledWorkload::stream_digest`])
//! and the per-pilot streams independent of each other.
//!
//! Delivery conservation: every record that enters the delivery
//! pipeline (`offered`) is eventually emitted (`generated`) — Guaspari
//! flushes buffered backlogs inside contact windows and at
//! end-of-horizon, MATOPIBA's partition heal flushes the queued storm —
//! so `generated == offered` for every compiled workload.

use std::collections::{BTreeMap, BTreeSet};

use swamp_codec::ngsi::{Attribute, Entity};
use swamp_sim::{SimDuration, SimRng, SimTime};

use crate::signal::{is_day, MoistureSignal};

/// Entity type stamped on every workload record.
pub const ENTITY_TYPE: &str = "SoilProbe";

/// Attribute name carrying the soil-moisture signal — the attribute the
/// behavioral baseline (`swamp_security::baseline`) correlates.
pub const SIGNAL_ATTR: &str = "moisture_vwc";

const MILLIS_PER_DAY: u64 = 24 * 60 * 60 * 1_000;

/// The four SWAMP pilots (paper §I), each compiled into a distinct
/// traffic profile by [`WorkloadSpec::compile`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pilot {
    /// Bologna canal-distribution consortium: diurnal telemetry —
    /// every probe reports each daytime round, one round in four by
    /// night, over a day-irrigated drawdown/refill cycle.
    Cbec,
    /// Cartagena intercrop horticulture: night-shifted and seasonal —
    /// one cohort reports only at night (when the irrigation window
    /// is open), the other on an every-other-round cadence, and ET
    /// swings over the growing season.
    Intercrop,
    /// Espírito Santo do Pinhal vineyard: mobile-fog drone collection —
    /// probes sample every round but deliver only inside their node's
    /// contact windows, flushing the buffered backlog in order.
    Guaspari,
    /// Brazilian cerrado (MATOPIBA) open-loop fleet: each probe offers
    /// a record with fixed probability per round regardless of platform
    /// state, and scheduled uplink partitions queue traffic that the
    /// heal releases as one reconnection storm.
    Matopiba,
}

impl Pilot {
    /// All four pilots, in paper order.
    pub fn all() -> [Pilot; 4] {
        [
            Pilot::Cbec,
            Pilot::Intercrop,
            Pilot::Guaspari,
            Pilot::Matopiba,
        ]
    }

    /// Short lowercase name (device-id prefix, RNG split label).
    pub fn name(&self) -> &'static str {
        match self {
            Pilot::Cbec => "cbec",
            Pilot::Intercrop => "intercrop",
            Pilot::Guaspari => "guaspari",
            Pilot::Matopiba => "matopiba",
        }
    }
}

/// Ground-truth label carried on the side of every emitted record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Label {
    /// Honest telemetry from a legitimate probe.
    Normal,
    /// Traffic from an injected identity that joined after the
    /// training horizon (Sybil burst).
    Sybil,
    /// Reading from a compromised sensor under cumulative additive
    /// drift.
    Tamper,
    /// Reading taken while an attacker forces the actuator on
    /// (back-to-back refill jumps).
    Takeover,
}

impl Label {
    /// Stable short name (fixture keys, digests).
    pub fn as_str(&self) -> &'static str {
        match self {
            Label::Normal => "normal",
            Label::Sybil => "sybil",
            Label::Tamper => "tamper",
            Label::Takeover => "takeover",
        }
    }

    fn as_byte(self) -> u8 {
        match self {
            Label::Normal => 0,
            Label::Sybil => 1,
            Label::Tamper => 2,
            Label::Takeover => 3,
        }
    }
}

/// A labeled attack overlay. Tamper victims are taken from the *front*
/// of the fleet and takeover victims from the *back*, so overlays stay
/// disjoint as long as their device counts sum to at most the fleet
/// size.
#[derive(Clone, Debug, PartialEq)]
pub enum AttackOverlay {
    /// `count` fake identities appear at `start_round` and inject a
    /// bounded random-walk signal every round for `rounds` rounds.
    SybilBurst {
        start_round: usize,
        rounds: usize,
        count: usize,
    },
    /// The first `devices` probes report values with a cumulative
    /// additive drift of `drift_per_round` from `start_round` to the
    /// end of the horizon (a compromised sensor stays compromised).
    TamperDrift {
        start_round: usize,
        devices: usize,
        drift_per_round: f64,
    },
    /// The last `devices` probes have their irrigation actuator forced
    /// on each round in `[start_round, start_round + rounds)` —
    /// physical moisture jumps every round.
    ActuatorTakeover {
        start_round: usize,
        rounds: usize,
        devices: usize,
    },
}

/// One drone contact window: node `node` can deliver in
/// `[start, end)`. Windows are non-overlapping per node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContactWindow {
    pub node: usize,
    pub start: SimTime,
    pub end: SimTime,
}

/// One emitted record plus its ground truth.
#[derive(Clone, Debug)]
pub struct LabeledRecord {
    /// The NGSI update (single `moisture_vwc` attribute stamped with
    /// the sample time).
    pub entity: Entity,
    /// Device id (the entity id, duplicated for cheap set building).
    pub device: String,
    /// Ground truth for this record.
    pub label: Label,
    /// When the sample was physically taken (≤ the batch round time
    /// for buffered deliveries).
    pub sampled_at: SimTime,
}

/// All records delivered in one round.
#[derive(Clone, Debug, Default)]
pub struct RoundBatch {
    /// Delivery time of the round.
    pub at: SimTime,
    pub records: Vec<LabeledRecord>,
}

impl RoundBatch {
    fn new(at: SimTime) -> Self {
        RoundBatch {
            at,
            records: Vec::new(),
        }
    }
}

/// The deterministic workload description: pilot, seed, fleet size,
/// horizon and optional attack overlays.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    pub pilot: Pilot,
    pub seed: u64,
    /// Legitimate fleet size (Sybil identities come on top).
    pub devices: usize,
    /// Horizon in rounds; `compile` emits exactly this many batches.
    pub rounds: usize,
    /// Time of round 0.
    pub start: SimTime,
    /// Round cadence (default 30 min — 48 rounds per simulated day).
    pub step: SimDuration,
    pub attacks: Vec<AttackOverlay>,
}

impl WorkloadSpec {
    /// A spec with the default cadence (30-minute rounds starting at
    /// t = 60 s) and no attacks.
    pub fn new(pilot: Pilot, seed: u64, devices: usize, rounds: usize) -> Self {
        WorkloadSpec {
            pilot,
            seed,
            devices,
            rounds,
            start: SimTime::from_secs(60),
            step: SimDuration::from_mins(30),
            attacks: Vec::new(),
        }
    }

    /// Adds labeled attack overlays.
    pub fn with_attacks(mut self, attacks: Vec<AttackOverlay>) -> Self {
        self.attacks = attacks;
        self
    }

    /// Declared per-round arrival bounds for *honest* traffic, as
    /// fractions of the fleet, holding on every round outside
    /// partitions/storms. `None` for Guaspari, whose per-round
    /// arrivals are bursty by design (0 between contacts, a backlog
    /// flush inside them) — its invariant is conservation, not rate.
    /// Bounds are sized for fleets of ≥ 64 devices (binomial spread).
    pub fn declared_rate_bounds(&self) -> Option<(f64, f64)> {
        match self.pilot {
            // Day rounds: the whole fleet. Night rounds: one in four.
            Pilot::Cbec => Some((0.15, 1.0)),
            // Night: cohort A (half) + half of cohort B = 3/4 of the
            // fleet. Day: half of cohort B = 1/4.
            Pilot::Intercrop => Some((0.12, 0.85)),
            Pilot::Guaspari => None,
            // Open loop: Bernoulli(0.6) per device per round.
            Pilot::Matopiba => Some((0.35, 0.85)),
        }
    }

    /// The round index → delivery time mapping used by `compile`.
    pub fn round_time(&self, round: usize) -> SimTime {
        self.start + self.step * round as u64
    }

    /// Compiles the spec into its per-round schedule. Pure: same spec,
    /// byte-identical stream.
    pub fn compile(&self) -> CompiledWorkload {
        Compiler::new(self).run()
    }
}

/// The compiled schedule plus the metadata the property suite and the
/// E16 harness score against.
#[derive(Clone, Debug)]
pub struct CompiledWorkload {
    pub pilot: Pilot,
    pub seed: u64,
    /// Exactly `spec.rounds` batches, one per round (possibly empty).
    pub batches: Vec<RoundBatch>,
    /// Records emitted across all batches.
    pub generated: u64,
    /// Records that entered the delivery pipeline (emitted or
    /// buffered). Always equals `generated`: buffers flush inside
    /// contact windows, at partition heals and at end-of-horizon.
    pub offered: u64,
    /// Ground-truth record counts per label.
    pub label_counts: BTreeMap<Label, u64>,
    /// Guaspari drone contact windows (empty for other pilots).
    pub contact_windows: Vec<ContactWindow>,
    /// MATOPIBA uplink partitions as `[start, end)` delivery-time
    /// windows (empty for other pilots). No record is delivered inside
    /// a partition; the heal round carries the storm.
    pub partitions: Vec<(SimTime, SimTime)>,
    /// Legitimate device ids, in fleet order.
    pub devices: Vec<String>,
    /// Ground truth: every device (incl. Sybil identities) that
    /// emitted at least one non-[`Label::Normal`] record.
    pub attack_devices: BTreeSet<String>,
}

impl CompiledWorkload {
    /// FNV-1a digest over the full delivery stream — batch times,
    /// device ids, labels and serialized entities. Two compilations of
    /// the same spec produce the same digest, bit for bit.
    pub fn stream_digest(&self) -> u64 {
        let mut h = Fnv::new();
        for batch in &self.batches {
            h.write(&batch.at.as_millis().to_le_bytes());
            for r in &batch.records {
                h.write(r.device.as_bytes());
                h.write(&[0xff, r.label.as_byte()]);
                h.write(&r.sampled_at.as_millis().to_le_bytes());
                h.write(r.entity.to_json().to_compact_string().as_bytes());
                h.write(&[0xfe]);
            }
        }
        h.finish()
    }

    /// Total records carrying the given label.
    pub fn label_count(&self, label: Label) -> u64 {
        self.label_counts.get(&label).copied().unwrap_or(0)
    }
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// One legitimate probe in flight: physics, identity, delivery state.
struct DeviceSim {
    id: String,
    rng: SimRng,
    signal: MoistureSignal,
    /// Cadence phase for sub-sampled reporting (CBEC nights,
    /// Intercrop cohort B).
    phase: u64,
    /// Intercrop: 0 = night cohort, 1 = cadence cohort.
    cohort: u8,
    /// Guaspari: index of the drone node serving this probe.
    node: usize,
    /// Buffered samples awaiting delivery (Guaspari between contacts,
    /// MATOPIBA during partitions).
    buffer: Vec<(SimTime, f64, Label)>,
    /// Cumulative tamper drift applied to reported values.
    drift: f64,
}

/// One injected Sybil identity: a bounded random walk.
struct SybilSim {
    id: String,
    rng: SimRng,
    value: f64,
    start: usize,
    end: usize,
    buffer: Vec<(SimTime, f64, Label)>,
}

struct Compiler<'a> {
    spec: &'a WorkloadSpec,
    devices: Vec<DeviceSim>,
    sybils: Vec<SybilSim>,
    tamper: Option<(usize, usize, f64)>, // (start_round, n, drift/round)
    takeover: Option<(usize, usize, usize)>, // (start_round, end_round, n)
    windows: Vec<ContactWindow>,
    /// Guaspari: per-node contact rounds as (start, end) round ranges.
    node_rounds: Vec<Vec<(usize, usize)>>,
    partitions_r: Vec<(usize, usize)>,
    offered: u64,
    label_counts: BTreeMap<Label, u64>,
}

impl<'a> Compiler<'a> {
    fn new(spec: &'a WorkloadSpec) -> Self {
        let mut root = SimRng::seed_from(spec.seed);
        let mut rng = root.split("workload").split(spec.pilot.name());
        let night_refill = spec.pilot == Pilot::Intercrop;
        let season_amp = if spec.pilot == Pilot::Intercrop {
            0.25
        } else {
            0.0
        };
        let nodes = match spec.pilot {
            Pilot::Guaspari => (spec.devices / 8).max(1),
            _ => 1,
        };

        let devices: Vec<DeviceSim> = (0..spec.devices)
            .map(|i| {
                let id = format!("urn:swamp:device:{}-{:04}", spec.pilot.name(), i);
                let mut drng = rng.split(&id);
                let signal = MoistureSignal::new(&mut drng, night_refill, season_amp);
                let phase = drng.below(8);
                DeviceSim {
                    id,
                    rng: drng,
                    signal,
                    phase,
                    cohort: (i % 2) as u8,
                    node: i % nodes,
                    buffer: Vec::new(),
                    drift: 0.0,
                }
            })
            .collect();

        // Guaspari contact schedule: one window per node per simulated
        // day, at a per-node offset, lasting WINDOW_ROUNDS rounds.
        // One-per-day at a fixed offset ⇒ non-overlapping per node.
        const WINDOW_ROUNDS: usize = 4;
        let mut windows = Vec::new();
        let mut node_rounds = vec![Vec::new(); nodes];
        if spec.pilot == Pilot::Guaspari {
            let per_day = ((MILLIS_PER_DAY / spec.step.as_millis().max(1)) as usize).max(1);
            let mut wrng = rng.split("contact-windows");
            for (node, rounds) in node_rounds.iter_mut().enumerate() {
                let slack = per_day.saturating_sub(WINDOW_ROUNDS).max(1);
                let offset = wrng.below(slack as u64) as usize;
                let mut day0 = 0usize;
                while day0 < spec.rounds {
                    let s = day0 + offset;
                    if s >= spec.rounds {
                        break;
                    }
                    let e = (s + WINDOW_ROUNDS).min(spec.rounds);
                    rounds.push((s, e));
                    windows.push(ContactWindow {
                        node,
                        start: spec.round_time(s),
                        end: spec.round_time(e),
                    });
                    day0 += per_day;
                }
            }
        }

        // MATOPIBA partition schedule: two uplink outages placed at
        // fixed fractions of the horizon; each heal round carries the
        // reconnection storm.
        let partitions_r = if spec.pilot == Pilot::Matopiba {
            let r = spec.rounds;
            vec![(r * 11 / 20, r * 13 / 20), (r * 16 / 20, r * 17 / 20)]
                .into_iter()
                .filter(|(s, e)| e > s && *e < r)
                .collect()
        } else {
            Vec::new()
        };

        // Resolve attack overlays. Tamper takes the front of the
        // fleet, takeover the back; counts are clamped to the fleet.
        let mut sybils = Vec::new();
        let mut tamper = None;
        let mut takeover = None;
        for overlay in &spec.attacks {
            match *overlay {
                AttackOverlay::SybilBurst {
                    start_round,
                    rounds,
                    count,
                } => {
                    let mut srng = rng.split("sybil");
                    for k in 0..count {
                        let id = format!("urn:swamp:device:{}-sybil-{:03}", spec.pilot.name(), k);
                        let mut s = srng.split(&id);
                        let value = s.uniform_range(0.15, 0.35);
                        sybils.push(SybilSim {
                            id,
                            rng: s,
                            value,
                            start: start_round,
                            end: start_round.saturating_add(rounds),
                            buffer: Vec::new(),
                        });
                    }
                }
                AttackOverlay::TamperDrift {
                    start_round,
                    devices: n,
                    drift_per_round,
                } => {
                    tamper = Some((start_round, n.min(spec.devices), drift_per_round));
                }
                AttackOverlay::ActuatorTakeover {
                    start_round,
                    rounds,
                    devices: n,
                } => {
                    takeover = Some((
                        start_round,
                        start_round.saturating_add(rounds),
                        n.min(spec.devices),
                    ));
                }
            }
        }

        Compiler {
            spec,
            devices,
            sybils,
            tamper,
            takeover,
            windows,
            node_rounds,
            partitions_r,
            offered: 0,
            label_counts: BTreeMap::new(),
        }
    }

    fn in_partition(&self, r: usize) -> bool {
        self.partitions_r.iter().any(|&(s, e)| r >= s && r < e)
    }

    fn in_contact(&self, node: usize, r: usize) -> bool {
        self.node_rounds[node].iter().any(|&(s, e)| r >= s && r < e)
    }

    fn run(mut self) -> CompiledWorkload {
        let spec = self.spec;
        let n_tamper = self.tamper.map(|(_, n, _)| n).unwrap_or(0);
        let takeover_from = spec.devices - self.takeover.map(|(_, _, n)| n).unwrap_or(0);
        let mut batches: Vec<RoundBatch> = Vec::with_capacity(spec.rounds);

        for r in 0..spec.rounds {
            let at = spec.round_time(r);
            let season = r as f64 / spec.rounds.max(1) as f64;
            let last = r + 1 == spec.rounds;
            let mut batch = RoundBatch::new(at);

            for i in 0..self.devices.len() {
                let d = &mut self.devices[i];
                d.signal.advance(at, season, &mut d.rng);
                let hijacked = i >= takeover_from
                    && self
                        .takeover
                        .map(|(s, e, _)| r >= s && r < e)
                        .unwrap_or(false);
                if hijacked {
                    d.signal.hijack();
                }
                let mut v = d.signal.sense(&mut d.rng);
                let mut label = Label::Normal;
                if hijacked {
                    label = Label::Takeover;
                }
                if let Some((start, _, per_round)) = self.tamper {
                    if i < n_tamper && r >= start {
                        // Cap the drift so the report does not pin at
                        // the sensor ceiling forever.
                        d.drift = (d.drift + per_round).min(0.35);
                        v = (v + d.drift).clamp(0.01, 0.59);
                        label = Label::Tamper;
                    }
                }

                let offer = match spec.pilot {
                    Pilot::Cbec => is_day(at) || (r as u64 + d.phase).is_multiple_of(4),
                    Pilot::Intercrop => {
                        if d.cohort == 0 {
                            !is_day(at)
                        } else {
                            (r as u64 + d.phase).is_multiple_of(2)
                        }
                    }
                    // Every sample enters the pipeline (buffered until
                    // a drone contact).
                    Pilot::Guaspari => true,
                    // Open loop: the offered load never adapts; the
                    // draw happens every round so partitions cannot
                    // bend the arrival process.
                    Pilot::Matopiba => d.rng.chance(0.6),
                };

                match spec.pilot {
                    Pilot::Guaspari => {
                        let d = &mut self.devices[i];
                        self.offered += 1;
                        *self.label_counts.entry(label).or_insert(0) += 1;
                        d.buffer.push((at, v, label));
                        if self.in_contact(self.devices[i].node, r) || last {
                            flush(&mut self.devices[i], &mut batch);
                        }
                    }
                    Pilot::Matopiba => {
                        let queued = self.in_partition(r);
                        let d = &mut self.devices[i];
                        if offer {
                            self.offered += 1;
                            *self.label_counts.entry(label).or_insert(0) += 1;
                        }
                        if queued {
                            if offer {
                                d.buffer.push((at, v, label));
                            }
                        } else {
                            flush(d, &mut batch);
                            if offer {
                                emit_record(&d.id, at, v, label, &mut batch);
                            }
                        }
                        if last {
                            flush(&mut self.devices[i], &mut batch);
                        }
                    }
                    Pilot::Cbec | Pilot::Intercrop => {
                        if offer {
                            self.offered += 1;
                            *self.label_counts.entry(label).or_insert(0) += 1;
                            emit_record(&self.devices[i].id, at, v, label, &mut batch);
                        }
                    }
                }
            }

            // Sybil identities ride the same uplink: they queue during
            // MATOPIBA partitions like everyone else.
            let queued = self.in_partition(r);
            for s in &mut self.sybils {
                if r >= s.start && r < s.end {
                    s.value = (s.value + s.rng.uniform_range(-0.02, 0.02)).clamp(0.05, 0.55);
                    self.offered += 1;
                    *self.label_counts.entry(Label::Sybil).or_insert(0) += 1;
                    if queued {
                        s.buffer.push((at, s.value, Label::Sybil));
                        continue;
                    }
                }
                if !queued {
                    for (sat, sv, sl) in std::mem::take(&mut s.buffer) {
                        emit_record(&s.id, sat, sv, sl, &mut batch);
                    }
                    if r >= s.start && r < s.end {
                        emit_record(&s.id, at, s.value, Label::Sybil, &mut batch);
                    }
                }
            }

            batches.push(batch);
        }

        let generated: u64 = batches.iter().map(|b| b.records.len() as u64).sum();
        let mut attack_devices = BTreeSet::new();
        for b in &batches {
            for rec in &b.records {
                if rec.label != Label::Normal {
                    attack_devices.insert(rec.device.clone());
                }
            }
        }
        CompiledWorkload {
            pilot: spec.pilot,
            seed: spec.seed,
            batches,
            generated,
            offered: self.offered,
            label_counts: self.label_counts,
            contact_windows: self.windows,
            partitions: self
                .partitions_r
                .iter()
                .map(|&(s, e)| (spec.round_time(s), spec.round_time(e)))
                .collect(),
            devices: self.devices.iter().map(|d| d.id.clone()).collect(),
            attack_devices,
        }
    }
}

/// Flushes a device's buffered backlog, oldest first.
fn flush(d: &mut DeviceSim, batch: &mut RoundBatch) {
    for (sat, v, label) in std::mem::take(&mut d.buffer) {
        emit_record(&d.id, sat, v, label, batch);
    }
}

fn emit_record(id: &str, sampled_at: SimTime, v: f64, label: Label, batch: &mut RoundBatch) {
    let mut e = Entity::new(id, ENTITY_TYPE);
    e.set_attribute(
        SIGNAL_ATTR,
        Attribute::new(v).observed_at(sampled_at.as_millis()),
    );
    batch.records.push(LabeledRecord {
        entity: e,
        device: id.to_owned(),
        label,
        sampled_at,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_is_deterministic_and_pilot_distinct() {
        let mut digests = Vec::new();
        for pilot in Pilot::all() {
            let spec = WorkloadSpec::new(pilot, 42, 24, 96);
            let a = spec.compile();
            let b = spec.compile();
            assert_eq!(a.stream_digest(), b.stream_digest(), "{pilot:?}");
            assert_eq!(a.batches.len(), 96);
            assert_eq!(a.generated, a.offered, "{pilot:?} must conserve");
            digests.push(a.stream_digest());
        }
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(digests.len(), 4, "pilot streams must differ");
    }

    #[test]
    fn seed_changes_the_stream() {
        let a = WorkloadSpec::new(Pilot::Cbec, 1, 16, 48).compile();
        let b = WorkloadSpec::new(Pilot::Cbec, 2, 16, 48).compile();
        assert_ne!(a.stream_digest(), b.stream_digest());
    }

    #[test]
    fn attack_free_streams_are_all_normal() {
        let w = WorkloadSpec::new(Pilot::Intercrop, 7, 16, 96).compile();
        assert_eq!(w.label_count(Label::Normal), w.generated);
        assert!(w.attack_devices.is_empty());
    }

    #[test]
    fn overlays_label_ground_truth() {
        let spec = WorkloadSpec::new(Pilot::Cbec, 11, 24, 192).with_attacks(vec![
            AttackOverlay::SybilBurst {
                start_round: 150,
                rounds: 30,
                count: 3,
            },
            AttackOverlay::TamperDrift {
                start_round: 150,
                devices: 2,
                drift_per_round: 0.008,
            },
            AttackOverlay::ActuatorTakeover {
                start_round: 150,
                rounds: 12,
                devices: 2,
            },
        ]);
        let w = spec.compile();
        assert!(w.label_count(Label::Sybil) > 0);
        assert!(w.label_count(Label::Tamper) > 0);
        assert!(w.label_count(Label::Takeover) > 0);
        // 3 sybils + 2 tamper victims + 2 takeover victims.
        assert_eq!(w.attack_devices.len(), 7);
        // Front/back victim split keeps the sets disjoint.
        assert!(w.attack_devices.contains("urn:swamp:device:cbec-0000"));
        assert!(w.attack_devices.contains("urn:swamp:device:cbec-0023"));
        assert_eq!(w.generated, w.offered);
    }

    #[test]
    fn guaspari_buffers_flush_in_order() {
        let w = WorkloadSpec::new(Pilot::Guaspari, 42, 16, 96).compile();
        assert!(!w.contact_windows.is_empty());
        // Per-device sample times are strictly increasing across the
        // whole delivery stream (in-order flush).
        let mut last: BTreeMap<&str, SimTime> = BTreeMap::new();
        for b in &w.batches {
            for r in &b.records {
                if let Some(prev) = last.get(r.device.as_str()) {
                    assert!(r.sampled_at > *prev, "{} out of order", r.device);
                }
                last.insert(r.device.as_str(), r.sampled_at);
                assert!(r.sampled_at <= b.at);
            }
        }
        // Every sample is eventually delivered.
        assert_eq!(w.generated, 16 * 96);
    }

    #[test]
    fn matopiba_partitions_queue_and_heal() {
        let w = WorkloadSpec::new(Pilot::Matopiba, 42, 32, 120).compile();
        assert_eq!(w.partitions.len(), 2);
        for b in &w.batches {
            let inside = w.partitions.iter().any(|&(s, e)| b.at >= s && b.at < e);
            if inside {
                assert!(b.records.is_empty(), "delivery inside a partition");
            }
        }
        assert_eq!(w.generated, w.offered, "heal must conserve the queue");
    }
}
