//! The shared soil-moisture signal model behind every pilot profile.
//!
//! All four pilots report volumetric water content from capacitive
//! probes; what differs per pilot is *when* records are emitted and
//! which irrigation policy refills the soil. The model here is the
//! minimal cycle a behavioral baseline can learn: evapotranspiration
//! draws the signal down (fast by day, slowly by night), and when it
//! crosses the refill floor inside the pilot's irrigation window the
//! controller refills it in one jump. Quantized into delta symbols
//! (see the constants below) the normal cycle reads
//! `Fall… JumpUp Steady… Fall…` — a small, learnable vocabulary whose
//! *violations* (sustained night rises, back-to-back jumps) are exactly
//! the attack signatures `swamp_security::baseline` hunts for.

use swamp_sim::{SimRng, SimTime};

/// Deltas with magnitude at or below this are "steady" — the symbol
/// quantizer's dead zone, sized above sensor noise (σ ≈ 0.0012 VWC per
/// sample, so a delta of two samples stays below 0.004 almost always)
/// and below the slowest daytime drawdown step.
pub const STEADY_QUANTUM: f64 = 0.004;

/// Deltas with magnitude above this are "jumps" — refill events move
/// ~0.09 VWC in one round; drawdown never exceeds ~0.01.
pub const JUMP_QUANTUM: f64 = 0.03;

/// Whether `at` falls in the daytime half of the diurnal cycle
/// (06:00–18:00 of the simulated day).
pub fn is_day(at: SimTime) -> bool {
    let f = at.day_fraction();
    (0.25..0.75).contains(&f)
}

/// One probe's soil-moisture state: deterministic ET drawdown plus
/// threshold-triggered refills inside the pilot's irrigation window.
#[derive(Clone, Debug)]
pub struct MoistureSignal {
    moisture: f64,
    refill_floor: f64,
    refill_amount: f64,
    day_drawdown: f64,
    night_drawdown: f64,
    refill_at_night: bool,
    /// Seasonal ET modulation amplitude (Intercrop's horizon-scale
    /// season; zero elsewhere).
    season_amplitude: f64,
}

impl MoistureSignal {
    /// Draws per-device parameters (initial moisture, refill floor, ET
    /// rates) from `rng`, so a fleet is heterogeneous but reproducible.
    pub fn new(rng: &mut SimRng, refill_at_night: bool, season_amplitude: f64) -> Self {
        MoistureSignal {
            moisture: rng.uniform_range(0.24, 0.30),
            refill_floor: rng.uniform_range(0.165, 0.18),
            refill_amount: 0.09,
            day_drawdown: rng.uniform_range(0.0065, 0.0085),
            night_drawdown: rng.uniform_range(0.0006, 0.0012),
            refill_at_night,
            season_amplitude,
        }
    }

    /// Advances the physical state one round ending at `at`.
    /// `season_phase` is the position in the run horizon (`[0, 1]`),
    /// which Intercrop maps onto a growing-season ET swing. Refill
    /// noise draws from `rng`, so advancing consumes randomness whether
    /// or not the round's sample is reported — reporting decisions must
    /// not bend the physics.
    pub fn advance(&mut self, at: SimTime, season_phase: f64, rng: &mut SimRng) {
        let season = 1.0 + self.season_amplitude * (std::f64::consts::TAU * season_phase).sin();
        let draw = if is_day(at) {
            self.day_drawdown
        } else {
            self.night_drawdown
        } * season;
        self.moisture -= draw;
        let in_refill_window = if self.refill_at_night {
            !is_day(at)
        } else {
            is_day(at)
        };
        if self.moisture <= self.refill_floor && in_refill_window {
            self.moisture += self.refill_amount + rng.uniform_range(0.0, 0.01);
        }
        self.moisture = self.moisture.clamp(0.02, 0.58);
    }

    /// An actuator-takeover step: the attacker forces irrigation on,
    /// adding water regardless of the refill floor. Back-to-back calls
    /// produce the `JumpUp → JumpUp` transition the normal cycle never
    /// contains.
    pub fn hijack(&mut self) {
        self.moisture = (self.moisture + 0.045).min(0.55);
    }

    /// The sensed (reported) value: physical moisture plus sensor noise.
    pub fn sense(&self, rng: &mut SimRng) -> f64 {
        (self.moisture + rng.normal_with(0.0, 0.0012)).clamp(0.01, 0.59)
    }

    /// The current physical moisture (test hook).
    pub fn moisture(&self) -> f64 {
        self.moisture
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::SimDuration;

    #[test]
    fn day_night_split_follows_the_clock() {
        assert!(!is_day(SimTime::ZERO));
        assert!(is_day(SimTime::from_hours(12)));
        assert!(!is_day(SimTime::from_hours(23)));
        assert!(is_day(SimTime::from_hours(6)));
        assert!(!is_day(SimTime::from_hours(18)));
    }

    #[test]
    fn cycle_draws_down_and_refills_in_window() {
        let mut rng = SimRng::seed_from(7);
        let mut sig = MoistureSignal::new(&mut rng, false, 0.0);
        let start = sig.moisture();
        let step = SimDuration::from_mins(30);
        let mut refilled = false;
        let mut prev = start;
        for r in 0..(48 * 4) {
            let at = SimTime::ZERO + step * r;
            sig.advance(at, 0.0, &mut rng);
            if sig.moisture() > prev + JUMP_QUANTUM {
                refilled = true;
                assert!(is_day(at), "day-refill pilot must refill by day");
            }
            prev = sig.moisture();
            assert!((0.02..=0.58).contains(&sig.moisture()));
        }
        assert!(refilled, "four days must contain at least one refill");
    }

    #[test]
    fn night_refill_pilot_refills_at_night() {
        let mut rng = SimRng::seed_from(8);
        let mut sig = MoistureSignal::new(&mut rng, true, 0.1);
        let step = SimDuration::from_mins(30);
        let mut prev = sig.moisture();
        let mut refills = 0;
        for r in 0..(48 * 4) {
            let at = SimTime::ZERO + step * r;
            sig.advance(at, r as f64 / 192.0, &mut rng);
            if sig.moisture() > prev + JUMP_QUANTUM {
                refills += 1;
                assert!(!is_day(at), "night-refill pilot must refill at night");
            }
            prev = sig.moisture();
        }
        assert!(refills >= 1);
    }

    #[test]
    fn hijack_jumps_and_saturates() {
        let mut rng = SimRng::seed_from(9);
        let mut sig = MoistureSignal::new(&mut rng, false, 0.0);
        let before = sig.moisture();
        sig.hijack();
        assert!(sig.moisture() - before > JUMP_QUANTUM);
        for _ in 0..20 {
            sig.hijack();
        }
        assert!(sig.moisture() <= 0.55);
    }
}
