//! Always-on property suite for the workload compiler: determinism,
//! declared arrival-rate bounds, drone-window geometry and partition
//! conservation, at fixed seeds. The seed-quantified twin lives at the
//! bottom behind the `proptest-tests` feature (see the workspace
//! Cargo.toml note on restoring the proptest dependency).

use std::collections::BTreeMap;

use swamp_sim::SimTime;
use swamp_workload::{AttackOverlay, CompiledWorkload, Pilot, WorkloadSpec};

/// Rounds covered by a MATOPIBA partition or its heal (the heal round
/// carries the reconnection storm, so rate bounds do not apply there).
fn stormy_rounds(spec: &WorkloadSpec, w: &CompiledWorkload) -> Vec<bool> {
    (0..spec.rounds)
        .map(|r| {
            let at = spec.round_time(r);
            // Inside the partition, or the first round at/after the
            // heal (the storm flush).
            w.partitions
                .iter()
                .any(|&(s, e)| (at >= s && at < e) || (at >= e && at < e + spec.step))
        })
        .collect()
}

#[test]
fn same_seed_compiles_to_byte_identical_streams() {
    for pilot in Pilot::all() {
        let spec = WorkloadSpec::new(pilot, 1234, 24, 96).with_attacks(vec![
            AttackOverlay::SybilBurst {
                start_round: 60,
                rounds: 30,
                count: 3,
            },
            AttackOverlay::TamperDrift {
                start_round: 60,
                devices: 2,
                drift_per_round: 0.01,
            },
        ]);
        let a = spec.compile();
        let b = spec.compile();
        assert_eq!(
            a.stream_digest(),
            b.stream_digest(),
            "{pilot:?}: recompilation changed the stream"
        );
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.label_counts, b.label_counts);
    }
}

#[test]
fn arrival_counts_stay_within_declared_rate_bounds() {
    // Bounds are declared for honest traffic on fleets of >= 64
    // devices, on every round outside partitions/storms.
    for pilot in [Pilot::Cbec, Pilot::Intercrop, Pilot::Matopiba] {
        let spec = WorkloadSpec::new(pilot, 42, 96, 192);
        let (lo, hi) = spec
            .declared_rate_bounds()
            .expect("these pilots declare bounds");
        let w = spec.compile();
        let stormy = stormy_rounds(&spec, &w);
        for (r, batch) in w.batches.iter().enumerate() {
            if stormy[r] {
                continue;
            }
            let frac = batch.records.len() as f64 / spec.devices as f64;
            assert!(
                frac >= lo && frac <= hi,
                "{pilot:?} round {r}: arrival fraction {frac:.3} outside [{lo}, {hi}]"
            );
        }
    }
    assert!(
        WorkloadSpec::new(Pilot::Guaspari, 42, 96, 192)
            .declared_rate_bounds()
            .is_none(),
        "Guaspari is bursty by design: conservation, not rate"
    );
}

#[test]
fn drone_contact_windows_never_overlap_per_node() {
    let spec = WorkloadSpec::new(Pilot::Guaspari, 7, 64, 336);
    let w = spec.compile();
    assert!(!w.contact_windows.is_empty());
    let mut per_node: BTreeMap<usize, Vec<(SimTime, SimTime)>> = BTreeMap::new();
    for cw in &w.contact_windows {
        assert!(cw.start < cw.end, "empty window");
        per_node
            .entry(cw.node)
            .or_default()
            .push((cw.start, cw.end));
    }
    assert_eq!(per_node.len(), 64 / 8, "one drone route per 8 probes");
    for (node, mut windows) in per_node {
        windows.sort_unstable();
        for pair in windows.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "node {node}: windows {pair:?} overlap"
            );
        }
    }
    // Deliveries only happen inside this node schedule (or the
    // end-of-horizon flush).
    let last_at = spec.round_time(spec.rounds - 1);
    for batch in &w.batches {
        if batch.records.is_empty() || batch.at == last_at {
            continue;
        }
        assert!(
            w.contact_windows
                .iter()
                .any(|cw| batch.at >= cw.start && batch.at < cw.end),
            "delivery at {:?} outside every contact window",
            batch.at
        );
    }
}

#[test]
fn reconnection_storm_conserves_queued_records() {
    let spec = WorkloadSpec::new(Pilot::Matopiba, 9, 64, 200);
    let w = spec.compile();
    assert_eq!(w.partitions.len(), 2);
    assert_eq!(
        w.generated, w.offered,
        "heal must release every queued record"
    );
    // Samples taken during a partition are delivered, in order, at or
    // after the heal.
    let mut queued_seen = 0u64;
    for batch in &w.batches {
        for rec in &batch.records {
            let inside = w
                .partitions
                .iter()
                .any(|&(s, e)| rec.sampled_at >= s && rec.sampled_at < e);
            if inside {
                queued_seen += 1;
                let (_, e) = w
                    .partitions
                    .iter()
                    .find(|&&(s, e)| rec.sampled_at >= s && rec.sampled_at < e)
                    .unwrap();
                assert!(
                    batch.at >= *e,
                    "{}: queued sample delivered before the heal",
                    rec.device
                );
            }
        }
    }
    assert!(queued_seen > 0, "partitions queued nothing");
    // Per-device delivery order is preserved through the storm.
    let mut last: BTreeMap<&str, SimTime> = BTreeMap::new();
    for batch in &w.batches {
        for rec in &batch.records {
            if let Some(prev) = last.get(rec.device.as_str()) {
                assert!(rec.sampled_at > *prev, "{} reordered", rec.device);
            }
            last.insert(rec.device.as_str(), rec.sampled_at);
        }
    }
}

#[test]
fn sybil_identities_ride_on_top_of_the_honest_fleet() {
    let spec =
        WorkloadSpec::new(Pilot::Cbec, 5, 32, 96).with_attacks(vec![AttackOverlay::SybilBurst {
            start_round: 48,
            rounds: 24,
            count: 5,
        }]);
    let w = spec.compile();
    assert_eq!(w.devices.len(), 32, "legitimate fleet size unchanged");
    assert_eq!(w.attack_devices.len(), 5);
    for d in &w.attack_devices {
        assert!(d.contains("-sybil-"), "{d} is not a sybil id");
    }
    let honest = WorkloadSpec::new(Pilot::Cbec, 5, 32, 96).compile();
    let honest_records: u64 = honest.generated;
    assert_eq!(
        w.generated - w.label_count(swamp_workload::Label::Sybil),
        honest_records,
        "the overlay must not disturb honest traffic"
    );
}

// Proptest twin (registry-dependent; see the workspace Cargo.toml note
// on restoring the proptest dependency).
#[cfg(feature = "proptest-tests")]
mod proptest_twin {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn compile_is_deterministic(seed in 0u64..1_000_000, devices in 1usize..48, rounds in 1usize..120) {
            for pilot in Pilot::all() {
                let spec = WorkloadSpec::new(pilot, seed, devices, rounds);
                prop_assert_eq!(spec.compile().stream_digest(), spec.compile().stream_digest());
            }
        }

        #[test]
        fn every_pilot_conserves_offered_records(seed in 0u64..1_000_000, devices in 1usize..48) {
            for pilot in Pilot::all() {
                let w = WorkloadSpec::new(pilot, seed, devices, 100).compile();
                prop_assert_eq!(w.generated, w.offered);
            }
        }

        #[test]
        fn guaspari_windows_never_overlap(seed in 0u64..1_000_000, devices in 8usize..64) {
            let w = WorkloadSpec::new(Pilot::Guaspari, seed, devices, 240).compile();
            let mut per_node: BTreeMap<usize, Vec<(SimTime, SimTime)>> = BTreeMap::new();
            for cw in &w.contact_windows {
                per_node.entry(cw.node).or_default().push((cw.start, cw.end));
            }
            for (_, mut ws) in per_node {
                ws.sort_unstable();
                for pair in ws.windows(2) {
                    prop_assert!(pair[0].1 <= pair[1].0);
                }
            }
        }
    }
}
