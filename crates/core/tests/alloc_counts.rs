//! Allocation-count proofs for the zero-copy hot paths.
//!
//! A counting global allocator measures the broker fan-out and history
//! append paths directly: fanning one update out to 256 subscribers must
//! allocate no more than fanning it out to 1 (the snapshot is shared via
//! `Arc`, queues and drain buffers reuse capacity), and a steady-state
//! history append must allocate nothing at all (interned series key,
//! in-order push within capacity).
//!
//! Everything runs inside one `#[test]` so concurrent test threads cannot
//! pollute the shared counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swamp_codec::ngsi::Entity;
use swamp_core::broker::{ContextBroker, SubscriptionFilter};
use swamp_core::history::HistoryStore;
use swamp_sim::SimTime;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let r = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, r)
}

/// Allocations for `rounds` upsert+drain cycles against `subs` subscribers,
/// measured after a warmup that settles queue/buffer capacities.
fn fanout_allocs(subs: usize, rounds: usize) -> u64 {
    let mut broker = ContextBroker::new();
    let ids: Vec<_> = (0..subs)
        .map(|_| {
            broker.subscribe(SubscriptionFilter {
                entity_type: Some("SoilProbe".into()),
                id_prefix: None,
                watched_attrs: vec![],
            })
        })
        .collect();
    let mut drained = Vec::new();
    let run_round = |broker: &mut ContextBroker, drained: &mut Vec<_>, v: f64| {
        let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
        e.set("moisture_vwc", v);
        broker.upsert(SimTime::ZERO, e);
        for id in &ids {
            broker.drain_notifications_into(*id, drained).unwrap();
        }
        drained.clear();
    };
    for i in 0..32 {
        run_round(&mut broker, &mut drained, 0.1 + i as f64 * 0.001);
    }
    let (calls, ()) = alloc_calls(|| {
        for i in 0..rounds {
            run_round(&mut broker, &mut drained, 0.2 + i as f64 * 0.001);
        }
    });
    calls
}

#[test]
fn hot_paths_do_not_allocate_per_subscriber_or_per_append() {
    // --- Broker fan-out: allocations are independent of subscriber count.
    // Each upsert allocates the same merge bookkeeping (changed-name
    // strings + one shared Arc slice) no matter how many subscribers it
    // fans out to; per-subscriber cost is an Arc refcount bump and a push
    // into a warm queue. A per-subscriber deep clone of the entity would
    // add thousands of allocations at 256 subscribers.
    let rounds = 100;
    let one = fanout_allocs(1, rounds);
    let many = fanout_allocs(256, rounds);
    assert!(
        many <= one + 8,
        "fan-out to 256 subscribers allocated {many} times vs {one} for 1 \
         subscriber over {rounds} rounds — per-subscriber copies crept in"
    );

    // --- History append: the steady state allocates nothing. The series
    // key is interned, lookup borrows the &str pair, and pushes land in
    // existing Vec capacity.
    let mut store = HistoryStore::new();
    for t in 0..1000u64 {
        store.append(
            "urn:swamp:device:probe-1",
            "moisture_vwc",
            SimTime::from_millis(t),
            0.25,
        );
    }
    let (calls, ()) = alloc_calls(|| {
        for t in 1000..1010u64 {
            store.append(
                "urn:swamp:device:probe-1",
                "moisture_vwc",
                SimTime::from_millis(t),
                0.25,
            );
        }
    });
    assert_eq!(
        calls, 0,
        "steady-state append must not allocate (interned key, warm Vec)"
    );

    // --- dump_sorted: keys are borrowed from the interner, so the dump
    // allocates about one sample vector per series (plus two collection
    // vectors and their growth), not three owned strings-and-vec per
    // series. With 64 series the old cloned-key dump sat near 3×64; the
    // borrowed dump must stay close to 1×64.
    let mut store = HistoryStore::new();
    let series = 64u64;
    for d in 0..series {
        let entity = format!("urn:swamp:device:probe-{d}");
        for t in 0..100u64 {
            store.append(&entity, "moisture_vwc", SimTime::from_millis(t), 0.25);
        }
    }
    store.compact();
    let (calls, dump) = alloc_calls(|| store.dump_sorted());
    assert_eq!(dump.len(), series as usize);
    assert!(
        calls <= series + 24,
        "dump_sorted over {series} series allocated {calls} times — \
         expected ~1 sample vector per series; owned key clones crept back in"
    );
    drop(dump);
}
