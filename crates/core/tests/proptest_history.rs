//! Property-based tests for [`swamp_core::history::HistoryStore`]: appends
//! in any order — including duplicates and heavy reordering — leave every
//! series time-sorted and complete, matching a sort-based model.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_core::history::HistoryStore;
use swamp_sim::SimTime;

proptest! {
    /// Arbitrary interleavings of (series, timestamp, value) appends: each
    /// series comes back sorted by time and contains exactly the samples
    /// appended to it, like a stable sort of the inputs.
    #[test]
    fn appends_in_any_order_match_sorted_model(
        ops in prop::collection::vec(
            (0u8..3, 0u64..1_000, -50.0f64..50.0),
            0..200,
        )
    ) {
        let mut store = HistoryStore::new();
        let mut model: Vec<Vec<(u64, f64)>> = vec![Vec::new(); 3];
        for (series, at_ms, value) in ops {
            let entity = format!("urn:swamp:device:probe-{series}");
            store.append(&entity, "moisture_vwc", SimTime::from_millis(at_ms), value);
            model[series as usize].push((at_ms, value));
        }
        for (series, expected) in model.iter_mut().enumerate() {
            // Stable sort: equal timestamps keep append order, which is
            // what the binary-search insert (`partition_point` on `>`)
            // guarantees.
            expected.sort_by_key(|(at, _)| *at);
            let entity = format!("urn:swamp:device:probe-{series}");
            let got = store.range(
                &entity,
                "moisture_vwc",
                SimTime::ZERO,
                SimTime::from_millis(1_000),
            );
            prop_assert_eq!(got.len(), expected.len());
            for (sample, (at, value)) in got.iter().zip(expected.iter()) {
                prop_assert_eq!(sample.at, SimTime::from_millis(*at));
                prop_assert_eq!(sample.value, *value);
            }
        }
    }

    /// Interning is stable: the id handed out for a key never changes, and
    /// appending through `append_to` is indistinguishable from `append`.
    #[test]
    fn interned_ids_are_stable_across_appends(
        times in prop::collection::vec(0u64..1_000, 1..50)
    ) {
        let mut store = HistoryStore::new();
        let id = store.intern("urn:swamp:device:probe-0", "temperature_c");
        for &t in &times {
            store.append_to(id, SimTime::from_millis(t), 1.0);
            prop_assert_eq!(
                store.series_id("urn:swamp:device:probe-0", "temperature_c"),
                Some(id)
            );
        }
        prop_assert_eq!(store.len(), times.len() as u64);
    }
}
