//! Property-based tests for [`swamp_core::history::HistoryStore`]: appends
//! in any order — including duplicates and heavy reordering — leave every
//! series time-sorted and complete, matching a sort-based model.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_core::history::HistoryStore;
use swamp_sim::SimTime;

proptest! {
    /// Arbitrary interleavings of (series, timestamp, value) appends: each
    /// series comes back sorted by time and contains exactly the samples
    /// appended to it, like a stable sort of the inputs.
    #[test]
    fn appends_in_any_order_match_sorted_model(
        ops in prop::collection::vec(
            (0u8..3, 0u64..1_000, -50.0f64..50.0),
            0..200,
        )
    ) {
        let mut store = HistoryStore::new();
        let mut model: Vec<Vec<(u64, f64)>> = vec![Vec::new(); 3];
        for (series, at_ms, value) in ops {
            let entity = format!("urn:swamp:device:probe-{series}");
            store.append(&entity, "moisture_vwc", SimTime::from_millis(at_ms), value);
            model[series as usize].push((at_ms, value));
        }
        for (series, expected) in model.iter_mut().enumerate() {
            // Stable sort: equal timestamps keep append order, which is
            // what the binary-search insert (`partition_point` on `>`)
            // guarantees.
            expected.sort_by_key(|(at, _)| *at);
            let entity = format!("urn:swamp:device:probe-{series}");
            let got = store.range(
                &entity,
                "moisture_vwc",
                SimTime::ZERO,
                SimTime::from_millis(1_000),
            );
            prop_assert_eq!(got.len(), expected.len());
            for (sample, (at, value)) in got.iter().zip(expected.iter()) {
                prop_assert_eq!(sample.at, SimTime::from_millis(*at));
                prop_assert_eq!(sample.value, *value);
            }
        }
    }

    /// Interning is stable: the id handed out for a key never changes, and
    /// appending through `append_to` is indistinguishable from `append`.
    #[test]
    fn interned_ids_are_stable_across_appends(
        times in prop::collection::vec(0u64..1_000, 1..50)
    ) {
        let mut store = HistoryStore::new();
        let id = store.intern("urn:swamp:device:probe-0", "temperature_c");
        for &t in &times {
            store.append_to(id, SimTime::from_millis(t), 1.0);
            prop_assert_eq!(
                store.series_id("urn:swamp:device:probe-0", "temperature_c"),
                Some(id)
            );
        }
        prop_assert_eq!(store.len(), times.len() as u64);
    }

    /// Segment compaction is observationally free under arbitrary
    /// interleavings: a store that freezes aggressively (tiny threshold,
    /// random extra `compact()` calls, mid-stream `prune_before` cutting
    /// through segment interiors) dumps exactly what a never-compacting
    /// flat store holding the same appends dumps — duplicate-time order
    /// included. Property twin of the deterministic edge-case tests in
    /// `history.rs`.
    #[test]
    fn compaction_is_observationally_free_under_random_ops(
        threshold in 1usize..8,
        ops in prop::collection::vec(
            // op: 0..=7 append (series, time, value), 8 compact, 9 prune
            (0u8..10, 0u8..3, 0u64..1_000, -50.0f64..50.0),
            0..200,
        )
    ) {
        let mut compacting = HistoryStore::new();
        compacting.set_segment_threshold(Some(threshold));
        let mut flat = HistoryStore::new();
        for (op, series, at_ms, value) in ops {
            let entity = format!("urn:swamp:device:probe-{series}");
            let at = SimTime::from_millis(at_ms);
            match op {
                8 => {
                    compacting.compact();
                }
                9 => {
                    let a = compacting.prune_before(at);
                    let b = flat.prune_before(at);
                    prop_assert_eq!(a, b);
                }
                _ => {
                    compacting.append(&entity, "moisture_vwc", at, value);
                    flat.append(&entity, "moisture_vwc", at, value);
                }
            }
        }
        prop_assert_eq!(compacting.len(), flat.len());
        let a = compacting.dump_sorted();
        let b = flat.dump_sorted();
        prop_assert_eq!(a, b);
    }
}
