//! The unified drive/observe surface.
//!
//! Every experiment harness used to hand-roll the same loop twice — once
//! against [`Platform`] and once against `swamp_shard::ShardedPlatform` —
//! because the two exposed the same operations under unrelated inherent
//! methods. [`Drive`] is the one object-safe trait both implement: advance
//! one round, apply a validated batch, snapshot the instruments, export
//! labelled reports. Harnesses (E11/E13/E14, the shard differential suite)
//! drive `&mut dyn Drive` and stop caring whether the deployment is one
//! platform or a worker pool of shards.
//!
//! Determinism contract: for a fixed builder configuration and a fixed
//! sequence of `Drive` calls, every implementation's [`Drive::observe`]
//! and [`Drive::observe_labelled`] exports are byte-identical across runs —
//! including `ShardedPlatform` under any worker-thread count (the shard
//! differential suite proves serial ≡ parallel).

use swamp_codec::ngsi::Entity;
use swamp_obs::{ObsReport, ObsSnapshot};
use swamp_sim::SimTime;

use crate::platform::Platform;
use crate::query::{QueryRequest, QueryResponse};

/// Advances and observes one deployment — single platform or sharded —
/// through an object-safe surface.
pub trait Drive {
    /// Advances one platform round at `now`: network delivery, secure
    /// ingestion, replication and (for a sharded deployment) the
    /// cross-shard merge barrier. Returns the number of entity updates
    /// ingested this round.
    fn round(&mut self, now: SimTime) -> usize;

    /// Applies a batch of already-validated entity updates, routed to the
    /// owning shard where applicable. Returns the number applied.
    fn ingest(&mut self, now: SimTime, batch: Vec<Entity>) -> usize;

    /// One merged, typed snapshot of every subsystem's instruments.
    fn observe(&self) -> ObsSnapshot;

    /// Labelled reports for file export: a single platform yields one
    /// report labelled `base`; a sharded deployment yields
    /// `<base>/shard<i>` per shard plus `<base>/merged`.
    fn observe_labelled(&self, base: &str) -> Vec<ObsReport>;

    /// Answers a typed read (see [`crate::query`]): range/aggregate/
    /// downsample over history, series dumps, replica sequence numbers,
    /// and the materialized views. A single platform answers from its own
    /// stores; a sharded deployment fans the request out and merges the
    /// shard answers in shard-id order ([`QueryResponse::merge`]). Takes
    /// `&mut self` because answering is instrumented (`query.*` counters,
    /// the `query.run` span) and the views catch their cursor up on read.
    fn query(&mut self, req: &QueryRequest) -> QueryResponse;
}

impl Drive for Platform {
    fn round(&mut self, now: SimTime) -> usize {
        self.pump(now)
    }

    fn ingest(&mut self, now: SimTime, batch: Vec<Entity>) -> usize {
        self.ingest_entities(now, batch)
    }

    fn observe(&self) -> ObsSnapshot {
        Platform::observe(self)
    }

    fn observe_labelled(&self, base: &str) -> Vec<ObsReport> {
        vec![ObsReport::new(base, self.seed(), Platform::observe(self))]
    }

    fn query(&mut self, req: &QueryRequest) -> QueryResponse {
        Platform::query(self, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::DeploymentConfig;

    #[test]
    fn platform_drives_through_dyn_object() {
        // Object safety is part of the API contract: harnesses hold
        // `&mut dyn Drive` / `Box<dyn Drive>`.
        let mut boxed: Box<dyn Drive> = Box::new(
            Platform::builder(DeploymentConfig::FarmFog)
                .seed(42)
                .build(),
        );
        assert_eq!(boxed.round(SimTime::from_secs(1)), 0);
        let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
        e.set("moisture_vwc", 0.3);
        assert_eq!(boxed.ingest(SimTime::from_secs(2), vec![e]), 1);
        assert_eq!(boxed.observe().counter("ingest.accepted"), Ok(1));
        let resp = boxed.query(&QueryRequest::Last {
            entity: "urn:swamp:device:probe-1".into(),
            attr: "moisture_vwc".into(),
        });
        match resp {
            QueryResponse::Sample(Some(s)) => assert_eq!(s.value, 0.3),
            other => panic!("wrong response: {other:?}"),
        }
        assert_eq!(boxed.observe().counter("query.requests"), Ok(1));
        let reports = boxed.observe_labelled("e0/test");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].label, "e0/test");
        assert_eq!(reports[0].seed, 42);
    }
}
