//! Historical time-series store (FIWARE STH-Comet analogue).
//!
//! Appends `(time, value)` samples per (entity, attribute) and answers
//! range queries and window aggregates — what the irrigation scheduler and
//! the anomaly baselines read.
//!
//! # Hot-path design
//!
//! Every accepted telemetry frame appends one sample per numeric
//! attribute, so `append` is on the sensor→cloud critical path. Series
//! keys are *interned*: a two-level `entity → attr → u32` map resolves
//! borrowed `&str` keys to a dense [`SeriesId`] without allocating, and
//! steady-state appends (series already known, in-order timestamp) land in
//! the series' mutable tail with nothing beyond amortized vector growth.
//!
//! # Columnar segments
//!
//! Each series is stored as a run of immutable **frozen segments** plus a
//! mutable, time-sorted **tail** (PR 9). Freezing encodes the tail
//! columnar: timestamps as zigzag-varint *delta-of-delta* bytes (regular
//! cadences collapse to one byte per sample), values as a plain `f64`
//! column, plus a per-segment summary — `first_at`/`last_at`, count,
//! min/max and first/last value — so range scans and aggregates *prune*
//! whole segments by comparing the query window against the summary,
//! never touching the encoded bytes. Compaction is observationally free:
//! decoding a segment reproduces the exact samples that were frozen, so
//! `dump_sorted`, `range`, `aggregate` and `downsample` return
//! byte-identical results at every compaction cadence (the differential
//! suite in `crates/pilots/tests/compaction_differential.rs` proves it,
//! out-of-order appends and mid-segment pruning included).
//!
//! Freezing happens on demand ([`HistoryStore::compact`]) or automatically
//! every [`HistoryStore::set_segment_threshold`] tail samples; the default
//! is *never*, which preserves the flat pre-segment behavior bit-for-bit.
//! An out-of-order append that lands behind the frozen watermark thaws the
//! overlapped suffix of segments back into the tail first (rare by
//! construction: the watermark only covers explicitly compacted data).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use swamp_sim::stats::OnlineStats;
use swamp_sim::SimTime;

/// Dense identifier of one (entity, attribute) series, assigned by the
/// interner on first append and stable for the store's lifetime.
pub type SeriesId = u32;

/// One stored sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Observation time.
    pub at: SimTime,
    /// Observed value.
    pub value: f64,
}

/// Aggregates over a query window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowAggregate {
    /// Samples in the window.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Last value in the window.
    pub last: f64,
}

/// Summary of one frozen segment — the metadata the scan paths prune on,
/// exposed for diagnostics and the E15 layout evidence (see
/// [`HistoryStore::segment_summaries`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegmentSummary {
    /// Time of the first sample.
    pub first_at: SimTime,
    /// Time of the last sample (the segment's frozen watermark).
    pub last_at: SimTime,
    /// Samples in the segment.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// First value.
    pub first: f64,
    /// Last value.
    pub last: f64,
}

/// Segment-pruning counters accumulated across queries since the last
/// [`HistoryStore::take_scan_stats`] — the evidence the `query.*`
/// instruments export (E15 measures pruned vs decoded segments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Frozen segments skipped via their summary without decoding.
    pub segments_pruned: u64,
    /// Frozen segments *answered* from their summary without decoding
    /// (wholly inside an [`HistoryStore::extremes`] window).
    pub segments_summarized: u64,
    /// Frozen segments decoded because they overlap a query window.
    pub segments_decoded: u64,
}

/// Count/min/max over a query window — the summary-composable subset of
/// [`WindowAggregate`]. Unlike a mean (whose sequential float fold is
/// order- *and grouping*-sensitive), `min`/`max` **select** stored values
/// — they never round — and `count` is an integer sum, so folding
/// per-segment summaries yields bit-identical results to folding every
/// sample. That exactness is what lets [`HistoryStore::extremes`] answer
/// from summaries while staying observationally identical to the flat
/// layout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Extremes {
    /// Samples in the window.
    pub count: u64,
    /// Minimum value in the window.
    pub min: f64,
    /// Maximum value in the window.
    pub max: f64,
}

impl Extremes {
    const EMPTY: Extremes = Extremes {
        count: 0,
        min: 0.0,
        max: 0.0,
    };

    /// Folds one sample in. The strict comparisons keep the *first*
    /// extreme of the fold order — the same rule [`Segment::freeze`]
    /// uses for its summary, so sample-wise and summary-wise folds agree
    /// bitwise (including `-0.0` ties and NaN propagation).
    fn push(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
        self.count += 1;
    }

    /// Folds a whole frozen segment in via its summary — no decode.
    fn push_summary(&mut self, seg: &Segment) {
        if self.count == 0 {
            self.min = seg.min;
            self.max = seg.max;
        } else {
            if seg.min < self.min {
                self.min = seg.min;
            }
            if seg.max > self.max {
                self.max = seg.max;
            }
        }
        self.count += seg.count() as u64;
    }
}

// --- zigzag-varint codec for delta-of-delta timestamps -------------------

fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Reads one LEB128 value at `pos`; returns `(value, next_pos)`. The
/// buffer is produced by [`push_varint`] only, so it is always well formed;
/// a truncated read (impossible by construction) yields the bits present.
fn read_varint(buf: &[u8], mut pos: usize) -> (u64, usize) {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    while let Some(&b) = buf.get(pos) {
        pos += 1;
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    (out, pos)
}

// --- segments ------------------------------------------------------------

/// One immutable columnar segment: summary + encoded timestamp column +
/// value column. Decoding ([`Segment::iter`]) reproduces the frozen
/// samples exactly.
#[derive(Clone, Debug)]
struct Segment {
    /// Time of the first sample (also the timestamp column's base).
    first_at: SimTime,
    /// Time of the last sample — the segment's frozen watermark.
    last_at: SimTime,
    /// Minimum value in the segment.
    min: f64,
    /// Maximum value in the segment.
    max: f64,
    /// First value in the segment.
    first: f64,
    /// Last value in the segment.
    last: f64,
    /// Zigzag-varint delta-of-delta encoded timestamps of samples `1..`.
    times: Vec<u8>,
    /// The value column, one `f64` per sample.
    values: Vec<f64>,
}

impl Segment {
    /// Freezes a non-empty, time-sorted slice into a segment.
    fn freeze(samples: &[Sample]) -> Segment {
        debug_assert!(!samples.is_empty(), "freeze of an empty run");
        debug_assert!(samples.windows(2).all(|w| w[0].at <= w[1].at));
        let first = samples[0];
        let last = samples[samples.len() - 1];
        // First-extreme-wins strict comparisons, seeded from the first
        // sample: the same fold [`Extremes::push`] applies sample-wise,
        // which makes summary folds bit-identical to decoded folds.
        let mut min = first.value;
        let mut max = first.value;
        let mut times = Vec::with_capacity(samples.len().saturating_sub(1));
        let mut values = Vec::with_capacity(samples.len());
        let mut prev_at = first.at.as_millis();
        let mut prev_delta: i64 = 0;
        for (i, s) in samples.iter().enumerate() {
            if s.value < min {
                min = s.value;
            }
            if s.value > max {
                max = s.value;
            }
            values.push(s.value);
            if i > 0 {
                // Sorted input: the delta is non-negative and — simulated
                // horizons being decades at most — far inside i64.
                let delta = (s.at.as_millis() - prev_at) as i64;
                push_varint(&mut times, zigzag(delta - prev_delta));
                prev_delta = delta;
                prev_at = s.at.as_millis();
            }
        }
        Segment {
            first_at: first.at,
            last_at: last.at,
            min,
            max,
            first: first.value,
            last: last.value,
            times,
            values,
        }
    }

    /// Samples in this segment.
    fn count(&self) -> usize {
        self.values.len()
    }

    /// Decodes the segment back into its exact samples, in time order.
    fn iter(&self) -> SegmentIter<'_> {
        SegmentIter {
            values: self.values.iter(),
            times: &self.times,
            pos: 0,
            at_ms: self.first_at.as_millis(),
            delta: 0,
            started: false,
        }
    }
}

/// Decoding iterator over one segment; see [`Segment::iter`].
struct SegmentIter<'a> {
    values: std::slice::Iter<'a, f64>,
    times: &'a [u8],
    pos: usize,
    at_ms: u64,
    delta: i64,
    started: bool,
}

impl Iterator for SegmentIter<'_> {
    type Item = Sample;

    fn next(&mut self) -> Option<Sample> {
        let value = *self.values.next()?;
        if self.started {
            let (z, next) = read_varint(self.times, self.pos);
            self.pos = next;
            self.delta += unzigzag(z);
            // Deltas of a sorted run are non-negative.
            self.at_ms = self.at_ms.wrapping_add(self.delta as u64);
        }
        self.started = true;
        Some(Sample {
            at: SimTime::from_millis(self.at_ms),
            value,
        })
    }
}

/// One series: frozen segments (ascending in time, touching at most at
/// boundary timestamps) plus the mutable sorted tail.
#[derive(Debug, Default)]
struct Series {
    segments: Vec<Segment>,
    tail: Vec<Sample>,
}

impl Series {
    /// The frozen watermark: the last frozen timestamp, if any segment
    /// exists. Appends strictly behind it must thaw.
    fn watermark(&self) -> Option<SimTime> {
        self.segments.last().map(|s| s.last_at)
    }

    /// Total samples (frozen + tail).
    fn len(&self) -> usize {
        self.segments.iter().map(Segment::count).sum::<usize>() + self.tail.len()
    }

    /// Freezes the tail into one new segment (no-op on an empty tail).
    /// Tail capacity is kept so steady-state appends stay allocation-free
    /// between freezes.
    fn freeze_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        self.segments.push(Segment::freeze(&self.tail));
        self.tail.clear();
    }

    /// Inserts a sample that lands strictly behind the frozen watermark:
    /// thaws the overlapped suffix of segments back into the tail, then
    /// inserts at the binary-searched position (after any equal
    /// timestamps, matching the flat store's duplicate-time order).
    fn insert_behind_watermark(&mut self, at: SimTime, value: f64) {
        let keep = self.segments.partition_point(|s| s.last_at <= at);
        let mut thawed: Vec<Sample> = self.segments[keep..]
            .iter()
            .flat_map(Segment::iter)
            .collect();
        self.segments.truncate(keep);
        thawed.append(&mut self.tail);
        self.tail = thawed;
        let idx = self.tail.partition_point(|s| s.at <= at);
        self.tail.insert(idx, Sample { at, value });
    }

    /// Materializes the full series in time order.
    fn materialize(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            out.extend(seg.iter());
        }
        out.extend_from_slice(&self.tail);
        out
    }

    /// Visits every sample with `from <= at < to` in time order, pruning
    /// frozen segments via their summaries. Returns
    /// `(segments_pruned, segments_decoded)`.
    fn for_each_in_window(
        &self,
        from: SimTime,
        to: SimTime,
        f: &mut dyn FnMut(Sample),
    ) -> (u64, u64) {
        // Segments are time-ordered, so the overlap run is contiguous:
        // binary-search past everything ending before the window, stop at
        // the first segment starting at/after its end.
        let lo = self.segments.partition_point(|s| s.last_at < from);
        let mut hi = lo;
        for seg in &self.segments[lo..] {
            if seg.first_at >= to {
                break;
            }
            hi += 1;
            if seg.first_at >= from && seg.last_at < to {
                // Fully inside the window: no per-sample filtering.
                for s in seg.iter() {
                    f(s);
                }
            } else {
                for s in seg.iter() {
                    if s.at >= from && s.at < to {
                        f(s);
                    }
                }
            }
        }
        let pruned = (lo + (self.segments.len() - hi)) as u64;
        let t_lo = self.tail.partition_point(|s| s.at < from);
        let t_hi = self.tail.partition_point(|s| s.at < to);
        for s in &self.tail[t_lo..t_hi] {
            f(*s);
        }
        (pruned, (hi - lo) as u64)
    }

    /// Count/min/max over `[from, to)`. Segments wholly inside the window
    /// fold in via their summary — **no decode** — so on a deep frozen
    /// series this touches O(segments) summaries plus at most two partial
    /// segments, where the flat layout walks every in-window sample.
    /// Returns `(extremes, pruned, summarized, decoded)`.
    fn extremes_in_window(&self, from: SimTime, to: SimTime) -> (Extremes, u64, u64, u64) {
        let mut acc = Extremes::EMPTY;
        let lo = self.segments.partition_point(|s| s.last_at < from);
        let mut hi = lo;
        let mut summarized = 0u64;
        let mut decoded = 0u64;
        for seg in &self.segments[lo..] {
            if seg.first_at >= to {
                break;
            }
            hi += 1;
            if seg.first_at >= from && seg.last_at < to {
                acc.push_summary(seg);
                summarized += 1;
            } else {
                decoded += 1;
                for s in seg.iter() {
                    if s.at >= from && s.at < to {
                        acc.push(s.value);
                    }
                }
            }
        }
        let pruned = (lo + (self.segments.len() - hi)) as u64;
        let t_lo = self.tail.partition_point(|s| s.at < from);
        let t_hi = self.tail.partition_point(|s| s.at < to);
        for s in &self.tail[t_lo..t_hi] {
            acc.push(s.value);
        }
        (acc, pruned, summarized, decoded)
    }

    /// Drops samples older than `cutoff`; returns how many were removed.
    /// Whole segments drop in O(1) each; at most one segment straddles the
    /// cutoff (segment ranges touch only at boundary timestamps) and is
    /// decoded, trimmed and re-frozen.
    fn prune_before(&mut self, cutoff: SimTime) -> u64 {
        let drop = self.segments.partition_point(|s| s.last_at < cutoff);
        let mut removed: u64 = self.segments[..drop].iter().map(|s| s.count() as u64).sum();
        self.segments.drain(..drop);
        if let Some(seg) = self.segments.first() {
            if seg.first_at < cutoff {
                let kept: Vec<Sample> = seg.iter().filter(|s| s.at >= cutoff).collect();
                removed += seg.count() as u64 - kept.len() as u64;
                // `last_at >= cutoff`, so at least the last sample survives.
                self.segments[0] = Segment::freeze(&kept);
            }
        }
        let keep_from = self.tail.partition_point(|s| s.at < cutoff);
        removed += keep_from as u64;
        self.tail.drain(..keep_from);
        removed
    }
}

/// The time-series store.
///
/// # Example
/// ```
/// use swamp_core::history::HistoryStore;
/// use swamp_sim::SimTime;
/// let mut h = HistoryStore::new();
/// h.append("urn:p1", "moisture_vwc", SimTime::from_hours(1), 0.24);
/// h.append("urn:p1", "moisture_vwc", SimTime::from_hours(2), 0.22);
/// h.compact(); // freeze into a columnar segment — queries are unchanged
/// let agg = h.aggregate("urn:p1", "moisture_vwc",
///                       SimTime::ZERO, SimTime::from_hours(3)).unwrap();
/// assert_eq!(agg.count, 2);
/// ```
#[derive(Debug, Default)]
pub struct HistoryStore {
    /// Interner: entity → attribute → series id. Two-level so lookups use
    /// borrowed `&str` keys (no tuple-of-`String` allocation per call).
    index: HashMap<String, HashMap<String, SeriesId>>,
    /// Series storage, indexed by [`SeriesId`].
    series: Vec<Series>,
    total_samples: u64,
    /// Auto-freeze the tail at this many samples; `None` never freezes
    /// (the flat pre-segment behavior).
    segment_threshold: Option<usize>,
    /// Query-side pruning evidence; atomics so read paths stay `&self`
    /// (the store is `Sync` — pinned by the shard pool's Send/Sync audit).
    pruned: AtomicU64,
    summarized: AtomicU64,
    decoded: AtomicU64,
}

impl HistoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        HistoryStore::default()
    }

    /// Total samples stored.
    pub fn len(&self) -> u64 {
        self.total_samples
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.total_samples == 0
    }

    /// Number of distinct (entity, attribute) series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Total frozen segments across all series.
    pub fn segment_count(&self) -> usize {
        self.series.iter().map(|s| s.segments.len()).sum()
    }

    /// Sets the auto-freeze cadence: a series' tail is frozen into a
    /// segment whenever it reaches `threshold` samples. `None` (the
    /// default) never auto-freezes; [`HistoryStore::compact`] still works.
    pub fn set_segment_threshold(&mut self, threshold: Option<usize>) {
        // A zero threshold would freeze empty runs; clamp to 1.
        self.segment_threshold = threshold.map(|t| t.max(1));
    }

    /// The configured auto-freeze cadence.
    pub fn segment_threshold(&self) -> Option<usize> {
        self.segment_threshold
    }

    /// Freezes every series' tail into a columnar segment ("compact now").
    /// Queries before and after are byte-identical; only the storage
    /// layout changes. Returns the number of segments created.
    pub fn compact(&mut self) -> usize {
        let before = self.segment_count();
        for series in &mut self.series {
            series.freeze_tail();
        }
        self.segment_count() - before
    }

    /// Drains the accumulated segment-pruning counters (query-side
    /// evidence; the platform exports them as `query.segments_*`).
    pub fn take_scan_stats(&self) -> ScanStats {
        ScanStats {
            segments_pruned: self.pruned.swap(0, Ordering::Relaxed),
            segments_summarized: self.summarized.swap(0, Ordering::Relaxed),
            segments_decoded: self.decoded.swap(0, Ordering::Relaxed),
        }
    }

    fn note_scan(&self, pruned: u64, summarized: u64, decoded: u64) {
        self.pruned.fetch_add(pruned, Ordering::Relaxed);
        self.summarized.fetch_add(summarized, Ordering::Relaxed);
        self.decoded.fetch_add(decoded, Ordering::Relaxed);
    }

    /// Per-segment summaries of one series' frozen segments, in time
    /// order (empty for unknown or never-compacted series). Pure
    /// metadata: nothing is decoded.
    pub fn segment_summaries(&self, entity: &str, attr: &str) -> Vec<SegmentSummary> {
        self.series(entity, attr)
            .map(|s| {
                s.segments
                    .iter()
                    .map(|g| SegmentSummary {
                        first_at: g.first_at,
                        last_at: g.last_at,
                        count: g.count(),
                        min: g.min,
                        max: g.max,
                        first: g.first,
                        last: g.last,
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The interned id of a series, if it has ever been appended to.
    /// Borrowed-key lookup: allocates nothing.
    pub fn series_id(&self, entity: &str, attr: &str) -> Option<SeriesId> {
        self.index.get(entity)?.get(attr).copied()
    }

    /// Interns (entity, attr), creating an empty series if new. Key strings
    /// are only allocated here, on first sight of a series.
    ///
    /// # Panics
    /// Panics past 2^32 distinct series (the 32-bit id space; a simulated
    /// deployment is orders of magnitude smaller).
    pub fn intern(&mut self, entity: &str, attr: &str) -> SeriesId {
        if let Some(id) = self.series_id(entity, attr) {
            return id;
        }
        let id = SeriesId::try_from(self.series.len()).expect("fewer than 2^32 series");
        self.series.push(Series::default());
        self.index
            .entry(entity.to_owned())
            .or_default()
            .insert(attr.to_owned(), id);
        id
    }

    /// Appends a sample. Out-of-order appends are accepted and inserted at
    /// the binary-searched position, keeping the series sorted. Steady
    /// state (known series, in-order time) allocates nothing beyond
    /// amortized tail growth.
    pub fn append(&mut self, entity: &str, attr: &str, at: SimTime, value: f64) {
        let id = self.intern(entity, attr);
        self.append_to(id, at, value);
    }

    /// Appends to an already-interned series — the zero-lookup fast path
    /// for callers that cache [`SeriesId`]s.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this store's interner.
    pub fn append_to(&mut self, id: SeriesId, at: SimTime, value: f64) {
        let series = &mut self.series[id as usize];
        match series.watermark() {
            // Strictly behind frozen data: thaw the overlapped suffix.
            // (An append *at* the watermark stays in the tail: duplicate
            // timestamps insert after their equals, same as the flat
            // store.)
            Some(w) if at < w => series.insert_behind_watermark(at, value),
            _ => match series.tail.last() {
                Some(last) if last.at > at => {
                    let idx = series.tail.partition_point(|s| s.at <= at);
                    series.tail.insert(idx, Sample { at, value });
                }
                _ => series.tail.push(Sample { at, value }),
            },
        }
        if let Some(t) = self.segment_threshold {
            if series.tail.len() >= t {
                series.freeze_tail();
            }
        }
        self.total_samples += 1;
    }

    fn series(&self, entity: &str, attr: &str) -> Option<&Series> {
        self.series_id(entity, attr)
            .map(|id| &self.series[id as usize])
    }

    /// Samples in `[from, to)` for one series (empty if unknown), appended
    /// into `out` — the reusable-buffer form of [`HistoryStore::range`].
    pub fn range_into(
        &self,
        entity: &str,
        attr: &str,
        from: SimTime,
        to: SimTime,
        out: &mut Vec<Sample>,
    ) {
        if let Some(series) = self.series(entity, attr) {
            let (pruned, decoded) = series.for_each_in_window(from, to, &mut |s| out.push(s));
            self.note_scan(pruned, 0, decoded);
        }
    }

    /// Samples in `[from, to)` for one series (empty if unknown).
    pub fn range(&self, entity: &str, attr: &str, from: SimTime, to: SimTime) -> Vec<Sample> {
        let mut out = Vec::new();
        self.range_into(entity, attr, from, to, &mut out);
        out
    }

    /// The most recent sample of a series — answered from the tail or the
    /// last segment's summary, never by decoding.
    pub fn last(&self, entity: &str, attr: &str) -> Option<Sample> {
        let series = self.series(entity, attr)?;
        series.tail.last().copied().or_else(|| {
            series.segments.last().map(|seg| Sample {
                at: seg.last_at,
                value: seg.last,
            })
        })
    }

    /// Window aggregate over `[from, to)`; `None` if no samples fall inside.
    pub fn aggregate(
        &self,
        entity: &str,
        attr: &str,
        from: SimTime,
        to: SimTime,
    ) -> Option<WindowAggregate> {
        let series = self.series(entity, attr)?;
        let mut stats = OnlineStats::new();
        let mut last = None;
        let (pruned, decoded) = series.for_each_in_window(from, to, &mut |s| {
            stats.push(s.value);
            last = Some(s.value);
        });
        self.note_scan(pruned, 0, decoded);
        Some(WindowAggregate {
            count: stats.count(),
            mean: stats.mean(),
            min: stats.min(),
            max: stats.max(),
            last: last?,
        })
    }

    /// Count/min/max over `[from, to)`; `None` if no samples fall inside.
    ///
    /// This is the **summary-served** aggregate: segments wholly inside
    /// the window fold in via their frozen summary without decoding
    /// (counted as `segments_summarized` in [`ScanStats`]), so a wide
    /// window over a deep frozen series costs O(segments) instead of the
    /// flat layout's O(samples) walk — the read-path asymmetry E15's
    /// p50/p99 gate measures. [`HistoryStore::aggregate`] cannot do this:
    /// its mean is a sequential float fold, so it must decode every
    /// in-window sample to stay bit-identical across layouts; count, min
    /// and max compose exactly under any grouping (see [`Extremes`]).
    pub fn extremes(
        &self,
        entity: &str,
        attr: &str,
        from: SimTime,
        to: SimTime,
    ) -> Option<Extremes> {
        let series = self.series(entity, attr)?;
        let (acc, pruned, summarized, decoded) = series.extremes_in_window(from, to);
        self.note_scan(pruned, summarized, decoded);
        (acc.count > 0).then_some(acc)
    }

    /// Downsamples a series into fixed buckets of `bucket` duration over
    /// `[from, to)`, returning one aggregate per non-empty bucket with its
    /// bucket start time — what dashboards and the analytics jobs consume.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn downsample(
        &self,
        entity: &str,
        attr: &str,
        from: SimTime,
        to: SimTime,
        bucket: swamp_sim::SimDuration,
    ) -> Vec<(SimTime, WindowAggregate)> {
        assert!(
            bucket != swamp_sim::SimDuration::ZERO,
            "bucket duration must be positive"
        );
        let mut out: Vec<(SimTime, WindowAggregate)> = Vec::new();
        let Some(series) = self.series(entity, attr) else {
            return out;
        };
        let mut bucket_start = from;
        let mut bucket_end = from.saturating_add(bucket).min(to);
        let mut stats = OnlineStats::new();
        let mut last: Option<f64> = None;
        let mut flush = |bs: SimTime, stats: &mut OnlineStats, last: &mut Option<f64>| {
            if let Some(l) = last.take() {
                out.push((
                    bs,
                    WindowAggregate {
                        count: stats.count(),
                        mean: stats.mean(),
                        min: stats.min(),
                        max: stats.max(),
                        last: l,
                    },
                ));
            }
            *stats = OnlineStats::new();
        };
        let (pruned, decoded) = series.for_each_in_window(from, to, &mut |s| {
            while s.at >= bucket_end && bucket_end < to {
                flush(bucket_start, &mut stats, &mut last);
                bucket_start = bucket_end;
                bucket_end = bucket_start.saturating_add(bucket).min(to);
            }
            stats.push(s.value);
            last = Some(s.value);
        });
        flush(bucket_start, &mut stats, &mut last);
        self.note_scan(pruned, 0, decoded);
        out
    }

    /// Dumps every series in deterministic `(entity, attr)` order, with its
    /// time-sorted samples. The interner's `HashMap` order never leaks: the
    /// output is sorted, so two stores holding the same samples — however
    /// the appends were interleaved, sharded or compacted — dump
    /// identically. Keys are *borrowed* from the interner (they used to be
    /// cloned per call, and the differential suites fingerprint with this
    /// in an inner loop); only the sample vectors are materialized.
    pub fn dump_sorted(&self) -> Vec<(&str, &str, Vec<Sample>)> {
        let mut keys: Vec<(&str, &str, SeriesId)> = self
            .index
            .iter()
            .flat_map(|(entity, attrs)| {
                attrs
                    .iter()
                    .map(move |(attr, id)| (entity.as_str(), attr.as_str(), *id))
            })
            .collect();
        keys.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        keys.into_iter()
            .map(|(entity, attr, id)| (entity, attr, self.series[id as usize].materialize()))
            .collect()
    }

    /// Drops samples older than `cutoff` across all series (retention).
    /// Returns how many were removed. Wholly expired segments drop in
    /// O(1) each — the flat store paid an O(series length) memmove per
    /// series per call.
    pub fn prune_before(&mut self, cutoff: SimTime) -> u64 {
        let mut removed = 0;
        for series in &mut self.series {
            removed += series.prune_before(cutoff);
        }
        self.total_samples -= removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::{SimDuration, SimRng};

    fn t(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn append_and_range() {
        let mut h = HistoryStore::new();
        for i in 0..10 {
            h.append("e", "a", t(i), i as f64);
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.series_count(), 1);
        let r = h.range("e", "a", t(3), t(7));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].value, 3.0);
        assert_eq!(r[3].value, 6.0);
        // Half-open: sample at t(7) excluded.
        assert!(r.iter().all(|s| s.at < t(7)));
    }

    #[test]
    fn out_of_order_appends_sorted() {
        let mut h = HistoryStore::new();
        h.append("e", "a", t(5), 5.0);
        h.append("e", "a", t(1), 1.0);
        h.append("e", "a", t(3), 3.0);
        let r = h.range("e", "a", t(0), t(10));
        let times: Vec<u64> = r.iter().map(|s| s.at.as_millis()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn shuffled_appends_keep_series_sorted_and_complete() {
        // Deterministic pseudo-shuffle over a larger series: every
        // insertion position is exercised, including duplicates.
        let mut h = HistoryStore::new();
        let n = 257u64;
        for i in 0..n {
            let hour = (i * 97) % n; // 97 coprime with 257: a permutation
            h.append("e", "a", t(hour), hour as f64);
            h.append("e", "a", t(hour), hour as f64 + 0.5); // duplicate time
        }
        let r = h.range("e", "a", t(0), t(n + 1));
        assert_eq!(r.len() as u64, 2 * n);
        assert!(r.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        // Duplicate-time inserts land after the existing equal timestamp.
        for w in r.chunks(2) {
            assert_eq!(w[0].at, w[1].at);
            assert_eq!(w[1].value - w[0].value, 0.5);
        }
    }

    #[test]
    fn series_ids_are_dense_and_stable() {
        let mut h = HistoryStore::new();
        assert_eq!(h.series_id("e", "a"), None);
        h.append("e", "a", t(1), 1.0);
        h.append("e", "b", t(1), 2.0);
        h.append("e2", "a", t(1), 3.0);
        let id_ea = h.series_id("e", "a").unwrap();
        let id_eb = h.series_id("e", "b").unwrap();
        let id_e2a = h.series_id("e2", "a").unwrap();
        assert_eq!((id_ea, id_eb, id_e2a), (0, 1, 2));
        // Re-appending reuses the interned id.
        h.append("e", "a", t(2), 4.0);
        assert_eq!(h.series_id("e", "a"), Some(id_ea));
        assert_eq!(h.intern("e", "a"), id_ea);
        assert_eq!(h.series_count(), 3);
    }

    #[test]
    fn append_to_interned_id_fast_path() {
        let mut h = HistoryStore::new();
        let id = h.intern("e", "a");
        h.append_to(id, t(1), 1.0);
        h.append_to(id, t(2), 2.0);
        assert_eq!(h.last("e", "a").unwrap().value, 2.0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn aggregate_math() {
        let mut h = HistoryStore::new();
        for (i, v) in [2.0, 4.0, 6.0, 8.0].iter().enumerate() {
            h.append("e", "a", t(i as u64), *v);
        }
        let agg = h.aggregate("e", "a", t(0), t(10)).unwrap();
        assert_eq!(agg.count, 4);
        assert_eq!(agg.mean, 5.0);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 8.0);
        assert_eq!(agg.last, 8.0);
        assert!(h.aggregate("e", "a", t(20), t(30)).is_none());
        assert!(h.aggregate("ghost", "a", t(0), t(10)).is_none());
    }

    #[test]
    fn last_sample() {
        let mut h = HistoryStore::new();
        assert!(h.last("e", "a").is_none());
        h.append("e", "a", t(1), 1.0);
        h.append("e", "a", t(2), 2.0);
        assert_eq!(h.last("e", "a").unwrap().value, 2.0);
    }

    #[test]
    fn series_are_independent() {
        let mut h = HistoryStore::new();
        h.append("e1", "a", t(1), 1.0);
        h.append("e2", "a", t(1), 2.0);
        h.append("e1", "b", t(1), 3.0);
        assert_eq!(h.series_count(), 3);
        assert_eq!(h.range("e1", "a", t(0), t(2)).len(), 1);
        assert_eq!(h.last("e1", "b").unwrap().value, 3.0);
    }

    #[test]
    fn prune_retention() {
        let mut h = HistoryStore::new();
        for i in 0..10 {
            h.append("e", "a", t(i), i as f64);
        }
        let removed = h.prune_before(t(6));
        assert_eq!(removed, 6);
        assert_eq!(h.len(), 4);
        assert_eq!(h.range("e", "a", t(0), t(100)).len(), 4);
        assert_eq!(h.range("e", "a", t(0), t(100))[0].value, 6.0);
    }

    #[test]
    fn empty_store_queries() {
        let h = HistoryStore::new();
        assert!(h.is_empty());
        assert!(h.range("e", "a", t(0), t(10)).is_empty());
    }

    #[test]
    fn downsample_buckets_correctly() {
        use swamp_sim::SimDuration;
        let mut h = HistoryStore::new();
        // Two samples per hour for 6 hours.
        for i in 0..12u64 {
            h.append("e", "a", SimTime::from_millis(i * 30 * 60 * 1000), i as f64);
        }
        let day = h.downsample("e", "a", t(0), t(6), SimDuration::from_hours(2));
        assert_eq!(day.len(), 3);
        // First 2-hour bucket holds samples 0..4.
        assert_eq!(day[0].0, t(0));
        assert_eq!(day[0].1.count, 4);
        assert_eq!(day[0].1.mean, 1.5);
        assert_eq!(day[0].1.last, 3.0);
        assert_eq!(day[2].1.count, 4);
        assert_eq!(day[2].1.max, 11.0);
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        use swamp_sim::SimDuration;
        let mut h = HistoryStore::new();
        h.append("e", "a", t(0), 1.0);
        h.append("e", "a", t(5), 2.0);
        let buckets = h.downsample("e", "a", t(0), t(6), SimDuration::from_hours(1));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, t(0));
        assert_eq!(buckets[1].0, t(5));
    }

    #[test]
    fn downsample_unknown_series_empty() {
        use swamp_sim::SimDuration;
        let h = HistoryStore::new();
        assert!(h
            .downsample("ghost", "a", t(0), t(10), SimDuration::from_hours(1))
            .is_empty());
    }

    // --- segment-compaction coverage ------------------------------------

    #[test]
    fn segment_roundtrip_is_exact() {
        // Irregular cadence, duplicate timestamps, negative dod steps:
        // freezing and decoding must reproduce the samples bit-for-bit.
        let samples: Vec<Sample> = [0u64, 1, 1, 4, 4, 5, 1000, 1001, 1002, 500_000]
            .iter()
            .enumerate()
            .map(|(i, &ms)| Sample {
                at: SimTime::from_millis(ms),
                value: i as f64 * 0.37 - 1.0,
            })
            .collect();
        let seg = Segment::freeze(&samples);
        assert_eq!(seg.count(), samples.len());
        assert_eq!(seg.first_at, samples[0].at);
        assert_eq!(seg.last_at, samples[samples.len() - 1].at);
        assert_eq!(seg.first, samples[0].value);
        assert_eq!(seg.last, samples[samples.len() - 1].value);
        assert_eq!(seg.min, -1.0);
        let decoded: Vec<Sample> = seg.iter().collect();
        assert_eq!(decoded, samples);
        // Regular cadence compresses: dod is zero after the first delta.
        let regular: Vec<Sample> = (0..100)
            .map(|i| Sample {
                at: SimTime::from_secs(60 * i),
                value: 1.0,
            })
            .collect();
        let seg = Segment::freeze(&regular);
        assert!(
            seg.times.len() <= regular.len() + 4,
            "regular cadence should take ~1 byte/sample, got {} bytes",
            seg.times.len()
        );
    }

    #[test]
    fn zigzag_varint_edges() {
        for v in [0i64, 1, -1, 63, -64, 64, i64::MAX, i64::MIN, 1 << 40] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            assert_eq!(read_varint(&buf, 0), (v, buf.len()));
        }
    }

    #[test]
    fn compaction_is_observationally_free() {
        // The in-tree seeded differential: a flat store vs an
        // every-8-appends store vs an explicitly compacted store, fed an
        // identical stream with out-of-order timestamps, must agree on
        // every read. (The full cadence × shard matrix lives in
        // crates/pilots/tests/compaction_differential.rs.)
        let mut rng = SimRng::seed_from(0xE15);
        let mut flat = HistoryStore::new();
        let mut auto8 = HistoryStore::new();
        auto8.set_segment_threshold(Some(8));
        let mut manual = HistoryStore::new();
        for step in 0..600u64 {
            let e = format!("e{}", step % 5);
            let at = if rng.chance(0.15) {
                // Out of order: up to 3 hours behind the stream head.
                SimTime::from_hours(step.saturating_sub(rng.below(4)))
            } else {
                SimTime::from_hours(step)
            };
            let v = rng.uniform_f64();
            flat.append(&e, "m", at, v);
            auto8.append(&e, "m", at, v);
            manual.append(&e, "m", at, v);
            if step % 37 == 0 {
                manual.compact();
            }
        }
        assert!(auto8.segment_count() > 0 && manual.segment_count() > 0);
        assert_eq!(flat.dump_sorted(), auto8.dump_sorted());
        assert_eq!(flat.dump_sorted(), manual.dump_sorted());
        for e in ["e0", "e1", "e2", "e3", "e4"] {
            for (from, to) in [(t(0), t(600)), (t(100), t(101)), (t(590), t(600))] {
                assert_eq!(flat.range(e, "m", from, to), auto8.range(e, "m", from, to));
                assert_eq!(
                    flat.aggregate(e, "m", from, to),
                    manual.aggregate(e, "m", from, to)
                );
                assert_eq!(
                    flat.downsample(e, "m", from, to, SimDuration::from_hours(7)),
                    auto8.downsample(e, "m", from, to, SimDuration::from_hours(7))
                );
            }
            assert_eq!(flat.last(e, "m"), manual.last(e, "m"));
        }
    }

    #[test]
    fn prune_cuts_mid_segment() {
        let mut h = HistoryStore::new();
        for i in 0..20 {
            h.append("e", "a", t(i), i as f64);
        }
        h.compact();
        h.append("e", "a", t(20), 20.0);
        assert_eq!(h.segment_count(), 1);
        // Cutoff lands inside the frozen segment: it is decoded, trimmed
        // and re-frozen; the summary must be recomputed.
        let removed = h.prune_before(t(7));
        assert_eq!(removed, 7);
        assert_eq!(h.len(), 14);
        assert_eq!(h.segment_count(), 1);
        let r = h.range("e", "a", t(0), t(100));
        assert_eq!(r.len(), 14);
        assert_eq!(r[0].value, 7.0);
        let agg = h.aggregate("e", "a", t(0), t(100)).unwrap();
        assert_eq!(agg.min, 7.0);
        assert_eq!(agg.max, 20.0);
        // The re-frozen segment's summary was recomputed from the
        // surviving samples.
        let summaries = h.segment_summaries("e", "a");
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].first_at, t(7));
        assert_eq!(summaries[0].last_at, t(19));
        assert_eq!(summaries[0].count, 13);
        assert_eq!(summaries[0].min, 7.0);
        assert_eq!(summaries[0].max, 19.0);
        assert_eq!(summaries[0].first, 7.0);
        assert_eq!(summaries[0].last, 19.0);
        // Cutoff past the whole segment: it drops in O(1), tail survives.
        let removed = h.prune_before(t(20));
        assert_eq!(removed, 13);
        assert_eq!(h.segment_count(), 0);
        assert_eq!(h.last("e", "a").unwrap().value, 20.0);
    }

    #[test]
    fn out_of_order_append_behind_frozen_watermark_thaws() {
        let mut h = HistoryStore::new();
        for i in [0u64, 2, 4, 6, 8] {
            h.append("e", "a", t(i), i as f64);
        }
        h.compact();
        assert_eq!(h.segment_count(), 1);
        // Behind the watermark: the overlapped segment thaws back into the
        // tail and the sample lands at its sorted position.
        h.append("e", "a", t(3), 3.0);
        assert_eq!(h.segment_count(), 0);
        let r = h.range("e", "a", t(0), t(10));
        let values: Vec<f64> = r.iter().map(|s| s.value).collect();
        assert_eq!(values, vec![0.0, 2.0, 3.0, 4.0, 6.0, 8.0]);
        // Exactly at the watermark: no thaw, lands after its equal.
        h.compact();
        h.append("e", "a", t(8), 8.5);
        assert_eq!(h.segment_count(), 1);
        let r = h.range("e", "a", t(8), t(9));
        assert_eq!(r.len(), 2);
        assert_eq!((r[0].value, r[1].value), (8.0, 8.5));
        // Multi-segment: only the overlapped suffix thaws.
        let mut h = HistoryStore::new();
        h.set_segment_threshold(Some(2));
        for i in 0..8u64 {
            h.append("e", "a", t(i), i as f64);
        }
        assert_eq!(h.segment_count(), 4);
        h.append("e", "a", t(5), 5.5);
        // Segments with last_at <= t(5) stay frozen (three of them — the
        // duplicate lands in the tail *after* the frozen 5.0, preserving
        // insert-after-equals); the thawed [6,7] + new sample re-freeze
        // via the threshold.
        assert_eq!(h.segment_count(), 4);
        let vals: Vec<f64> = h
            .range("e", "a", t(0), t(10))
            .iter()
            .map(|s| s.value)
            .collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 5.5, 6.0, 7.0]);
    }

    #[test]
    fn empty_series_intern_survives_compaction_and_dump() {
        let mut h = HistoryStore::new();
        let id = h.intern("e", "a");
        assert_eq!(h.compact(), 0, "nothing to freeze");
        assert_eq!(h.prune_before(t(5)), 0);
        let dump = h.dump_sorted();
        assert_eq!(dump.len(), 1);
        assert_eq!((dump[0].0, dump[0].1), ("e", "a"));
        assert!(dump[0].2.is_empty());
        assert!(h.last("e", "a").is_none());
        assert!(h.range("e", "a", t(0), t(10)).is_empty());
        h.append_to(id, t(1), 1.0);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn scan_stats_count_pruned_and_decoded_segments() {
        let mut h = HistoryStore::new();
        h.set_segment_threshold(Some(10));
        for i in 0..100u64 {
            h.append("e", "a", t(i), i as f64);
        }
        assert_eq!(h.segment_count(), 10);
        let _ = h.take_scan_stats();
        // A window over the last segment's span prunes the other nine.
        let r = h.range("e", "a", t(90), t(100));
        assert_eq!(r.len(), 10);
        let stats = h.take_scan_stats();
        assert_eq!(stats.segments_decoded, 1);
        assert_eq!(stats.segments_pruned, 9);
        // Draining resets the counters.
        assert_eq!(h.take_scan_stats(), ScanStats::default());
    }

    #[test]
    fn extremes_served_from_summaries_matches_flat() {
        let mut rng = SimRng::seed_from(9).split("extremes");
        let mut flat = HistoryStore::new();
        let mut seg = HistoryStore::new();
        seg.set_segment_threshold(Some(8));
        for i in 0..100u64 {
            let v = rng.uniform_f64() * 100.0 - 50.0;
            flat.append("e", "a", t(i), v);
            seg.append("e", "a", t(i), v);
        }
        let _ = seg.take_scan_stats();
        // Identical answers at every window shape: full, mid-segment
        // boundaries on both ends, tail-only, empty.
        for (from, to) in [(0, 100), (3, 97), (8, 96), (90, 100), (40, 40)] {
            assert_eq!(
                flat.extremes("e", "a", t(from), t(to)),
                seg.extremes("e", "a", t(from), t(to)),
                "window [{from}, {to})"
            );
        }
        // The wide window answered whole segments from summaries alone.
        let stats = seg.take_scan_stats();
        assert!(stats.segments_summarized > 0, "{stats:?}");
        // Cross-check one window against the decoded aggregate.
        let e = seg.extremes("e", "a", t(8), t(96)).unwrap();
        let a = seg.aggregate("e", "a", t(8), t(96)).unwrap();
        assert_eq!((e.count, e.min, e.max), (a.count, a.min, a.max));
        // Empty window and unknown series are None.
        assert_eq!(seg.extremes("e", "a", t(40), t(40)), None);
        assert_eq!(seg.extremes("nope", "a", t(0), t(100)), None);
    }

    #[test]
    fn threshold_freezes_automatically() {
        let mut h = HistoryStore::new();
        h.set_segment_threshold(Some(4));
        assert_eq!(h.segment_threshold(), Some(4));
        for i in 0..9u64 {
            h.append("e", "a", t(i), i as f64);
        }
        assert_eq!(h.segment_count(), 2);
        assert_eq!(h.len(), 9);
        assert_eq!(h.range("e", "a", t(0), t(9)).len(), 9);
        // Threshold 0 clamps to 1 (every sample its own segment).
        let mut h = HistoryStore::new();
        h.set_segment_threshold(Some(0));
        h.append("e", "a", t(0), 0.0);
        h.append("e", "a", t(1), 1.0);
        assert_eq!(h.segment_count(), 2);
    }
}
