//! Historical time-series store (FIWARE STH-Comet analogue).
//!
//! Appends `(time, value)` samples per (entity, attribute) and answers
//! range queries and window aggregates — what the irrigation scheduler and
//! the anomaly baselines read.
//!
//! # Hot-path design
//!
//! Every accepted telemetry frame appends one sample per numeric
//! attribute, so `append` is on the sensor→cloud critical path. Series
//! keys are *interned*: a two-level `entity → attr → u32` map resolves
//! borrowed `&str` keys to a dense [`SeriesId`] without allocating, and
//! samples live in a flat `Vec` indexed by that id. Steady-state appends
//! (series already known, in-order timestamp) therefore allocate nothing
//! beyond amortized sample-vector growth. Out-of-order appends insert at
//! the binary-searched position (`partition_point`), keeping every series
//! sorted so range queries and aggregates stay `O(log n + k)`.

use std::collections::HashMap;

use swamp_sim::stats::OnlineStats;
use swamp_sim::SimTime;

/// Dense identifier of one (entity, attribute) series, assigned by the
/// interner on first append and stable for the store's lifetime.
pub type SeriesId = u32;

/// One stored sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Observation time.
    pub at: SimTime,
    /// Observed value.
    pub value: f64,
}

/// Aggregates over a query window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowAggregate {
    /// Samples in the window.
    pub count: u64,
    /// Mean value.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Last value in the window.
    pub last: f64,
}

/// The time-series store.
///
/// # Example
/// ```
/// use swamp_core::history::HistoryStore;
/// use swamp_sim::SimTime;
/// let mut h = HistoryStore::new();
/// h.append("urn:p1", "moisture_vwc", SimTime::from_hours(1), 0.24);
/// h.append("urn:p1", "moisture_vwc", SimTime::from_hours(2), 0.22);
/// let agg = h.aggregate("urn:p1", "moisture_vwc",
///                       SimTime::ZERO, SimTime::from_hours(3)).unwrap();
/// assert_eq!(agg.count, 2);
/// ```
#[derive(Debug, Default)]
pub struct HistoryStore {
    /// Interner: entity → attribute → series id. Two-level so lookups use
    /// borrowed `&str` keys (no tuple-of-`String` allocation per call).
    index: HashMap<String, HashMap<String, SeriesId>>,
    /// Sample storage, indexed by [`SeriesId`]; each vec sorted by time.
    series: Vec<Vec<Sample>>,
    total_samples: u64,
}

impl HistoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        HistoryStore::default()
    }

    /// Total samples stored.
    pub fn len(&self) -> u64 {
        self.total_samples
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.total_samples == 0
    }

    /// Number of distinct (entity, attribute) series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// The interned id of a series, if it has ever been appended to.
    /// Borrowed-key lookup: allocates nothing.
    pub fn series_id(&self, entity: &str, attr: &str) -> Option<SeriesId> {
        self.index.get(entity)?.get(attr).copied()
    }

    /// Interns (entity, attr), creating an empty series if new. Key strings
    /// are only allocated here, on first sight of a series.
    ///
    /// # Panics
    /// Panics past 2^32 distinct series (the 32-bit id space; a simulated
    /// deployment is orders of magnitude smaller).
    pub fn intern(&mut self, entity: &str, attr: &str) -> SeriesId {
        if let Some(id) = self.series_id(entity, attr) {
            return id;
        }
        let id = SeriesId::try_from(self.series.len()).expect("fewer than 2^32 series");
        self.series.push(Vec::new());
        self.index
            .entry(entity.to_owned())
            .or_default()
            .insert(attr.to_owned(), id);
        id
    }

    /// Appends a sample. Out-of-order appends are accepted and inserted at
    /// the binary-searched position, keeping the series sorted. Steady
    /// state (known series, in-order time) allocates nothing beyond
    /// amortized sample-vector growth.
    pub fn append(&mut self, entity: &str, attr: &str, at: SimTime, value: f64) {
        let id = self.intern(entity, attr);
        self.append_to(id, at, value);
    }

    /// Appends to an already-interned series — the zero-lookup fast path
    /// for callers that cache [`SeriesId`]s.
    ///
    /// # Panics
    /// Panics if `id` was not returned by this store's interner.
    pub fn append_to(&mut self, id: SeriesId, at: SimTime, value: f64) {
        let series = &mut self.series[id as usize];
        // Common case: in-order append.
        match series.last() {
            Some(last) if last.at > at => {
                let idx = series.partition_point(|s| s.at <= at);
                series.insert(idx, Sample { at, value });
            }
            _ => series.push(Sample { at, value }),
        }
        self.total_samples += 1;
    }

    fn samples(&self, entity: &str, attr: &str) -> Option<&Vec<Sample>> {
        self.series_id(entity, attr)
            .map(|id| &self.series[id as usize])
    }

    /// Samples in `[from, to)` for one series (empty slice if unknown).
    pub fn range(&self, entity: &str, attr: &str, from: SimTime, to: SimTime) -> &[Sample] {
        match self.samples(entity, attr) {
            None => &[],
            Some(series) => {
                let lo = series.partition_point(|s| s.at < from);
                let hi = series.partition_point(|s| s.at < to);
                &series[lo..hi]
            }
        }
    }

    /// The most recent sample of a series.
    pub fn last(&self, entity: &str, attr: &str) -> Option<Sample> {
        self.samples(entity, attr).and_then(|s| s.last().copied())
    }

    /// Window aggregate over `[from, to)`; `None` if no samples fall inside.
    pub fn aggregate(
        &self,
        entity: &str,
        attr: &str,
        from: SimTime,
        to: SimTime,
    ) -> Option<WindowAggregate> {
        let samples = self.range(entity, attr, from, to);
        let last = samples.last()?.value;
        let mut stats = OnlineStats::new();
        for s in samples {
            stats.push(s.value);
        }
        Some(WindowAggregate {
            count: stats.count(),
            mean: stats.mean(),
            min: stats.min(),
            max: stats.max(),
            last,
        })
    }

    /// Downsamples a series into fixed buckets of `bucket` duration over
    /// `[from, to)`, returning one aggregate per non-empty bucket with its
    /// bucket start time — what dashboards and the analytics jobs consume.
    ///
    /// # Panics
    /// Panics if `bucket` is zero.
    pub fn downsample(
        &self,
        entity: &str,
        attr: &str,
        from: SimTime,
        to: SimTime,
        bucket: swamp_sim::SimDuration,
    ) -> Vec<(SimTime, WindowAggregate)> {
        assert!(!bucket.is_zero(), "bucket duration must be positive");
        let samples = self.range(entity, attr, from, to);
        let mut out: Vec<(SimTime, WindowAggregate)> = Vec::new();
        let mut idx = 0;
        let mut bucket_start = from;
        while bucket_start < to && idx < samples.len() {
            let bucket_end = bucket_start.saturating_add(bucket).min(to);
            let mut stats = OnlineStats::new();
            let mut last = None;
            while idx < samples.len() && samples[idx].at < bucket_end {
                stats.push(samples[idx].value);
                last = Some(samples[idx].value);
                idx += 1;
            }
            if let Some(last) = last {
                out.push((
                    bucket_start,
                    WindowAggregate {
                        count: stats.count(),
                        mean: stats.mean(),
                        min: stats.min(),
                        max: stats.max(),
                        last,
                    },
                ));
            }
            bucket_start = bucket_end;
        }
        out
    }

    /// Dumps every series in deterministic `(entity, attr)` order, with its
    /// time-sorted samples. The interner's `HashMap` order never leaks: the
    /// output is sorted, so two stores holding the same samples — however
    /// the appends were interleaved or sharded — dump identically. This is
    /// what the shard differential harness compares.
    pub fn dump_sorted(&self) -> Vec<(String, String, Vec<Sample>)> {
        let mut keys: Vec<(&str, &str, SeriesId)> = self
            .index
            .iter()
            .flat_map(|(entity, attrs)| {
                attrs
                    .iter()
                    .map(move |(attr, id)| (entity.as_str(), attr.as_str(), *id))
            })
            .collect();
        keys.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        keys.into_iter()
            .map(|(entity, attr, id)| {
                (
                    entity.to_owned(),
                    attr.to_owned(),
                    self.series[id as usize].clone(),
                )
            })
            .collect()
    }

    /// Drops samples older than `cutoff` across all series (retention).
    /// Returns how many were removed.
    pub fn prune_before(&mut self, cutoff: SimTime) -> u64 {
        let mut removed = 0;
        for series in &mut self.series {
            let keep_from = series.partition_point(|s| s.at < cutoff);
            removed += keep_from as u64;
            series.drain(..keep_from);
        }
        self.total_samples -= removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> SimTime {
        SimTime::from_hours(h)
    }

    #[test]
    fn append_and_range() {
        let mut h = HistoryStore::new();
        for i in 0..10 {
            h.append("e", "a", t(i), i as f64);
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.series_count(), 1);
        let r = h.range("e", "a", t(3), t(7));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].value, 3.0);
        assert_eq!(r[3].value, 6.0);
        // Half-open: sample at t(7) excluded.
        assert!(r.iter().all(|s| s.at < t(7)));
    }

    #[test]
    fn out_of_order_appends_sorted() {
        let mut h = HistoryStore::new();
        h.append("e", "a", t(5), 5.0);
        h.append("e", "a", t(1), 1.0);
        h.append("e", "a", t(3), 3.0);
        let r = h.range("e", "a", t(0), t(10));
        let times: Vec<u64> = r.iter().map(|s| s.at.as_millis()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
    }

    #[test]
    fn shuffled_appends_keep_series_sorted_and_complete() {
        // Deterministic pseudo-shuffle over a larger series: every
        // insertion position is exercised, including duplicates.
        let mut h = HistoryStore::new();
        let n = 257u64;
        for i in 0..n {
            let hour = (i * 97) % n; // 97 coprime with 257: a permutation
            h.append("e", "a", t(hour), hour as f64);
            h.append("e", "a", t(hour), hour as f64 + 0.5); // duplicate time
        }
        let r = h.range("e", "a", t(0), t(n + 1));
        assert_eq!(r.len() as u64, 2 * n);
        assert!(r.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        // Duplicate-time inserts land after the existing equal timestamp.
        for w in r.chunks(2) {
            assert_eq!(w[0].at, w[1].at);
            assert_eq!(w[1].value - w[0].value, 0.5);
        }
    }

    #[test]
    fn series_ids_are_dense_and_stable() {
        let mut h = HistoryStore::new();
        assert_eq!(h.series_id("e", "a"), None);
        h.append("e", "a", t(1), 1.0);
        h.append("e", "b", t(1), 2.0);
        h.append("e2", "a", t(1), 3.0);
        let id_ea = h.series_id("e", "a").unwrap();
        let id_eb = h.series_id("e", "b").unwrap();
        let id_e2a = h.series_id("e2", "a").unwrap();
        assert_eq!((id_ea, id_eb, id_e2a), (0, 1, 2));
        // Re-appending reuses the interned id.
        h.append("e", "a", t(2), 4.0);
        assert_eq!(h.series_id("e", "a"), Some(id_ea));
        assert_eq!(h.intern("e", "a"), id_ea);
        assert_eq!(h.series_count(), 3);
    }

    #[test]
    fn append_to_interned_id_fast_path() {
        let mut h = HistoryStore::new();
        let id = h.intern("e", "a");
        h.append_to(id, t(1), 1.0);
        h.append_to(id, t(2), 2.0);
        assert_eq!(h.last("e", "a").unwrap().value, 2.0);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn aggregate_math() {
        let mut h = HistoryStore::new();
        for (i, v) in [2.0, 4.0, 6.0, 8.0].iter().enumerate() {
            h.append("e", "a", t(i as u64), *v);
        }
        let agg = h.aggregate("e", "a", t(0), t(10)).unwrap();
        assert_eq!(agg.count, 4);
        assert_eq!(agg.mean, 5.0);
        assert_eq!(agg.min, 2.0);
        assert_eq!(agg.max, 8.0);
        assert_eq!(agg.last, 8.0);
        assert!(h.aggregate("e", "a", t(20), t(30)).is_none());
        assert!(h.aggregate("ghost", "a", t(0), t(10)).is_none());
    }

    #[test]
    fn last_sample() {
        let mut h = HistoryStore::new();
        assert!(h.last("e", "a").is_none());
        h.append("e", "a", t(1), 1.0);
        h.append("e", "a", t(2), 2.0);
        assert_eq!(h.last("e", "a").unwrap().value, 2.0);
    }

    #[test]
    fn series_are_independent() {
        let mut h = HistoryStore::new();
        h.append("e1", "a", t(1), 1.0);
        h.append("e2", "a", t(1), 2.0);
        h.append("e1", "b", t(1), 3.0);
        assert_eq!(h.series_count(), 3);
        assert_eq!(h.range("e1", "a", t(0), t(2)).len(), 1);
        assert_eq!(h.last("e1", "b").unwrap().value, 3.0);
    }

    #[test]
    fn prune_retention() {
        let mut h = HistoryStore::new();
        for i in 0..10 {
            h.append("e", "a", t(i), i as f64);
        }
        let removed = h.prune_before(t(6));
        assert_eq!(removed, 6);
        assert_eq!(h.len(), 4);
        assert_eq!(h.range("e", "a", t(0), t(100)).len(), 4);
        assert_eq!(h.range("e", "a", t(0), t(100))[0].value, 6.0);
    }

    #[test]
    fn empty_store_queries() {
        let h = HistoryStore::new();
        assert!(h.is_empty());
        assert!(h.range("e", "a", t(0), t(10)).is_empty());
    }

    #[test]
    fn downsample_buckets_correctly() {
        use swamp_sim::SimDuration;
        let mut h = HistoryStore::new();
        // Two samples per hour for 6 hours.
        for i in 0..12u64 {
            h.append("e", "a", SimTime::from_millis(i * 30 * 60 * 1000), i as f64);
        }
        let day = h.downsample("e", "a", t(0), t(6), SimDuration::from_hours(2));
        assert_eq!(day.len(), 3);
        // First 2-hour bucket holds samples 0..4.
        assert_eq!(day[0].0, t(0));
        assert_eq!(day[0].1.count, 4);
        assert_eq!(day[0].1.mean, 1.5);
        assert_eq!(day[0].1.last, 3.0);
        assert_eq!(day[2].1.count, 4);
        assert_eq!(day[2].1.max, 11.0);
    }

    #[test]
    fn downsample_skips_empty_buckets() {
        use swamp_sim::SimDuration;
        let mut h = HistoryStore::new();
        h.append("e", "a", t(0), 1.0);
        h.append("e", "a", t(5), 2.0);
        let buckets = h.downsample("e", "a", t(0), t(6), SimDuration::from_hours(1));
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, t(0));
        assert_eq!(buckets[1].0, t(5));
    }

    #[test]
    fn downsample_unknown_series_empty() {
        use swamp_sim::SimDuration;
        let h = HistoryStore::new();
        assert!(h
            .downsample("ghost", "a", t(0), t(10), SimDuration::from_hours(1))
            .is_empty());
    }
}
