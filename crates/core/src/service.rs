//! The irrigation decision service: the platform component that turns
//! context-broker state into per-zone irrigation prescriptions.
//!
//! This is the "smart algorithms" box in the paper's architecture. It
//! subscribes to soil-probe entity updates, maintains the latest estimate
//! per managed zone, and — once per scheduling cycle — runs each zone's
//! policy against the *platform's* view of the field (possibly stale,
//! noisy or quarantine-filtered; never ground truth).

use swamp_codec::ngsi::Entity;
use swamp_irrigation::schedule::{DepthMm, IrrigationPolicy, ZoneView};
use swamp_security::pipeline::{DetectorBank, Recommendation};
use swamp_sim::SimTime;

use crate::broker::{ContextBroker, SubscriptionFilter, SubscriptionId};

/// Static description of one managed zone.
pub struct ManagedZone {
    /// Entity id of the zone's soil probe (e.g. `urn:swamp:device:probe-3`).
    pub probe_entity: String,
    /// Device id of that probe (for quarantine lookups).
    pub probe_device: String,
    /// Volumetric water content at field capacity, m³/m³.
    pub field_capacity: f64,
    /// Total available water, mm.
    pub taw_mm: f64,
    /// Readily available water, mm.
    pub raw_mm: f64,
    /// Root-zone depth, mm (converts VWC to depletion).
    pub root_depth_mm: f64,
    /// The zone's irrigation policy.
    pub policy: Box<dyn IrrigationPolicy>,
}

/// One cycle's decision for a zone.
#[derive(Clone, Debug, PartialEq)]
pub struct ZoneDecision {
    /// Index of the zone in the service's zone list.
    pub zone: usize,
    /// Depth to apply, mm (0 = skip).
    pub depth_mm: DepthMm,
    /// Whether the decision used fresh data or a stale/held estimate.
    pub data_fresh: bool,
    /// Whether the zone was skipped because its probe is quarantined.
    pub probe_quarantined: bool,
}

/// The irrigation decision service.
///
/// # Example
/// ```
/// use swamp_core::broker::ContextBroker;
/// use swamp_core::service::{IrrigationService, ManagedZone};
/// use swamp_irrigation::schedule::ThresholdRefill;
/// use swamp_codec::ngsi::Entity;
/// use swamp_security::pipeline::DetectorBank;
/// use swamp_sim::SimTime;
///
/// let mut broker = ContextBroker::new();
/// let mut service = IrrigationService::new(&mut broker, vec![ManagedZone {
///     probe_entity: "urn:swamp:device:p1".into(),
///     probe_device: "p1".into(),
///     field_capacity: 0.27,
///     taw_mm: 90.0,
///     raw_mm: 45.0,
///     root_depth_mm: 600.0,
///     policy: Box::new(ThresholdRefill::new(1.0)),
/// }]);
///
/// // A dry probe reading arrives through the broker…
/// let mut e = Entity::new("urn:swamp:device:p1", "SoilProbe");
/// e.set("moisture_vwc", 0.18);
/// broker.upsert(SimTime::ZERO, e);
///
/// // …and the next cycle prescribes a refill.
/// let detectors = DetectorBank::new();
/// let decisions = service.run_cycle(&mut broker, &detectors, 6.0, 0.0, 40);
/// assert!(decisions[0].depth_mm > 0.0);
/// ```
pub struct IrrigationService {
    zones: Vec<ManagedZone>,
    subscription: SubscriptionId,
    /// Latest VWC estimate per zone and whether it is fresh this cycle.
    latest_vwc: Vec<Option<f64>>,
    fresh: Vec<bool>,
    cycles: u64,
    /// Reused drain buffer: keeps the broker queue's and this buffer's
    /// capacity warm across cycles instead of reallocating each poll.
    note_buf: Vec<crate::broker::Notification>,
}

impl IrrigationService {
    /// Creates a service managing `zones`, subscribing to their probes'
    /// updates on the broker.
    pub fn new(broker: &mut ContextBroker, zones: Vec<ManagedZone>) -> Self {
        let subscription = broker.subscribe(SubscriptionFilter {
            entity_type: Some("SoilProbe".into()),
            id_prefix: None,
            watched_attrs: vec!["moisture_vwc".into()],
        });
        let n = zones.len();
        IrrigationService {
            zones,
            subscription,
            latest_vwc: vec![None; n],
            fresh: vec![false; n],
            cycles: 0,
            note_buf: Vec::new(),
        }
    }

    /// Number of managed zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Scheduling cycles run so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Absorbs pending broker notifications into the per-zone estimates.
    fn absorb_notifications(&mut self, broker: &mut ContextBroker) {
        // The service registered this subscription at construction and
        // never unsubscribes; if a caller tore it down on the broker side
        // there is simply nothing to absorb.
        if broker
            .drain_notifications_into(self.subscription, &mut self.note_buf)
            .is_err()
        {
            return;
        }
        for note in self.note_buf.drain(..) {
            let id = note.entity.id().as_str();
            if let Some(zone) = self.zones.iter().position(|z| z.probe_entity == id) {
                if let Some(vwc) = note.entity.number("moisture_vwc") {
                    self.latest_vwc[zone] = Some(vwc);
                    self.fresh[zone] = true;
                }
            }
        }
    }

    /// Runs one scheduling cycle: reads the broker, screens quarantined
    /// probes, and produces a decision per zone.
    ///
    /// `etc_mm` is today's crop-demand estimate, `forecast_rain_mm` the
    /// rain forecast, `das` days after sowing.
    pub fn run_cycle(
        &mut self,
        broker: &mut ContextBroker,
        detectors: &DetectorBank,
        etc_mm: f64,
        forecast_rain_mm: f64,
        das: u32,
    ) -> Vec<ZoneDecision> {
        self.absorb_notifications(broker);
        self.cycles += 1;
        let mut decisions = Vec::with_capacity(self.zones.len());
        for (i, zone) in self.zones.iter_mut().enumerate() {
            let quarantined =
                detectors.recommendation(&zone.probe_device) == Recommendation::Quarantine;
            if quarantined {
                // Never act on untrusted data; hold the zone.
                decisions.push(ZoneDecision {
                    zone: i,
                    depth_mm: 0.0,
                    data_fresh: false,
                    probe_quarantined: true,
                });
                continue;
            }
            let Some(vwc) = self.latest_vwc[i] else {
                decisions.push(ZoneDecision {
                    zone: i,
                    depth_mm: 0.0,
                    data_fresh: false,
                    probe_quarantined: false,
                });
                continue;
            };
            let depletion_mm =
                ((zone.field_capacity - vwc) * zone.root_depth_mm).clamp(0.0, zone.taw_mm);
            let view = ZoneView {
                depletion_mm,
                taw_mm: zone.taw_mm,
                raw_mm: zone.raw_mm,
                etc_mm,
                forecast_rain_mm,
                das,
            };
            decisions.push(ZoneDecision {
                zone: i,
                depth_mm: zone.policy.decide(&view),
                data_fresh: self.fresh[i],
                probe_quarantined: false,
            });
            self.fresh[i] = false;
        }
        decisions
    }

    /// Publishes the decisions back into the context broker as a
    /// prescription entity (`urn:swamp:service:irrigation`), so dashboards
    /// and the fog replica see what the service decided.
    pub fn publish_prescription(
        &self,
        broker: &mut ContextBroker,
        now: SimTime,
        decisions: &[ZoneDecision],
    ) {
        let mut e = Entity::new("urn:swamp:service:irrigation", "IrrigationPlan");
        e.set(
            "depths_mm",
            decisions.iter().map(|d| d.depth_mm).collect::<Vec<f64>>(),
        );
        e.set("cycle", self.cycles as f64);
        broker.upsert(now, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_irrigation::schedule::ThresholdRefill;
    use swamp_security::detect::RangeValidator;

    fn probe_update(broker: &mut ContextBroker, entity: &str, vwc: f64) {
        let mut e = Entity::new(entity, "SoilProbe");
        e.set("moisture_vwc", vwc);
        broker.upsert(SimTime::ZERO, e);
    }

    fn service(broker: &mut ContextBroker, n: usize) -> IrrigationService {
        let zones = (0..n)
            .map(|i| ManagedZone {
                probe_entity: format!("urn:swamp:device:p{i}"),
                probe_device: format!("p{i}"),
                field_capacity: 0.27,
                taw_mm: 90.0,
                raw_mm: 45.0,
                root_depth_mm: 600.0,
                policy: Box::new(ThresholdRefill::new(1.0)),
            })
            .collect();
        IrrigationService::new(broker, zones)
    }

    #[test]
    fn wet_zone_skipped_dry_zone_refilled() {
        let mut broker = ContextBroker::new();
        let mut svc = service(&mut broker, 2);
        probe_update(&mut broker, "urn:swamp:device:p0", 0.26); // near FC
        probe_update(&mut broker, "urn:swamp:device:p1", 0.17); // 60 mm down
        let detectors = DetectorBank::new();
        let d = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 30);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].depth_mm, 0.0);
        assert!((d[1].depth_mm - 60.0).abs() < 1e-9);
        assert!(d[1].data_fresh);
    }

    #[test]
    fn no_data_means_no_action() {
        let mut broker = ContextBroker::new();
        let mut svc = service(&mut broker, 1);
        let detectors = DetectorBank::new();
        let d = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 0);
        assert_eq!(d[0].depth_mm, 0.0);
        assert!(!d[0].data_fresh);
    }

    #[test]
    fn stale_data_still_used_but_marked() {
        let mut broker = ContextBroker::new();
        let mut svc = service(&mut broker, 1);
        probe_update(&mut broker, "urn:swamp:device:p0", 0.17);
        let detectors = DetectorBank::new();
        let d1 = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 1);
        assert!(d1[0].data_fresh);
        // Next cycle, no new reading: the estimate is reused, marked stale.
        let d2 = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 2);
        assert!(!d2[0].data_fresh);
        assert!(d2[0].depth_mm > 0.0);
    }

    #[test]
    fn quarantined_probe_holds_its_zone() {
        let mut broker = ContextBroker::new();
        let mut svc = service(&mut broker, 2);
        probe_update(&mut broker, "urn:swamp:device:p0", 0.10); // very dry
        probe_update(&mut broker, "urn:swamp:device:p1", 0.10);
        // p0's device is quarantined by the detection pipeline.
        let mut detectors = DetectorBank::new();
        detectors.configure_quantity("moisture_vwc", RangeValidator::soil_moisture());
        detectors.observe_value(SimTime::ZERO, "p0", "moisture_vwc", 5.0);
        let d = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 10);
        assert!(d[0].probe_quarantined);
        assert_eq!(d[0].depth_mm, 0.0, "never irrigate on untrusted data");
        assert!(d[1].depth_mm > 0.0, "healthy zone unaffected");
    }

    #[test]
    fn prescription_published_to_broker() {
        let mut broker = ContextBroker::new();
        let mut svc = service(&mut broker, 2);
        probe_update(&mut broker, "urn:swamp:device:p0", 0.17);
        let detectors = DetectorBank::new();
        let d = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 5);
        svc.publish_prescription(&mut broker, SimTime::ZERO, &d);
        let plan = broker
            .entity(&"urn:swamp:service:irrigation".into())
            .expect("plan entity");
        let depths = plan
            .attribute("depths_mm")
            .unwrap()
            .value
            .as_number_list()
            .unwrap();
        assert_eq!(depths.len(), 2);
        assert!(depths[0] > 0.0);
        assert_eq!(plan.number("cycle"), Some(1.0));
    }

    #[test]
    fn unrelated_entities_ignored() {
        let mut broker = ContextBroker::new();
        let mut svc = service(&mut broker, 1);
        // An update from a probe the service does not manage.
        probe_update(&mut broker, "urn:swamp:device:other", 0.05);
        let detectors = DetectorBank::new();
        let d = svc.run_cycle(&mut broker, &detectors, 6.0, 0.0, 1);
        assert_eq!(d[0].depth_mm, 0.0);
        assert_eq!(svc.zone_count(), 1);
    }
}
