//! Device registry: which devices exist, who owns them, and their
//! platform-facing metadata. The ingestion pipeline consults it to reject
//! telemetry from unregistered (rogue) devices — the paper's "unauthorized
//! node in the network may send false information about the crop".

use std::collections::BTreeMap;

use swamp_sensors::device::DeviceKind;
use swamp_sim::SimTime;

/// A registered device's metadata.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceRecord {
    /// Device kind.
    pub kind: DeviceKind,
    /// Owning principal (e.g. `"owner:matopiba"`).
    pub owner: String,
    /// When it was registered.
    pub registered_at: SimTime,
    /// Whether telemetry from it is currently accepted.
    pub enabled: bool,
}

/// Registry errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegistryError {
    /// A device with this id already exists.
    AlreadyRegistered(String),
    /// No such device.
    Unknown(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::AlreadyRegistered(id) => {
                write!(f, "device {id:?} already registered")
            }
            RegistryError::Unknown(id) => write!(f, "unknown device {id:?}"),
        }
    }
}
impl std::error::Error for RegistryError {}

/// The device registry.
#[derive(Clone, Debug, Default)]
pub struct DeviceRegistry {
    devices: BTreeMap<String, DeviceRecord>,
}

impl DeviceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        DeviceRegistry::default()
    }

    /// Registers a device.
    ///
    /// # Errors
    /// [`RegistryError::AlreadyRegistered`] on id collision.
    pub fn register(
        &mut self,
        id: &str,
        kind: DeviceKind,
        owner: &str,
        now: SimTime,
    ) -> Result<(), RegistryError> {
        if self.devices.contains_key(id) {
            return Err(RegistryError::AlreadyRegistered(id.to_owned()));
        }
        self.devices.insert(
            id.to_owned(),
            DeviceRecord {
                kind,
                owner: owner.to_owned(),
                registered_at: now,
                enabled: true,
            },
        );
        Ok(())
    }

    /// Looks up a device.
    pub fn get(&self, id: &str) -> Option<&DeviceRecord> {
        self.devices.get(id)
    }

    /// Whether a device exists and is enabled.
    pub fn is_active(&self, id: &str) -> bool {
        self.devices.get(id).is_some_and(|d| d.enabled)
    }

    /// Enables/disables a device (quarantine on suspicion).
    ///
    /// # Errors
    /// [`RegistryError::Unknown`] if the device was never registered.
    pub fn set_enabled(&mut self, id: &str, enabled: bool) -> Result<(), RegistryError> {
        match self.devices.get_mut(id) {
            Some(d) => {
                d.enabled = enabled;
                Ok(())
            }
            None => Err(RegistryError::Unknown(id.to_owned())),
        }
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates `(id, record)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &DeviceRecord)> {
        self.devices.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Devices belonging to an owner.
    pub fn by_owner<'a>(
        &'a self,
        owner: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a DeviceRecord)> + 'a {
        self.iter().filter(move |(_, r)| r.owner == owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = DeviceRegistry::new();
        r.register("p1", DeviceKind::SoilProbe, "owner:cbec", SimTime::ZERO)
            .unwrap();
        assert!(r.is_active("p1"));
        assert_eq!(r.get("p1").unwrap().kind, DeviceKind::SoilProbe);
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn duplicate_rejected() {
        let mut r = DeviceRegistry::new();
        r.register("p1", DeviceKind::SoilProbe, "o", SimTime::ZERO)
            .unwrap();
        assert_eq!(
            r.register("p1", DeviceKind::Valve, "o", SimTime::ZERO),
            Err(RegistryError::AlreadyRegistered("p1".into()))
        );
    }

    #[test]
    fn unknown_not_active() {
        let r = DeviceRegistry::new();
        assert!(!r.is_active("ghost"));
        assert!(r.get("ghost").is_none());
    }

    #[test]
    fn quarantine_flow() {
        let mut r = DeviceRegistry::new();
        r.register("p1", DeviceKind::SoilProbe, "o", SimTime::ZERO)
            .unwrap();
        r.set_enabled("p1", false).unwrap();
        assert!(!r.is_active("p1"));
        r.set_enabled("p1", true).unwrap();
        assert!(r.is_active("p1"));
        assert_eq!(
            r.set_enabled("ghost", true),
            Err(RegistryError::Unknown("ghost".into()))
        );
    }

    #[test]
    fn owner_filtering() {
        let mut r = DeviceRegistry::new();
        r.register("a1", DeviceKind::SoilProbe, "owner:a", SimTime::ZERO)
            .unwrap();
        r.register("a2", DeviceKind::Valve, "owner:a", SimTime::ZERO)
            .unwrap();
        r.register("b1", DeviceKind::Pump, "owner:b", SimTime::ZERO)
            .unwrap();
        assert_eq!(r.by_owner("owner:a").count(), 2);
        assert_eq!(r.by_owner("owner:b").count(), 1);
        assert_eq!(r.by_owner("owner:c").count(), 0);
        assert_eq!(r.iter().count(), 3);
    }
}
