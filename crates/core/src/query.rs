//! The typed query API — **one read surface** for the whole platform.
//!
//! Before this module, every harness read a different raw accessor:
//! `history()` for samples, `context()` for entity state,
//! `cloud_replica_mut()` for replica records. Each accessor leaked a
//! storage detail (and `cloud_replica_mut` leaked *mutable* storage), so
//! the storage layer could not change shape without breaking every
//! consumer — exactly the coupling the columnar-segment redesign had to
//! remove. [`QueryRequest`]/[`QueryResponse`] replace them behind
//! [`Drive::query`](crate::drive::Drive::query): a single-shard
//! [`Platform`](crate::platform::Platform) answers from its own stores,
//! and a `ShardedPlatform` answers the *same request* by fanning out to
//! its shards in shard-id order and merging with
//! [`QueryResponse::merge`] — callers cannot tell the difference, which
//! is the point.
//!
//! Responses serialize deterministically ([`QueryResponse::to_json`]):
//! the compaction differential suite byte-compares serialized responses
//! across segment cadences, and the E15 harness cross-checks compacted
//! vs uncompacted platforms the same way.

use swamp_codec::json::Json;
use swamp_sim::{SimDuration, SimTime};
use swamp_views::ViewSnapshot;

use crate::history::{Extremes, Sample, WindowAggregate};

/// A read request. Time windows are half-open `[from, to)`, matching the
/// history store.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryRequest {
    /// Raw samples of one series in a window.
    Range {
        /// Entity id.
        entity: String,
        /// Attribute name.
        attr: String,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
    },
    /// Window aggregate (count/mean/min/max/last) of one series.
    Aggregate {
        /// Entity id.
        entity: String,
        /// Attribute name.
        attr: String,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
    },
    /// Count/min/max of one series — the summary-served aggregate. On a
    /// compacted store, segments wholly inside the window are answered
    /// from their frozen summaries without decoding (count/min/max
    /// compose exactly under any grouping, unlike `Aggregate`'s
    /// sequential mean), so wide windows over deep series cost
    /// O(segments) instead of O(samples).
    Extremes {
        /// Entity id.
        entity: String,
        /// Attribute name.
        attr: String,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
    },
    /// Fixed-bucket downsample of one series.
    Downsample {
        /// Entity id.
        entity: String,
        /// Attribute name.
        attr: String,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        to: SimTime,
        /// Bucket width (must be positive).
        bucket: SimDuration,
    },
    /// The most recent sample of one series.
    Last {
        /// Entity id.
        entity: String,
        /// Attribute name.
        attr: String,
    },
    /// Every series, sorted by `(entity, attr)` — the fingerprint read
    /// the differential suites use.
    SeriesDump,
    /// Sequence numbers of the applied cloud-replica records. Per-fog
    /// sequence spaces are independent, so a sharded answer is the sorted
    /// concatenation of per-shard spaces.
    ReplicaSeqs,
    /// The materialized views (farm rollups, top-K consumers, alert
    /// digest), caught up to the cloud replica as of this call.
    Views,
}

/// One series of a [`QueryResponse::Series`] dump.
#[derive(Clone, Debug, PartialEq)]
pub struct SeriesEntry {
    /// Entity id.
    pub entity: String,
    /// Attribute name.
    pub attr: String,
    /// Time-sorted samples.
    pub samples: Vec<Sample>,
}

/// A read response; variants correspond 1:1 to [`QueryRequest`].
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`QueryRequest::Range`].
    Samples(Vec<Sample>),
    /// Answer to [`QueryRequest::Aggregate`] (`None`: empty window).
    Aggregate(Option<WindowAggregate>),
    /// Answer to [`QueryRequest::Extremes`] (`None`: empty window).
    Extremes(Option<Extremes>),
    /// Answer to [`QueryRequest::Downsample`]: non-empty buckets with
    /// their start times.
    Buckets(Vec<(SimTime, WindowAggregate)>),
    /// Answer to [`QueryRequest::Last`] (`None`: unknown series).
    Sample(Option<Sample>),
    /// Answer to [`QueryRequest::SeriesDump`], sorted by `(entity, attr)`.
    Series(Vec<SeriesEntry>),
    /// Answer to [`QueryRequest::ReplicaSeqs`].
    Seqs(Vec<u64>),
    /// Answer to [`QueryRequest::Views`].
    Views(ViewSnapshot),
}

impl QueryResponse {
    /// The identity element for [`QueryResponse::merge`] of the given
    /// request — what a fan-out starts from before folding in shard
    /// answers (and what a shard with no matching data returns).
    pub fn empty_for(req: &QueryRequest) -> QueryResponse {
        match req {
            QueryRequest::Range { .. } => QueryResponse::Samples(Vec::new()),
            QueryRequest::Aggregate { .. } => QueryResponse::Aggregate(None),
            QueryRequest::Extremes { .. } => QueryResponse::Extremes(None),
            QueryRequest::Downsample { .. } => QueryResponse::Buckets(Vec::new()),
            QueryRequest::Last { .. } => QueryResponse::Sample(None),
            QueryRequest::SeriesDump => QueryResponse::Series(Vec::new()),
            QueryRequest::ReplicaSeqs => QueryResponse::Seqs(Vec::new()),
            QueryRequest::Views => QueryResponse::Views(ViewSnapshot::default()),
        }
    }

    /// Folds a sibling shard's answer into this one. Entity routing makes
    /// per-series reads single-owner (at most one shard answers
    /// non-empty), series/entity key sets disjoint, and per-fog sequence
    /// spaces independent — so: single-owner variants take the non-empty
    /// answer, `Series` merges sorted by `(entity, attr)`, `Seqs` sorts
    /// the concatenation, and `Views` delegates to
    /// [`ViewSnapshot::merge`]. Folding in shard-id order from
    /// [`QueryResponse::empty_for`] is deterministic in the shard count
    /// for everything except `Seqs` (whose per-shard spaces overlap
    /// numerically by design). Mismatched variants (a protocol bug) keep
    /// `self`.
    pub fn merge(&mut self, other: QueryResponse) {
        match (self, other) {
            (QueryResponse::Samples(a), QueryResponse::Samples(b)) => {
                if a.is_empty() {
                    *a = b;
                }
            }
            (QueryResponse::Aggregate(a), QueryResponse::Aggregate(b)) => {
                if a.is_none() {
                    *a = b;
                }
            }
            (QueryResponse::Extremes(a), QueryResponse::Extremes(b)) => {
                if a.is_none() {
                    *a = b;
                }
            }
            (QueryResponse::Buckets(a), QueryResponse::Buckets(b)) => {
                if a.is_empty() {
                    *a = b;
                }
            }
            (QueryResponse::Sample(a), QueryResponse::Sample(b)) => {
                if a.is_none() {
                    *a = b;
                }
            }
            (QueryResponse::Series(a), QueryResponse::Series(b)) => {
                a.extend(b);
                a.sort_by(|x, y| (&x.entity, &x.attr).cmp(&(&y.entity, &y.attr)));
            }
            (QueryResponse::Seqs(a), QueryResponse::Seqs(b)) => {
                a.extend(b);
                a.sort_unstable();
            }
            (QueryResponse::Views(a), QueryResponse::Views(b)) => {
                if a.applied == 0 && a.malformed == 0 && a.entities.is_empty() {
                    // Folding into the identity: adopt wholesale so the
                    // config (top-K, thresholds) comes from the shard,
                    // not the default.
                    *a = b;
                } else {
                    a.merge(b);
                }
            }
            _ => debug_assert!(false, "merging mismatched QueryResponse variants"),
        }
    }

    /// Serializes deterministically: object keys are sorted
    /// (`Json::Object` is a `BTreeMap`), arrays keep fold order, numbers
    /// are the exact `f64`s the stores produced. Two responses are equal
    /// iff their serializations are byte-equal — what the differential
    /// suites compare.
    pub fn to_json(&self) -> Json {
        fn sample(s: &Sample) -> Json {
            Json::object([
                ("at", Json::Number(s.at.as_millis() as f64)),
                ("value", Json::Number(s.value)),
            ])
        }
        fn agg(a: &WindowAggregate) -> Json {
            Json::object([
                ("count", Json::Number(a.count as f64)),
                ("mean", Json::Number(a.mean)),
                ("min", Json::Number(a.min)),
                ("max", Json::Number(a.max)),
                ("last", Json::Number(a.last)),
            ])
        }
        match self {
            QueryResponse::Samples(samples) => {
                Json::object([("samples", Json::Array(samples.iter().map(sample).collect()))])
            }
            QueryResponse::Aggregate(a) => {
                Json::object([("aggregate", a.as_ref().map(agg).unwrap_or(Json::Null))])
            }
            QueryResponse::Extremes(e) => Json::object([(
                "extremes",
                e.as_ref()
                    .map(|e| {
                        Json::object([
                            ("count", Json::Number(e.count as f64)),
                            ("min", Json::Number(e.min)),
                            ("max", Json::Number(e.max)),
                        ])
                    })
                    .unwrap_or(Json::Null),
            )]),
            QueryResponse::Buckets(buckets) => Json::object([(
                "buckets",
                Json::Array(
                    buckets
                        .iter()
                        .map(|(at, a)| {
                            Json::object([
                                ("at", Json::Number(at.as_millis() as f64)),
                                ("aggregate", agg(a)),
                            ])
                        })
                        .collect(),
                ),
            )]),
            QueryResponse::Sample(s) => {
                Json::object([("sample", s.as_ref().map(sample).unwrap_or(Json::Null))])
            }
            QueryResponse::Series(series) => Json::object([(
                "series",
                Json::Array(
                    series
                        .iter()
                        .map(|e| {
                            Json::object([
                                ("entity", Json::String(e.entity.clone())),
                                ("attr", Json::String(e.attr.clone())),
                                (
                                    "samples",
                                    Json::Array(e.samples.iter().map(sample).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            )]),
            QueryResponse::Seqs(seqs) => Json::object([(
                "seqs",
                Json::Array(seqs.iter().map(|s| Json::Number(*s as f64)).collect()),
            )]),
            QueryResponse::Views(snap) => Json::object([("views", snap.to_json())]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ms: u64, v: f64) -> Sample {
        Sample {
            at: SimTime::from_millis(ms),
            value: v,
        }
    }

    #[test]
    fn empty_for_matches_variants() {
        let reqs = [
            QueryRequest::Range {
                entity: "e".into(),
                attr: "a".into(),
                from: SimTime::ZERO,
                to: SimTime::from_hours(1),
            },
            QueryRequest::Extremes {
                entity: "e".into(),
                attr: "a".into(),
                from: SimTime::ZERO,
                to: SimTime::from_hours(1),
            },
            QueryRequest::SeriesDump,
            QueryRequest::ReplicaSeqs,
            QueryRequest::Views,
        ];
        for req in &reqs {
            let empty = QueryResponse::empty_for(req);
            // Identity law: empty.merge(x) == x for a same-variant x.
            let mut folded = QueryResponse::empty_for(req);
            folded.merge(empty.clone());
            assert_eq!(folded, empty);
        }
    }

    #[test]
    fn single_owner_merge_takes_nonempty() {
        let mut base = QueryResponse::Samples(Vec::new());
        base.merge(QueryResponse::Samples(vec![s(1, 1.0)]));
        base.merge(QueryResponse::Samples(Vec::new()));
        assert_eq!(base, QueryResponse::Samples(vec![s(1, 1.0)]));

        let mut base = QueryResponse::Sample(None);
        base.merge(QueryResponse::Sample(Some(s(2, 2.0))));
        assert_eq!(base, QueryResponse::Sample(Some(s(2, 2.0))));
    }

    #[test]
    fn series_merge_sorts_by_key() {
        let entry = |e: &str, a: &str| SeriesEntry {
            entity: e.into(),
            attr: a.into(),
            samples: vec![],
        };
        let mut base = QueryResponse::Series(vec![entry("b", "x")]);
        base.merge(QueryResponse::Series(vec![
            entry("a", "y"),
            entry("a", "x"),
        ]));
        match base {
            QueryResponse::Series(entries) => {
                let keys: Vec<(String, String)> =
                    entries.into_iter().map(|e| (e.entity, e.attr)).collect();
                assert_eq!(
                    keys,
                    vec![
                        ("a".into(), "x".into()),
                        ("a".into(), "y".into()),
                        ("b".into(), "x".into())
                    ]
                );
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn json_is_deterministic_and_distinguishes_values() {
        let a = QueryResponse::Samples(vec![s(1, 0.5), s(2, 0.25)]);
        let b = QueryResponse::Samples(vec![s(1, 0.5), s(2, 0.25)]);
        assert_eq!(
            a.to_json().to_compact_string(),
            b.to_json().to_compact_string()
        );
        let c = QueryResponse::Samples(vec![s(1, 0.5), s(2, 0.250001)]);
        assert_ne!(
            a.to_json().to_compact_string(),
            c.to_json().to_compact_string()
        );
        assert_eq!(
            QueryResponse::Aggregate(None).to_json().to_compact_string(),
            "{\"aggregate\":null}"
        );
        assert_eq!(
            QueryResponse::Extremes(Some(Extremes {
                count: 2,
                min: -1.5,
                max: 3.0,
            }))
            .to_json()
            .to_compact_string(),
            "{\"extremes\":{\"count\":2,\"max\":3,\"min\":-1.5}}"
        );
    }
}
