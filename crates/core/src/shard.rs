//! Stable device → shard routing.
//!
//! The scale-out tier (crate `swamp-shard`) partitions the platform into
//! per-farm shards; every device must land on exactly one shard, and the
//! assignment must survive re-registration, process restarts and shard
//! bring-up order. Routing therefore hashes the *device id string* — not
//! any registration-time state — with a fixed, seedless FNV-1a and reduces
//! modulo the shard count.
//!
//! Invariants (enforced by the always-on property tests in
//! `crates/shard/tests/routing.rs`):
//!
//! - **total** — every id maps to a shard for every `shard_count ≥ 1`;
//! - **stable** — the same id always maps to the same shard (the function
//!   is pure: no interior state, no registration order dependence);
//! - **balanced** — over realistic id populations the max/min shard load
//!   stays within 2× (FNV-1a mixes short ASCII ids well).

/// Identifier of one shard: a dense index in `0..shard_count`.
pub type ShardIndex = usize;

/// The canonical NGSI entity-id prefix for field devices
/// (`urn:swamp:device:<device_id>`).
pub const DEVICE_URN_PREFIX: &str = "urn:swamp:device:";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a digest of a device id — the stable routing key.
///
/// Exposed separately from [`route_device`] so tests and diagnostics can
/// inspect the pre-modulo key.
pub fn routing_key(device_id: &str) -> u64 {
    let mut hash = FNV_OFFSET;
    for byte in device_id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Routes a device id to a shard in `0..shard_count`.
///
/// Total for every `shard_count ≥ 1` (a zero shard count is treated as a
/// single shard rather than a division fault), pure, and stable: the result
/// depends only on the id bytes and the shard count.
pub fn route_device(device_id: &str, shard_count: usize) -> ShardIndex {
    let n = shard_count.max(1) as u64;
    (routing_key(device_id) % n) as ShardIndex
}

/// Derives the seed for shard `shard` from the deployment's base seed.
///
/// Shard 0 keeps the base seed unchanged, so a 1-shard deployment is
/// byte-identical to an unsharded platform built from the same builder —
/// the anchor of the shard differential proof. Higher shards mix the index
/// with a 64-bit golden-ratio stride so per-shard stochastic processes
/// (link loss, retry jitter) decorrelate.
pub fn shard_seed(base: u64, shard: ShardIndex) -> u64 {
    base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Routes an entity id, treating the canonical device URN
/// `urn:swamp:device:<id>` as the bare device id `<id>` — so a device and
/// the telemetry entities it publishes always land on the same shard.
/// Non-device entity ids route on their full string.
pub fn route_entity(entity_id: &str, shard_count: usize) -> ShardIndex {
    let key = entity_id
        .strip_prefix(DEVICE_URN_PREFIX)
        .unwrap_or(entity_id);
    route_device(key, shard_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_routes_everything_to_zero() {
        for id in ["", "probe-1", "urn:swamp:device:probe-999"] {
            assert_eq!(route_device(id, 1), 0);
            assert_eq!(route_device(id, 0), 0, "0 shards treated as 1");
        }
    }

    #[test]
    fn routing_is_pure_and_stable() {
        for n in [1usize, 2, 3, 8, 16] {
            let a = route_device("probe-42", n);
            let b = route_device("probe-42", n);
            assert_eq!(a, b);
            assert!(a < n);
        }
    }

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a 64-bit reference digests.
        assert_eq!(routing_key(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(routing_key("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn device_and_its_entity_share_a_shard() {
        for n in [1usize, 3, 8, 16] {
            for i in 0..100 {
                let dev = format!("probe-{i}");
                let urn = format!("{DEVICE_URN_PREFIX}{dev}");
                assert_eq!(route_device(&dev, n), route_entity(&urn, n));
            }
        }
        // Non-device ids route on the full string.
        assert_eq!(
            route_entity("urn:swamp:zone:z1", 8),
            route_device("urn:swamp:zone:z1", 8)
        );
    }

    #[test]
    fn distinct_ids_spread_over_shards() {
        let n = 8;
        let mut seen = vec![false; n];
        for i in 0..64 {
            seen[route_device(&format!("probe-{i}"), n)] = true;
        }
        assert!(seen.iter().all(|s| *s), "64 ids should hit all 8 shards");
    }
}
