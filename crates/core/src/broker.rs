//! The NGSI-like context broker (FIWARE Orion analogue).
//!
//! Entities are upserted (attribute-merge semantics); subscriptions match
//! on entity type and/or id prefix and optionally a watched attribute set,
//! and produce queued [`Notification`]s that consumers poll — deterministic
//! and free of callback re-entrancy.
//!
//! # Hot-path design
//!
//! The sensor→broker ingestion path is the platform's throughput-critical
//! loop (paper claim E11), so the broker is built around three ideas:
//!
//! - **Zero-copy fan-out**: entities are stored as [`Arc<Entity>`] and
//!   notifications share that snapshot (plus an `Arc<[String]>` changed-set)
//!   instead of deep-cloning per subscriber. An upsert with N matching
//!   subscribers performs zero per-subscriber entity clones; the stored
//!   entity is copy-on-write ([`Arc::make_mut`]), so a deep clone happens at
//!   most once per upsert and only while an earlier snapshot is still held
//!   by an undrained notification. Notifications are immutable snapshots —
//!   never views of live broker state.
//! - **Indexed routing**: subscriptions are bucketed by watched entity type
//!   (plus a bucket for type-agnostic filters), so an upsert only tests
//!   candidate subscriptions instead of scanning all of them; a secondary
//!   type→entity-id index backs [`ContextBroker::entities_of_type`].
//! - **Batched upserts**: [`ContextBroker::upsert_batch`] amortizes index
//!   lookups across a burst of updates, observationally equivalent to a
//!   loop of [`ContextBroker::upsert`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use swamp_codec::ngsi::{Entity, EntityId};
use swamp_sim::SimTime;

/// Identifier of a subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(u64);

/// What a subscription watches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubscriptionFilter {
    /// Match entities of this type (None = any).
    pub entity_type: Option<String>,
    /// Match entity ids with this prefix (None = any).
    pub id_prefix: Option<String>,
    /// Only fire when one of these attributes changed (empty = any change).
    pub watched_attrs: Vec<String>,
}

impl SubscriptionFilter {
    /// Matches every update.
    pub fn any() -> Self {
        SubscriptionFilter::default()
    }

    /// Matches a specific entity type.
    pub fn for_type(entity_type: impl Into<String>) -> Self {
        SubscriptionFilter {
            entity_type: Some(entity_type.into()),
            ..SubscriptionFilter::default()
        }
    }

    fn matches(&self, entity: &Entity, changed: &[String]) -> bool {
        if let Some(t) = &self.entity_type {
            if entity.entity_type() != t {
                return false;
            }
        }
        if let Some(p) = &self.id_prefix {
            if !entity.id().as_str().starts_with(p.as_str()) {
                return false;
            }
        }
        if !self.watched_attrs.is_empty() && !changed.iter().any(|c| self.watched_attrs.contains(c))
        {
            return false;
        }
        true
    }
}

/// A queued change notification.
///
/// The entity snapshot and changed-attribute set are shared (`Arc`) across
/// every subscriber the triggering upsert fanned out to: cloning a
/// `Notification` is cheap and never copies entity data. Snapshots are
/// immutable — later upserts copy-on-write the stored entity and can never
/// mutate what a notification holds.
#[derive(Clone, Debug, PartialEq)]
pub struct Notification {
    /// The subscription that fired.
    pub subscription: SubscriptionId,
    /// Snapshot of the entity after the update (shared, immutable).
    pub entity: Arc<Entity>,
    /// Attribute names that changed in the triggering update (shared).
    pub changed_attrs: Arc<[String]>,
    /// When the update happened.
    pub at: SimTime,
}

/// Error: the subscription id is not (or no longer) registered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnknownSubscription(pub SubscriptionId);

impl std::fmt::Display for UnknownSubscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown subscription {:?}", self.0)
    }
}
impl std::error::Error for UnknownSubscription {}

/// The context broker.
///
/// # Example
/// ```
/// use swamp_core::broker::{ContextBroker, SubscriptionFilter};
/// use swamp_codec::ngsi::Entity;
/// use swamp_sim::SimTime;
///
/// let mut broker = ContextBroker::new();
/// let sub = broker.subscribe(SubscriptionFilter::for_type("SoilProbe"));
///
/// let mut probe = Entity::new("urn:swamp:probe:1", "SoilProbe");
/// probe.set("moisture_vwc", 0.24);
/// broker.upsert(SimTime::ZERO, probe);
///
/// let notes = broker.take_notifications(sub).expect("subscribed");
/// assert_eq!(notes.len(), 1);
/// assert_eq!(&notes[0].changed_attrs[..], ["moisture_vwc".to_string()]);
/// ```
#[derive(Debug, Default)]
pub struct ContextBroker {
    entities: BTreeMap<EntityId, Arc<Entity>>,
    /// Secondary index: entity type → ids of stored entities of that type.
    entity_type_index: BTreeMap<String, BTreeSet<EntityId>>,
    subscriptions: BTreeMap<SubscriptionId, SubscriptionFilter>,
    /// Routing index: entity type → subscription ids filtering on that type
    /// (each Vec sorted ascending — ids are allocated monotonically).
    subs_by_type: BTreeMap<String, Vec<SubscriptionId>>,
    /// Subscriptions with no entity-type filter (sorted ascending).
    subs_any_type: Vec<SubscriptionId>,
    queues: BTreeMap<SubscriptionId, Vec<Notification>>,
    next_sub: u64,
    updates: u64,
    notifications: u64,
}

impl ContextBroker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        ContextBroker::default()
    }

    /// Number of stored entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Total updates processed.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Total notifications generated.
    pub fn notification_count(&self) -> u64 {
        self.notifications
    }

    /// Registers a subscription; returns its id.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriptionId {
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        // Ids grow monotonically, so pushing keeps the routing lists sorted.
        match &filter.entity_type {
            Some(t) => self.subs_by_type.entry(t.clone()).or_default().push(id),
            None => self.subs_any_type.push(id),
        }
        self.subscriptions.insert(id, filter);
        self.queues.insert(id, Vec::new());
        id
    }

    /// Cancels a subscription, discarding undelivered notifications.
    /// Returns whether the subscription existed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        let Some(filter) = self.subscriptions.remove(&id) else {
            return false;
        };
        match &filter.entity_type {
            Some(t) => {
                if let Some(bucket) = self.subs_by_type.get_mut(t) {
                    bucket.retain(|s| *s != id);
                    if bucket.is_empty() {
                        self.subs_by_type.remove(t);
                    }
                }
            }
            None => self.subs_any_type.retain(|s| *s != id),
        }
        self.queues.remove(&id);
        true
    }

    /// Upserts an entity: existing attributes are merged (NGSI update
    /// semantics), subscriptions fire on the changed attribute set.
    /// Returns the names of attributes that changed value — the same
    /// (shared) set delivered to subscribers.
    pub fn upsert(&mut self, now: SimTime, update: Entity) -> Arc<[String]> {
        self.upsert_one(now, update)
    }

    /// Upserts a batch of entities, amortizing routing-index lookups across
    /// the burst. Observationally equivalent to calling
    /// [`ContextBroker::upsert`] on each element in order; returns how many
    /// updates changed at least one attribute.
    pub fn upsert_batch(
        &mut self,
        now: SimTime,
        updates: impl IntoIterator<Item = Entity>,
    ) -> usize {
        let mut changed_updates = 0;
        for update in updates {
            if !self.upsert_one(now, update).is_empty() {
                changed_updates += 1;
            }
        }
        changed_updates
    }

    fn upsert_one(&mut self, now: SimTime, update: Entity) -> Arc<[String]> {
        self.updates += 1;
        let id = update.id().clone();
        let changed: Vec<String> = match self.entities.get(&id) {
            None => update.attributes().map(|(n, _)| n.to_owned()).collect(),
            Some(existing) => update
                .attributes()
                .filter(|(name, attr)| existing.attribute(name) != Some(*attr))
                .map(|(n, _)| n.to_owned())
                .collect(),
        };
        let snapshot: Arc<Entity> = match self.entities.get_mut(&id) {
            Some(existing) => {
                if !changed.is_empty() {
                    // Copy-on-write: clones the stored entity only if an
                    // earlier snapshot is still alive in some queue.
                    Arc::make_mut(existing).merge_from(&update);
                }
                Arc::clone(existing)
            }
            None => {
                let arc = Arc::new(update);
                self.entity_type_index
                    .entry(arc.entity_type().to_owned())
                    .or_default()
                    .insert(id.clone());
                self.entities.insert(id, Arc::clone(&arc));
                arc
            }
        };
        if changed.is_empty() {
            return Arc::from(changed);
        }
        let changed: Arc<[String]> = Arc::from(changed);

        // Route to candidate subscriptions only: the type bucket plus the
        // type-agnostic bucket, merged in ascending id order so fan-out
        // order matches the pre-index behavior (all subscriptions, id order).
        let typed: &[SubscriptionId] = self
            .subs_by_type
            .get(snapshot.entity_type())
            .map_or(&[], Vec::as_slice);
        let any: &[SubscriptionId] = &self.subs_any_type;
        let (mut i, mut j) = (0, 0);
        loop {
            let sub_id = match (typed.get(i), any.get(j)) {
                (Some(&a), Some(&b)) => {
                    if a < b {
                        i += 1;
                        a
                    } else {
                        j += 1;
                        b
                    }
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => break,
            };
            // Unsubscribe removes ids from both indexes, so an indexed sub
            // always resolves; a stale entry is simply skipped.
            let Some(filter) = self.subscriptions.get(&sub_id) else {
                continue;
            };
            if filter.matches(&snapshot, &changed) {
                self.notifications += 1;
                if let Some(queue) = self.queues.get_mut(&sub_id) {
                    queue.push(Notification {
                        subscription: sub_id,
                        entity: Arc::clone(&snapshot),
                        changed_attrs: Arc::clone(&changed),
                        at: now,
                    });
                }
            }
        }
        changed
    }

    /// Looks up an entity by id.
    pub fn entity(&self, id: &EntityId) -> Option<&Entity> {
        self.entities.get(id).map(Arc::as_ref)
    }

    /// Looks up an entity by id as a shared snapshot (cheap to clone; the
    /// broker copy-on-writes later updates, so the snapshot never changes).
    pub fn entity_snapshot(&self, id: &EntityId) -> Option<Arc<Entity>> {
        self.entities.get(id).cloned()
    }

    /// All entities of a type, in id order (served by the type index — no
    /// full-store scan).
    pub fn entities_of_type<'a>(
        &'a self,
        entity_type: &'a str,
    ) -> impl Iterator<Item = &'a Entity> + 'a {
        self.entity_type_index
            .get(entity_type)
            .into_iter()
            .flatten()
            // Removal prunes the type index, so every indexed id resolves;
            // filter_map keeps the iterator total without a panic path.
            .filter_map(|id| self.entities.get(id).map(Arc::as_ref))
    }

    /// Removes an entity; returns whether it existed.
    pub fn remove(&mut self, id: &EntityId) -> bool {
        match self.entities.remove(id) {
            Some(entity) => {
                if let Some(ids) = self.entity_type_index.get_mut(entity.entity_type()) {
                    ids.remove(id);
                    if ids.is_empty() {
                        self.entity_type_index.remove(entity.entity_type());
                    }
                }
                true
            }
            None => false,
        }
    }

    /// Takes (drains) the pending notifications of a subscription.
    /// `None` means the subscription is unknown (never registered or
    /// unsubscribed) — distinct from `Some(vec![])`, "subscribed, nothing
    /// pending".
    ///
    /// Transfers the queue's buffer to the caller; the broker reallocates
    /// on the next fan-out. Hot paths that poll repeatedly should prefer
    /// [`ContextBroker::drain_notifications_into`], which recycles both the
    /// caller's and the broker's buffers.
    pub fn take_notifications(&mut self, id: SubscriptionId) -> Option<Vec<Notification>> {
        self.queues.get_mut(&id).map(std::mem::take)
    }

    /// Drains pending notifications into `out` (appending, preserving
    /// delivery order) and returns how many were drained. Unlike
    /// [`ContextBroker::take_notifications`] this keeps the queue's
    /// allocated capacity inside the broker, so a steady
    /// upsert→drain cycle stops allocating once warm.
    ///
    /// # Errors
    /// [`UnknownSubscription`] if the id was never registered or has been
    /// unsubscribed.
    pub fn drain_notifications_into(
        &mut self,
        id: SubscriptionId,
        out: &mut Vec<Notification>,
    ) -> Result<usize, UnknownSubscription> {
        let queue = self.queues.get_mut(&id).ok_or(UnknownSubscription(id))?;
        let n = queue.len();
        out.append(queue);
        Ok(n)
    }

    /// Pending notification count for a subscription (0 if unknown).
    pub fn pending_notifications(&self, id: SubscriptionId) -> usize {
        self.queues.get(&id).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(id: &str, vwc: f64) -> Entity {
        let mut e = Entity::new(id, "SoilProbe");
        e.set("moisture_vwc", vwc);
        e
    }

    #[test]
    fn upsert_creates_then_merges() {
        let mut b = ContextBroker::new();
        let changed = b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert_eq!(&changed[..], ["moisture_vwc".to_string()]);
        assert_eq!(b.entity_count(), 1);

        // Merge adds attribute without losing the old one.
        let mut update = Entity::new("urn:p1", "SoilProbe");
        update.set("temperature_c", 19.5);
        let changed = b.upsert(SimTime::ZERO, update);
        assert_eq!(&changed[..], ["temperature_c".to_string()]);
        let e = b.entity(&"urn:p1".into()).unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.2));
        assert_eq!(e.number("temperature_c"), Some(19.5));
    }

    #[test]
    fn unchanged_value_is_not_a_change() {
        let mut b = ContextBroker::new();
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        let changed = b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert!(changed.is_empty());
        let changed = b.upsert(SimTime::ZERO, probe("urn:p1", 0.25));
        assert_eq!(&changed[..], ["moisture_vwc".to_string()]);
    }

    #[test]
    fn type_subscription_fires_selectively() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        let mut pivot = Entity::new("urn:pivot:1", "CenterPivot");
        pivot.set("angle_deg", 10.0);
        b.upsert(SimTime::ZERO, pivot);
        let notes = b.take_notifications(sub).unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].entity.id().as_str(), "urn:p1");
        // Queue drained (but still registered).
        assert_eq!(b.take_notifications(sub), Some(vec![]));
    }

    #[test]
    fn prefix_and_attr_filters() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter {
            entity_type: None,
            id_prefix: Some("urn:swamp:guaspari:".into()),
            watched_attrs: vec!["moisture_vwc".into()],
        });
        b.upsert(SimTime::ZERO, probe("urn:swamp:guaspari:p1", 0.2));
        b.upsert(SimTime::ZERO, probe("urn:swamp:matopiba:p1", 0.2));
        // Attribute not watched: no fire.
        let mut e = Entity::new("urn:swamp:guaspari:p1", "SoilProbe");
        e.set("battery_fraction", 0.8);
        b.upsert(SimTime::ZERO, e);
        let notes = b.take_notifications(sub).unwrap();
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].entity.id().as_str(), "urn:swamp:guaspari:p1");
    }

    #[test]
    fn no_notification_on_noop_update() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        b.take_notifications(sub);
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2)); // identical
        assert_eq!(b.pending_notifications(sub), 0);
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        assert!(b.unsubscribe(sub));
        assert!(!b.unsubscribe(sub), "double unsubscribe reports absence");
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        // Unknown subscription is distinguishable from an empty queue.
        assert_eq!(b.take_notifications(sub), None);
        let mut buf = Vec::new();
        assert_eq!(
            b.drain_notifications_into(sub, &mut buf),
            Err(UnknownSubscription(sub))
        );
    }

    #[test]
    fn entities_of_type_query() {
        let mut b = ContextBroker::new();
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        b.upsert(SimTime::ZERO, probe("urn:p2", 0.2));
        let mut pivot = Entity::new("urn:pivot", "CenterPivot");
        pivot.set("angle_deg", 0.0);
        b.upsert(SimTime::ZERO, pivot);
        assert_eq!(b.entities_of_type("SoilProbe").count(), 2);
        assert_eq!(b.entities_of_type("CenterPivot").count(), 1);
        assert_eq!(b.entities_of_type("Ghost").count(), 0);
        // Id order, as before the type index.
        let ids: Vec<&str> = b
            .entities_of_type("SoilProbe")
            .map(|e| e.id().as_str())
            .collect();
        assert_eq!(ids, ["urn:p1", "urn:p2"]);
    }

    #[test]
    fn remove_entity() {
        let mut b = ContextBroker::new();
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        assert!(b.remove(&"urn:p1".into()));
        assert!(!b.remove(&"urn:p1".into()));
        assert_eq!(b.entity_count(), 0);
        assert_eq!(b.entities_of_type("SoilProbe").count(), 0);
    }

    #[test]
    fn counters() {
        let mut b = ContextBroker::new();
        let _sub = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert_eq!(b.update_count(), 2);
        assert_eq!(b.notification_count(), 2);
    }

    #[test]
    fn multiple_subscribers_each_get_copy() {
        let mut b = ContextBroker::new();
        let s1 = b.subscribe(SubscriptionFilter::any());
        let s2 = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        assert_eq!(b.take_notifications(s1).unwrap().len(), 1);
        assert_eq!(b.take_notifications(s2).unwrap().len(), 1);
    }

    #[test]
    fn subscribers_share_one_snapshot_but_drain_independently() {
        let mut b = ContextBroker::new();
        let s1 = b.subscribe(SubscriptionFilter::any());
        let s2 = b.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        let s3 = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));

        // Draining s1 does not consume s2/s3's copies.
        let n1 = b.take_notifications(s1).unwrap();
        assert_eq!(n1.len(), 1);
        assert_eq!(b.pending_notifications(s2), 1);
        let n2 = b.take_notifications(s2).unwrap();
        let n3 = b.take_notifications(s3).unwrap();
        assert_eq!((n2.len(), n3.len()), (1, 1));

        // All three hold the *same* allocation — zero-copy fan-out.
        assert!(Arc::ptr_eq(&n1[0].entity, &n2[0].entity));
        assert!(Arc::ptr_eq(&n1[0].entity, &n3[0].entity));
        assert!(Arc::ptr_eq(&n1[0].changed_attrs, &n2[0].changed_attrs));
        // And the stored entity is that same snapshot (no insert-path clone).
        let stored = b.entity_snapshot(&"urn:p1".into()).unwrap();
        assert!(Arc::ptr_eq(&stored, &n1[0].entity));
    }

    #[test]
    fn snapshots_are_immutable_under_later_upserts() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        let old = b.take_notifications(sub).unwrap();
        // A later upsert copy-on-writes; the held snapshot keeps its value.
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.9));
        assert_eq!(old[0].entity.number("moisture_vwc"), Some(0.1));
        assert_eq!(
            b.entity(&"urn:p1".into()).unwrap().number("moisture_vwc"),
            Some(0.9)
        );
    }

    #[test]
    fn drain_into_appends_in_order_and_reports_count() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        let mut buf = Vec::new();
        assert_eq!(b.drain_notifications_into(sub, &mut buf), Ok(2));
        assert_eq!(b.drain_notifications_into(sub, &mut buf), Ok(0));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf[0].entity.number("moisture_vwc"), Some(0.1));
        assert_eq!(buf[1].entity.number("moisture_vwc"), Some(0.2));
        assert_eq!(b.pending_notifications(sub), 0);
    }

    #[test]
    fn upsert_batch_equivalent_to_upsert_loop() {
        let updates = || {
            vec![
                probe("urn:p1", 0.1),
                probe("urn:p2", 0.2),
                probe("urn:p1", 0.1), // no-op
                probe("urn:p1", 0.3),
                {
                    let mut e = Entity::new("urn:pivot", "CenterPivot");
                    e.set("angle_deg", 45.0);
                    e
                },
            ]
        };
        let mut looped = ContextBroker::new();
        let sub_l = looped.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        let mut batched = ContextBroker::new();
        let sub_b = batched.subscribe(SubscriptionFilter::for_type("SoilProbe"));

        let mut changed_updates = 0;
        for u in updates() {
            if !looped.upsert(SimTime::from_secs(7), u).is_empty() {
                changed_updates += 1;
            }
        }
        let batch_changed = batched.upsert_batch(SimTime::from_secs(7), updates());
        assert_eq!(batch_changed, changed_updates);
        assert_eq!(batched.entity_count(), looped.entity_count());
        assert_eq!(batched.update_count(), looped.update_count());
        assert_eq!(batched.notification_count(), looped.notification_count());

        let nl = looped.take_notifications(sub_l).unwrap();
        let nb = batched.take_notifications(sub_b).unwrap();
        assert_eq!(nl.len(), nb.len());
        for (a, b) in nl.iter().zip(&nb) {
            assert_eq!(a.entity, b.entity);
            assert_eq!(a.changed_attrs, b.changed_attrs);
            assert_eq!(a.at, b.at);
        }
        for id in ["urn:p1", "urn:p2", "urn:pivot"] {
            assert_eq!(looped.entity(&id.into()), batched.entity(&id.into()));
        }
    }

    #[test]
    fn routing_index_tracks_unsubscribe() {
        let mut b = ContextBroker::new();
        let s1 = b.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        let s2 = b.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        let s3 = b.subscribe(SubscriptionFilter::any());
        b.unsubscribe(s1);
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        assert_eq!(b.take_notifications(s1), None);
        assert_eq!(b.take_notifications(s2).unwrap().len(), 1);
        assert_eq!(b.take_notifications(s3).unwrap().len(), 1);
    }

    #[test]
    fn fanout_order_is_subscription_id_order() {
        let mut b = ContextBroker::new();
        // Interleave typed and untyped subscriptions.
        let s_any1 = b.subscribe(SubscriptionFilter::any());
        let s_typed = b.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        let s_any2 = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        for s in [s_any1, s_typed, s_any2] {
            let n = b.take_notifications(s).unwrap();
            assert_eq!(n.len(), 1);
            assert_eq!(n[0].subscription, s);
        }
        assert_eq!(b.notification_count(), 3);
    }
}
