//! The NGSI-like context broker (FIWARE Orion analogue).
//!
//! Entities are upserted (attribute-merge semantics); subscriptions match
//! on entity type and/or id prefix and optionally a watched attribute set,
//! and produce queued [`Notification`]s that consumers poll — deterministic
//! and free of callback re-entrancy.

use std::collections::BTreeMap;

use swamp_codec::ngsi::{Entity, EntityId};
use swamp_sim::SimTime;

/// Identifier of a subscription.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubscriptionId(u64);

/// What a subscription watches.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SubscriptionFilter {
    /// Match entities of this type (None = any).
    pub entity_type: Option<String>,
    /// Match entity ids with this prefix (None = any).
    pub id_prefix: Option<String>,
    /// Only fire when one of these attributes changed (empty = any change).
    pub watched_attrs: Vec<String>,
}

impl SubscriptionFilter {
    /// Matches every update.
    pub fn any() -> Self {
        SubscriptionFilter::default()
    }

    /// Matches a specific entity type.
    pub fn for_type(entity_type: impl Into<String>) -> Self {
        SubscriptionFilter {
            entity_type: Some(entity_type.into()),
            ..SubscriptionFilter::default()
        }
    }

    fn matches(&self, entity: &Entity, changed: &[String]) -> bool {
        if let Some(t) = &self.entity_type {
            if entity.entity_type() != t {
                return false;
            }
        }
        if let Some(p) = &self.id_prefix {
            if !entity.id().as_str().starts_with(p.as_str()) {
                return false;
            }
        }
        if !self.watched_attrs.is_empty()
            && !changed.iter().any(|c| self.watched_attrs.contains(c))
        {
            return false;
        }
        true
    }
}

/// A queued change notification.
#[derive(Clone, Debug, PartialEq)]
pub struct Notification {
    /// The subscription that fired.
    pub subscription: SubscriptionId,
    /// Snapshot of the entity after the update.
    pub entity: Entity,
    /// Attribute names that changed in the triggering update.
    pub changed_attrs: Vec<String>,
    /// When the update happened.
    pub at: SimTime,
}

/// The context broker.
///
/// # Example
/// ```
/// use swamp_core::broker::{ContextBroker, SubscriptionFilter};
/// use swamp_codec::ngsi::Entity;
/// use swamp_sim::SimTime;
///
/// let mut broker = ContextBroker::new();
/// let sub = broker.subscribe(SubscriptionFilter::for_type("SoilProbe"));
///
/// let mut probe = Entity::new("urn:swamp:probe:1", "SoilProbe");
/// probe.set("moisture_vwc", 0.24);
/// broker.upsert(SimTime::ZERO, probe);
///
/// let notes = broker.take_notifications(sub);
/// assert_eq!(notes.len(), 1);
/// assert_eq!(notes[0].changed_attrs, vec!["moisture_vwc".to_string()]);
/// ```
#[derive(Debug, Default)]
pub struct ContextBroker {
    entities: BTreeMap<EntityId, Entity>,
    subscriptions: BTreeMap<SubscriptionId, SubscriptionFilter>,
    queues: BTreeMap<SubscriptionId, Vec<Notification>>,
    next_sub: u64,
    updates: u64,
    notifications: u64,
}

impl ContextBroker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        ContextBroker::default()
    }

    /// Number of stored entities.
    pub fn entity_count(&self) -> usize {
        self.entities.len()
    }

    /// Total updates processed.
    pub fn update_count(&self) -> u64 {
        self.updates
    }

    /// Total notifications generated.
    pub fn notification_count(&self) -> u64 {
        self.notifications
    }

    /// Registers a subscription; returns its id.
    pub fn subscribe(&mut self, filter: SubscriptionFilter) -> SubscriptionId {
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        self.subscriptions.insert(id, filter);
        self.queues.insert(id, Vec::new());
        id
    }

    /// Cancels a subscription, discarding undelivered notifications.
    pub fn unsubscribe(&mut self, id: SubscriptionId) {
        self.subscriptions.remove(&id);
        self.queues.remove(&id);
    }

    /// Upserts an entity: existing attributes are merged (NGSI update
    /// semantics), subscriptions fire on the changed attribute set.
    /// Returns the names of attributes that changed value.
    pub fn upsert(&mut self, now: SimTime, update: Entity) -> Vec<String> {
        self.updates += 1;
        let id = update.id().clone();
        let changed: Vec<String> = match self.entities.get(&id) {
            None => update.attributes().map(|(n, _)| n.to_owned()).collect(),
            Some(existing) => update
                .attributes()
                .filter(|(name, attr)| existing.attribute(name) != Some(*attr))
                .map(|(n, _)| n.to_owned())
                .collect(),
        };
        let merged = match self.entities.get_mut(&id) {
            Some(existing) => {
                existing.merge_from(&update);
                existing.clone()
            }
            None => {
                self.entities.insert(id.clone(), update.clone());
                update
            }
        };
        if !changed.is_empty() {
            for (&sub_id, filter) in &self.subscriptions {
                if filter.matches(&merged, &changed) {
                    self.notifications += 1;
                    self.queues.get_mut(&sub_id).expect("queue exists").push(
                        Notification {
                            subscription: sub_id,
                            entity: merged.clone(),
                            changed_attrs: changed.clone(),
                            at: now,
                        },
                    );
                }
            }
        }
        changed
    }

    /// Looks up an entity by id.
    pub fn entity(&self, id: &EntityId) -> Option<&Entity> {
        self.entities.get(id)
    }

    /// All entities of a type.
    pub fn entities_of_type<'a>(
        &'a self,
        entity_type: &'a str,
    ) -> impl Iterator<Item = &'a Entity> + 'a {
        self.entities
            .values()
            .filter(move |e| e.entity_type() == entity_type)
    }

    /// Removes an entity; returns whether it existed.
    pub fn remove(&mut self, id: &EntityId) -> bool {
        self.entities.remove(id).is_some()
    }

    /// Takes (drains) the pending notifications of a subscription.
    pub fn take_notifications(&mut self, id: SubscriptionId) -> Vec<Notification> {
        self.queues.get_mut(&id).map(std::mem::take).unwrap_or_default()
    }

    /// Pending notification count for a subscription.
    pub fn pending_notifications(&self, id: SubscriptionId) -> usize {
        self.queues.get(&id).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(id: &str, vwc: f64) -> Entity {
        let mut e = Entity::new(id, "SoilProbe");
        e.set("moisture_vwc", vwc);
        e
    }

    #[test]
    fn upsert_creates_then_merges() {
        let mut b = ContextBroker::new();
        let changed = b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert_eq!(changed, vec!["moisture_vwc"]);
        assert_eq!(b.entity_count(), 1);

        // Merge adds attribute without losing the old one.
        let mut update = Entity::new("urn:p1", "SoilProbe");
        update.set("temperature_c", 19.5);
        let changed = b.upsert(SimTime::ZERO, update);
        assert_eq!(changed, vec!["temperature_c"]);
        let e = b.entity(&"urn:p1".into()).unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.2));
        assert_eq!(e.number("temperature_c"), Some(19.5));
    }

    #[test]
    fn unchanged_value_is_not_a_change() {
        let mut b = ContextBroker::new();
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        let changed = b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert!(changed.is_empty());
        let changed = b.upsert(SimTime::ZERO, probe("urn:p1", 0.25));
        assert_eq!(changed, vec!["moisture_vwc"]);
    }

    #[test]
    fn type_subscription_fires_selectively() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::for_type("SoilProbe"));
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        let mut pivot = Entity::new("urn:pivot:1", "CenterPivot");
        pivot.set("angle_deg", 10.0);
        b.upsert(SimTime::ZERO, pivot);
        let notes = b.take_notifications(sub);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].entity.id().as_str(), "urn:p1");
        // Queue drained.
        assert!(b.take_notifications(sub).is_empty());
    }

    #[test]
    fn prefix_and_attr_filters() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter {
            entity_type: None,
            id_prefix: Some("urn:swamp:guaspari:".into()),
            watched_attrs: vec!["moisture_vwc".into()],
        });
        b.upsert(SimTime::ZERO, probe("urn:swamp:guaspari:p1", 0.2));
        b.upsert(SimTime::ZERO, probe("urn:swamp:matopiba:p1", 0.2));
        // Attribute not watched: no fire.
        let mut e = Entity::new("urn:swamp:guaspari:p1", "SoilProbe");
        e.set("battery_fraction", 0.8);
        b.upsert(SimTime::ZERO, e);
        let notes = b.take_notifications(sub);
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].entity.id().as_str(), "urn:swamp:guaspari:p1");
    }

    #[test]
    fn no_notification_on_noop_update() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        b.take_notifications(sub);
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2)); // identical
        assert_eq!(b.pending_notifications(sub), 0);
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let mut b = ContextBroker::new();
        let sub = b.subscribe(SubscriptionFilter::any());
        b.unsubscribe(sub);
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert!(b.take_notifications(sub).is_empty());
    }

    #[test]
    fn entities_of_type_query() {
        let mut b = ContextBroker::new();
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        b.upsert(SimTime::ZERO, probe("urn:p2", 0.2));
        let mut pivot = Entity::new("urn:pivot", "CenterPivot");
        pivot.set("angle_deg", 0.0);
        b.upsert(SimTime::ZERO, pivot);
        assert_eq!(b.entities_of_type("SoilProbe").count(), 2);
        assert_eq!(b.entities_of_type("CenterPivot").count(), 1);
        assert_eq!(b.entities_of_type("Ghost").count(), 0);
    }

    #[test]
    fn remove_entity() {
        let mut b = ContextBroker::new();
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        assert!(b.remove(&"urn:p1".into()));
        assert!(!b.remove(&"urn:p1".into()));
        assert_eq!(b.entity_count(), 0);
    }

    #[test]
    fn counters() {
        let mut b = ContextBroker::new();
        let _sub = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.2));
        assert_eq!(b.update_count(), 2);
        assert_eq!(b.notification_count(), 2);
    }

    #[test]
    fn multiple_subscribers_each_get_copy() {
        let mut b = ContextBroker::new();
        let s1 = b.subscribe(SubscriptionFilter::any());
        let s2 = b.subscribe(SubscriptionFilter::any());
        b.upsert(SimTime::ZERO, probe("urn:p1", 0.1));
        assert_eq!(b.take_notifications(s1).len(), 1);
        assert_eq!(b.take_notifications(s2).len(), 1);
    }
}
