//! # swamp-core — the SWAMP platform core
//!
//! The FIWARE-analogue heart of the system (Kamienski et al., DSN-W 2018):
//!
//! - [`broker`] — NGSI-like context broker with subscriptions (Orion
//!   analogue).
//! - [`drive`] — the [`Drive`] trait: the one object-safe surface through
//!   which harnesses advance and observe a deployment, implemented by
//!   [`Platform`] and by `swamp_shard::ShardedPlatform`.
//! - [`error`] — the unified, non-panicking [`Error`] type wrapping
//!   ingest/network/sync/registry failures.
//! - [`history`] — per-attribute time-series store (STH-Comet analogue).
//! - [`registry`] — device registry consulted by secure ingestion.
//! - [`platform`] — the assembled platform: simulated network + sealed
//!   telemetry ingestion (authentication, replay protection, anomaly
//!   screening with optional auto-quarantine) + context + history + fog
//!   replication, in the cloud-only and farm-fog deployment configurations
//!   the paper describes.
//! - [`service`] — the irrigation decision service: broker subscriptions →
//!   per-zone policy decisions, holding zones whose probes are
//!   quarantined.
//! - [`shard`] — the stable `device_id → shard` routing function used by
//!   the scale-out tier (`swamp-shard`).
//!
//! ## Example: a tiny deployment
//!
//! ```
//! use swamp_core::platform::{DeploymentConfig, Platform};
//! use swamp_codec::ngsi::Entity;
//! use swamp_sensors::device::DeviceKind;
//! use swamp_sim::SimTime;
//!
//! let mut p = Platform::builder(DeploymentConfig::FarmFog).seed(7).build();
//! p.register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:demo")
//!     .unwrap();
//!
//! let mut update = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
//! update.set("moisture_vwc", 0.24);
//! update.set("seq", 0.0);
//! p.device_publish(SimTime::ZERO, "probe-1", &update).unwrap();
//! p.pump(SimTime::from_secs(60));
//! ```

// The platform path must not panic on reachable errors (fallible APIs
// return `swamp_core::Error`); remaining `expect`s document invariants.
// Scoped to the library build so tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod broker;
pub mod drive;
pub mod error;
pub mod history;
pub mod platform;
pub mod query;
pub mod registry;
pub mod service;
pub mod shard;

pub use broker::{ContextBroker, Notification, SubscriptionFilter, SubscriptionId};
pub use drive::Drive;
pub use error::Error;
pub use history::{HistoryStore, Sample, WindowAggregate};
pub use platform::{DeploymentConfig, Fallback, IngestError, Platform, PlatformBuilder};
pub use query::{QueryRequest, QueryResponse, SeriesEntry};
pub use registry::{DeviceRecord, DeviceRegistry};
pub use service::{IrrigationService, ManagedZone, ZoneDecision};
pub use shard::{route_device, route_entity, routing_key, shard_seed, ShardIndex};
