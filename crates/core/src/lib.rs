//! # swamp-core — the SWAMP platform core
//!
//! The FIWARE-analogue heart of the system (Kamienski et al., DSN-W 2018):
//!
//! - [`broker`] — NGSI-like context broker with subscriptions (Orion
//!   analogue).
//! - [`history`] — per-attribute time-series store (STH-Comet analogue).
//! - [`registry`] — device registry consulted by secure ingestion.
//! - [`platform`] — the assembled platform: simulated network + sealed
//!   telemetry ingestion (authentication, replay protection, anomaly
//!   screening with optional auto-quarantine) + context + history + fog
//!   replication, in the cloud-only and farm-fog deployment configurations
//!   the paper describes.
//! - [`service`] — the irrigation decision service: broker subscriptions →
//!   per-zone policy decisions, holding zones whose probes are
//!   quarantined.
//!
//! ## Example: a tiny deployment
//!
//! ```
//! use swamp_core::platform::{DeploymentConfig, Platform};
//! use swamp_codec::ngsi::Entity;
//! use swamp_sensors::device::DeviceKind;
//! use swamp_sim::SimTime;
//!
//! let mut p = Platform::new(7, DeploymentConfig::FarmFog);
//! p.register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:demo");
//!
//! let mut update = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
//! update.set("moisture_vwc", 0.24);
//! update.set("seq", 0.0);
//! p.device_publish(SimTime::ZERO, "probe-1", &update).unwrap();
//! p.pump(SimTime::from_secs(60));
//! ```

pub mod broker;
pub mod history;
pub mod platform;
pub mod registry;
pub mod service;

pub use broker::{ContextBroker, Notification, SubscriptionFilter, SubscriptionId};
pub use history::{HistoryStore, Sample, WindowAggregate};
pub use platform::{DeploymentConfig, IngestError, Platform};
pub use registry::{DeviceRecord, DeviceRegistry};
pub use service::{IrrigationService, ManagedZone, ZoneDecision};
