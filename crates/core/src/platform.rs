//! The assembled SWAMP platform: network + secure ingestion + context
//! broker + history + fog tier, in the deployment configurations the paper
//! describes ("smart algorithms and analytics in the cloud, fog-based smart
//! decisions located on the farm premises").
//!
//! One [`Platform`] instance is one pilot deployment. Devices are
//! registered (keystore provisioning + registry), publish sealed NGSI
//! entity updates over the simulated network, and the ingestion pipeline
//! authenticates, replay-checks and stores them. In the
//! [`DeploymentConfig::FarmFog`] configuration the context lives on the
//! farm fog node and is replicated to the cloud via store-and-forward, so
//! the platform keeps serving during Internet outages.

use swamp_codec::json::Json;
use swamp_codec::ngsi::Entity;
use swamp_crypto::aead::NonceSequence;
use swamp_crypto::keystore::Keystore;
use swamp_fog::availability::ServedBy;
use swamp_fog::sync::{CloudStore, DropPolicy, FogSync};
use swamp_net::link::LinkSpec;
use swamp_net::message::{Message, NodeId};
use swamp_net::network::{Network, SendError};
use swamp_security::access::{Action, Decision, Pdp, Resource};
use swamp_security::detect::{RangeValidator, SeqEvent, SeqMonitor};
use swamp_security::identity::{AuthError, IdentityProvider, Token};
use swamp_security::pipeline::{DetectorBank, Recommendation};
use swamp_sensors::device::DeviceKind;
use swamp_sim::metrics::Metrics;
use swamp_sim::{SimDuration, SimTime};

use crate::broker::ContextBroker;
use crate::history::HistoryStore;
use crate::registry::DeviceRegistry;

/// Where the platform's decision logic runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeploymentConfig {
    /// Everything in the cloud; the farm is a dumb relay. Vulnerable to
    /// Internet outages.
    CloudOnly,
    /// A farm-premises fog node hosts the context broker and decisions;
    /// the cloud receives replicated state asynchronously.
    FarmFog,
}

/// Why a telemetry frame was rejected by ingestion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Device not in the registry (rogue node) or quarantined.
    UnregisteredDevice(String),
    /// Authenticated decryption failed (wrong key, tampered frame).
    AuthenticationFailed(String),
    /// Payload did not parse as an entity.
    MalformedPayload(String),
    /// Sequence number replayed or duplicated.
    Replay(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnregisteredDevice(d) => write!(f, "unregistered device {d:?}"),
            IngestError::AuthenticationFailed(d) => {
                write!(f, "authentication failed for {d:?}")
            }
            IngestError::MalformedPayload(d) => write!(f, "malformed payload from {d:?}"),
            IngestError::Replay(d) => write!(f, "replayed frame from {d:?}"),
        }
    }
}
impl std::error::Error for IngestError {}

/// The assembled platform.
pub struct Platform {
    config: DeploymentConfig,
    /// The simulated network fabric (public for attack/SDN experiments).
    pub net: Network,
    /// The context broker (public: the platform API surface).
    pub context: ContextBroker,
    /// Historical time-series store.
    pub history: HistoryStore,
    /// Device registry.
    pub registry: DeviceRegistry,
    /// Key management.
    pub keystore: Keystore,
    /// Identity provider (OAuth2-style).
    pub idm: IdentityProvider,
    /// Policy decision point.
    pub pdp: Pdp,
    /// Anomaly-detection pipeline fed by ingestion ("avoid fake data").
    pub detectors: DetectorBank,
    auto_quarantine: bool,
    seq: SeqMonitor,
    device_nonces: std::collections::BTreeMap<String, NonceSequence>,
    fog_sync: Option<FogSync>,
    cloud_store: Option<CloudStore>,
    /// Cloud-side context mirror (FarmFog): replicated records drained from
    /// the [`CloudStore`] are batch-upserted here, so cloud dashboards can
    /// query broker state even though decisions run at the fog.
    cloud_context: Option<ContextBroker>,
    metrics: Metrics,
}

/// Node names used by the platform topology.
pub mod nodes {
    /// The cloud datacenter node.
    pub const CLOUD: &str = "cloud";
    /// The farm fog node (FarmFog config).
    pub const FOG: &str = "farm-fog";
    /// The farm gateway/relay node (CloudOnly config).
    pub const GATEWAY: &str = "farm-gw";
}

impl Platform {
    /// Builds a platform in the given deployment configuration.
    pub fn new(seed: u64, config: DeploymentConfig) -> Self {
        let mut net = Network::new(seed);
        net.add_node(nodes::CLOUD);
        match config {
            DeploymentConfig::CloudOnly => {
                net.add_node(nodes::GATEWAY);
                net.connect(nodes::GATEWAY, nodes::CLOUD, LinkSpec::rural_internet());
            }
            DeploymentConfig::FarmFog => {
                net.add_node(nodes::FOG);
                net.connect(nodes::FOG, nodes::CLOUD, LinkSpec::rural_internet());
            }
        }
        let (fog_sync, cloud_store) = match config {
            DeploymentConfig::FarmFog => (
                Some(FogSync::new(
                    nodes::FOG,
                    nodes::CLOUD,
                    100_000,
                    DropPolicy::Oldest,
                    SimDuration::from_secs(60),
                )),
                Some(CloudStore::new(nodes::CLOUD)),
            ),
            DeploymentConfig::CloudOnly => (None, None),
        };
        let mut detectors = DetectorBank::new();
        detectors.configure_quantity("moisture_vwc", RangeValidator::soil_moisture());
        detectors.configure_quantity("battery_fraction", RangeValidator::new(0.0, 1.0));
        detectors.configure_quantity("rh_mean_pct", RangeValidator::new(0.0, 100.0));
        Platform {
            config,
            net,
            context: ContextBroker::new(),
            history: HistoryStore::new(),
            registry: DeviceRegistry::new(),
            keystore: Keystore::new(&seed.to_be_bytes()),
            idm: IdentityProvider::new(b"swamp-idm-signing", SimDuration::from_hours(8)),
            pdp: Pdp::new(),
            detectors,
            auto_quarantine: false,
            seq: SeqMonitor::new(),
            device_nonces: std::collections::BTreeMap::new(),
            cloud_context: fog_sync.as_ref().map(|_| ContextBroker::new()),
            fog_sync,
            cloud_store,
            metrics: Metrics::new(),
        }
    }

    /// The deployment configuration.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// Enables automatic quarantine: when the detection pipeline recommends
    /// it, the device is disabled in the registry and further frames are
    /// rejected until an operator re-enables it.
    pub fn set_auto_quarantine(&mut self, on: bool) {
        self.auto_quarantine = on;
    }

    /// The node where ingestion and decisions run.
    pub fn platform_node(&self) -> NodeId {
        match self.config {
            DeploymentConfig::CloudOnly => nodes::CLOUD.into(),
            DeploymentConfig::FarmFog => nodes::FOG.into(),
        }
    }

    /// The farm-side node devices connect to.
    pub fn farm_node(&self) -> NodeId {
        match self.config {
            DeploymentConfig::CloudOnly => nodes::GATEWAY.into(),
            DeploymentConfig::FarmFog => nodes::FOG.into(),
        }
    }

    /// Ingest/platform metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The cloud replica store, if this is a fog deployment.
    pub fn cloud_replica(&self) -> Option<&CloudStore> {
        self.cloud_store.as_ref()
    }

    /// The cloud-side context mirror, if this is a fog deployment: broker
    /// state rebuilt from replicated records, queryable like the fog's own
    /// [`ContextBroker`] (and independently subscribable).
    pub fn cloud_context(&self) -> Option<&ContextBroker> {
        self.cloud_context.as_ref()
    }

    /// Registers a field device: network node + link, key provisioning and
    /// registry entry.
    ///
    /// # Panics
    /// Panics if the device id collides with an existing node.
    pub fn register_device(
        &mut self,
        now: SimTime,
        device_id: &str,
        kind: DeviceKind,
        owner: &str,
    ) {
        self.net.add_node(device_id);
        let farm = self.farm_node();
        self.net.connect(device_id, farm, LinkSpec::lpwan_field());
        self.keystore.provision(device_id);
        self.registry
            .register(device_id, kind, owner, now)
            .expect("device id collision");
        self.device_nonces.insert(
            device_id.to_owned(),
            NonceSequence::new(self.device_nonces.len() as u32 + 1),
        );
    }

    /// Device-side publish: seals the entity with the device's provisioned
    /// key and offers it to the network toward the farm node.
    ///
    /// # Errors
    /// Returns the network error if the send is refused synchronously.
    pub fn device_publish(
        &mut self,
        now: SimTime,
        device_id: &str,
        entity: &Entity,
    ) -> Result<(), SendError> {
        let key = self
            .keystore
            .device_key(device_id)
            .map(|dk| dk.key)
            .unwrap_or_else(|_| {
                // Unprovisioned device: derive a garbage key — its frames
                // will fail authentication at ingest (rogue-node path).
                self.keystore
                    .derive("rogue", swamp_crypto::keystore::KeyEpoch(0))
            });
        let nonces = self
            .device_nonces
            .entry(device_id.to_owned())
            .or_insert_with(|| NonceSequence::new(9999));
        let plaintext = entity.to_json().to_compact_string();
        let sealed = key.seal(
            &nonces.next_nonce(),
            device_id.as_bytes(),
            plaintext.as_bytes(),
        );
        let farm = self.farm_node();
        self.net
            .send(
                now,
                device_id,
                farm,
                Message::new(format!("telemetry/{device_id}"), sealed),
            )
            .map(|_| ())
    }

    /// Advances the network and processes everything that arrived: relays
    /// (CloudOnly), secure ingestion, fog→cloud replication. Returns the
    /// number of entity updates ingested this round.
    pub fn pump(&mut self, now: SimTime) -> usize {
        self.net.advance_to(now);

        // CloudOnly: the gateway relays farm traffic to the cloud.
        if self.config == DeploymentConfig::CloudOnly {
            let gw: NodeId = nodes::GATEWAY.into();
            let deliveries = self.net.drain(&gw);
            for d in deliveries {
                let _ = self
                    .net
                    .send(d.delivered_at.max(now), gw.clone(), nodes::CLOUD, d.message);
            }
            self.net.advance_to(now);
        }

        // Ingest at the platform node: authenticate/validate every arrived
        // frame, then apply the surviving updates as one batch (amortized
        // broker routing and fog enqueueing).
        let node = self.platform_node();
        let deliveries = self.net.drain(&node);
        let mut batch: Vec<Entity> = Vec::new();
        for d in deliveries {
            if let Some(device_id) = d.message.topic.strip_prefix("telemetry/") {
                let device_id = device_id.to_owned();
                match self.validate_frame(now, &device_id, &d.message.payload) {
                    Ok(entity) => batch.push(entity),
                    Err(e) => self.count_rejection(&e),
                }
            }
        }
        let ingested = self.ingest_entities(now, batch);

        // Fog→cloud replication; newly accepted records are batch-applied
        // to the cloud-side context mirror.
        if let (Some(sync), Some(store)) = (&mut self.fog_sync, &mut self.cloud_store) {
            sync.sync_round(&mut self.net, now, 256);
            self.net.advance_to(now);
            store.process(&mut self.net, now);
            self.net.advance_to(now);
            sync.poll_acks(&mut self.net);
            if let Some(cloud_ctx) = &mut self.cloud_context {
                let replicated = store.drain_new().iter().filter_map(|r| {
                    let text = std::str::from_utf8(&r.payload).ok()?;
                    let json = Json::parse(text).ok()?;
                    Entity::from_json(&json).ok()
                });
                cloud_ctx.upsert_batch(now, replicated);
            }
        }
        ingested
    }

    fn count_rejection(&mut self, e: &IngestError) {
        let key = match e {
            IngestError::UnregisteredDevice(_) => "ingest.rejected_unregistered",
            IngestError::AuthenticationFailed(_) => "ingest.rejected_auth",
            IngestError::MalformedPayload(_) => "ingest.rejected_malformed",
            IngestError::Replay(_) => "ingest.rejected_replay",
        };
        self.metrics.incr(key);
    }

    /// The secure ingestion path for one sealed frame: validation followed
    /// by a single-update apply. Bursts should go through
    /// [`Platform::validate_frame`] + [`Platform::ingest_entities`], which
    /// is what [`Platform::pump`] does.
    ///
    /// # Errors
    /// [`IngestError`] describing which defense rejected the frame.
    pub fn ingest_frame(
        &mut self,
        now: SimTime,
        device_id: &str,
        sealed: &[u8],
    ) -> Result<(), IngestError> {
        let entity = self.validate_frame(now, device_id, sealed)?;
        self.ingest_entities(now, std::iter::once(entity));
        Ok(())
    }

    /// Runs the defensive half of ingestion for one sealed frame — registry
    /// check, authenticated decryption, payload decode, replay detection
    /// and the anomaly pipeline — returning the validated entity update
    /// without applying it.
    ///
    /// # Errors
    /// [`IngestError`] describing which defense rejected the frame.
    pub fn validate_frame(
        &mut self,
        now: SimTime,
        device_id: &str,
        sealed: &[u8],
    ) -> Result<Entity, IngestError> {
        if !self.registry.is_active(device_id) {
            return Err(IngestError::UnregisteredDevice(device_id.to_owned()));
        }
        let key = self
            .keystore
            .device_key(device_id)
            .map_err(|_| IngestError::AuthenticationFailed(device_id.to_owned()))?;
        let plaintext = key
            .key
            .open(device_id.as_bytes(), sealed)
            .map_err(|_| IngestError::AuthenticationFailed(device_id.to_owned()))?;
        let text = std::str::from_utf8(&plaintext)
            .map_err(|_| IngestError::MalformedPayload(device_id.to_owned()))?;
        let json =
            Json::parse(text).map_err(|_| IngestError::MalformedPayload(device_id.to_owned()))?;
        let entity = Entity::from_json(&json)
            .map_err(|_| IngestError::MalformedPayload(device_id.to_owned()))?;

        // Replay detection on the firmware sequence number.
        if let Some(seq) = entity.number("seq") {
            if let SeqEvent::ReplayOrDuplicate = self.seq.observe(device_id, seq as u64) {
                return Err(IngestError::Replay(device_id.to_owned()));
            }
        }

        // Detection pipeline: every numeric attribute is screened before it
        // can influence decisions ("mechanisms to avoid fake data").
        for (name, attr) in entity.attributes() {
            if name == "seq" {
                continue;
            }
            if let Some(v) = attr.value.as_number() {
                self.detectors.observe_value(now, device_id, name, v);
            }
        }
        if self.auto_quarantine
            && self.detectors.recommendation(device_id) == Recommendation::Quarantine
        {
            let _ = self.registry.set_enabled(device_id, false);
            self.metrics.incr("ingest.quarantined");
        }
        Ok(entity)
    }

    /// Applies a batch of *already validated* entity updates: history
    /// samples for numeric attributes, one batched context-broker upsert
    /// (zero-copy fan-out to subscribers), and fog→cloud replication
    /// enqueueing. This is the storage half of the ingestion hot path;
    /// callers are responsible for authentication — frames from the network
    /// must come through [`Platform::validate_frame`] first.
    ///
    /// Returns the number of updates applied.
    pub fn ingest_entities(
        &mut self,
        now: SimTime,
        entities: impl IntoIterator<Item = Entity>,
    ) -> usize {
        let mut applied = 0;
        let mut batch: Vec<Entity> = Vec::new();
        for entity in entities {
            for (name, attr) in entity.attributes() {
                if let Some(v) = attr.value.as_number() {
                    let at = attr.observed_at_ms.map(SimTime::from_millis).unwrap_or(now);
                    self.history.append(entity.id().as_str(), name, at, v);
                }
            }
            self.metrics.incr("ingest.accepted");
            applied += 1;
            batch.push(entity);
        }
        // Fog deployments replicate the accepted updates to the cloud.
        if let Some(sync) = &mut self.fog_sync {
            sync.enqueue_batch(
                now,
                batch.iter().map(|e| {
                    (
                        e.id().as_str(),
                        e.to_json().to_compact_string().into_bytes(),
                    )
                }),
            );
        }
        self.context.upsert_batch(now, batch);
        applied
    }

    /// Whether the farm↔cloud uplink is currently up.
    pub fn internet_up(&self) -> bool {
        self.net.link_up(&self.farm_node(), &nodes::CLOUD.into())
    }

    /// Brings the farm↔cloud uplink up or down (outage scenarios).
    pub fn set_internet(&mut self, up: bool) {
        let farm = self.farm_node();
        self.net.set_link_up(&farm, &nodes::CLOUD.into(), up);
    }

    /// Whether the platform can serve its function right now, and where.
    ///
    /// CloudOnly requires the uplink; FarmFog decides locally regardless,
    /// reporting `Cloud` only when it could also reach the cloud.
    pub fn service_point(&self) -> Option<ServedBy> {
        match self.config {
            DeploymentConfig::CloudOnly => {
                if self.internet_up() {
                    Some(ServedBy::Cloud)
                } else {
                    None
                }
            }
            DeploymentConfig::FarmFog => Some(ServedBy::Fog),
        }
    }

    /// Reads an entity on behalf of a token holder, enforcing ownership
    /// policies (the paper's "each owner controls their data").
    ///
    /// # Errors
    /// `Err(Some(AuthError))` for token problems, `Err(None)` for a policy
    /// denial or a missing entity.
    pub fn authorized_read(
        &mut self,
        now: SimTime,
        token: &Token,
        entity_id: &str,
    ) -> Result<Entity, Option<AuthError>> {
        let info = self.idm.validate(now, token).map_err(Some)?;
        let owner = entity_id
            .strip_prefix("urn:swamp:device:")
            .and_then(|d| self.registry.get(d))
            .map(|r| r.owner.clone())
            .unwrap_or_else(|| "owner:platform".to_owned());
        let resource = Resource::new(entity_id, owner);
        let decision = self.pdp.decide(&info, &resource, Action::Read);
        if !decision.is_permit() {
            return Err(None);
        }
        self.context.entity(&entity_id.into()).cloned().ok_or(None)
    }

    /// Authorizes a command against a device on behalf of a token holder.
    pub fn authorize_command(
        &mut self,
        now: SimTime,
        token: &Token,
        device_id: &str,
    ) -> Result<Decision, AuthError> {
        let info = self.idm.validate(now, token)?;
        let owner = self
            .registry
            .get(device_id)
            .map(|r| r.owner.clone())
            .unwrap_or_else(|| "owner:platform".to_owned());
        let resource = Resource::new(format!("urn:swamp:device:{device_id}"), owner);
        Ok(self.pdp.decide(&info, &resource, Action::Command))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_codec::ngsi::Entity;

    fn telemetry(device: &str, seq: f64, vwc: f64) -> Entity {
        let mut e = Entity::new(format!("urn:swamp:device:{device}"), "SoilProbe");
        e.set("moisture_vwc", vwc);
        e.set("seq", seq);
        e
    }

    fn fog_platform() -> Platform {
        let mut p = Platform::new(42, DeploymentConfig::FarmFog);
        p.register_device(
            SimTime::ZERO,
            "probe-1",
            DeviceKind::SoilProbe,
            "owner:test",
        );
        p
    }

    #[test]
    fn end_to_end_publish_ingest() {
        let mut p = fog_platform();
        p.device_publish(SimTime::ZERO, "probe-1", &telemetry("probe-1", 0.0, 0.27))
            .unwrap();
        // LPWAN link has loss; retry a few times at increasing times.
        let mut ingested = 0;
        for i in 1..10 {
            ingested += p.pump(SimTime::from_secs(i * 10));
            if ingested > 0 {
                break;
            }
            p.device_publish(
                SimTime::from_secs(i * 10),
                "probe-1",
                &telemetry("probe-1", i as f64, 0.27),
            )
            .unwrap();
        }
        assert!(ingested > 0, "telemetry must eventually ingest");
        let e = p
            .context
            .entity(&"urn:swamp:device:probe-1".into())
            .unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.27));
        assert!(p
            .history
            .last("urn:swamp:device:probe-1", "moisture_vwc")
            .is_some());
        assert!(p.metrics().counter("ingest.accepted") >= 1);
    }

    #[test]
    fn rogue_device_rejected() {
        let mut p = fog_platform();
        // "rogue-9" has a network node but is never registered/provisioned.
        p.net.add_node("rogue-9");
        let farm = p.farm_node();
        p.net
            .connect("rogue-9", farm, swamp_net::link::LinkSpec::farm_lan());
        let fake = telemetry("rogue-9", 0.0, 0.99);
        p.device_publish(SimTime::ZERO, "rogue-9", &fake).unwrap();
        let ingested = p.pump(SimTime::from_secs(5));
        assert_eq!(ingested, 0);
        assert_eq!(p.metrics().counter("ingest.rejected_unregistered"), 1);
        assert!(p
            .context
            .entity(&"urn:swamp:device:rogue-9".into())
            .is_none());
    }

    #[test]
    fn tampered_frame_rejected() {
        let mut p = fog_platform();
        // Build a valid sealed frame, then flip a ciphertext bit.
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let entity = telemetry("probe-1", 0.0, 0.2);
        let mut sealed = key.seal(
            &[7u8; 12],
            b"probe-1",
            entity.to_json().to_compact_string().as_bytes(),
        );
        sealed[14] ^= 0x40;
        let err = p
            .ingest_frame(SimTime::ZERO, "probe-1", &sealed)
            .unwrap_err();
        assert!(matches!(err, IngestError::AuthenticationFailed(_)));
    }

    #[test]
    fn replayed_frame_rejected() {
        let mut p = fog_platform();
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let entity = telemetry("probe-1", 5.0, 0.2);
        let sealed = key.seal(
            &[1u8; 12],
            b"probe-1",
            entity.to_json().to_compact_string().as_bytes(),
        );
        p.ingest_frame(SimTime::ZERO, "probe-1", &sealed).unwrap();
        let err = p
            .ingest_frame(SimTime::from_secs(10), "probe-1", &sealed)
            .unwrap_err();
        assert!(matches!(err, IngestError::Replay(_)));
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut p = fog_platform();
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let sealed = key.seal(&[2u8; 12], b"probe-1", b"not json at all");
        let err = p
            .ingest_frame(SimTime::ZERO, "probe-1", &sealed)
            .unwrap_err();
        assert!(matches!(err, IngestError::MalformedPayload(_)));
    }

    #[test]
    fn fog_keeps_serving_during_outage_cloud_only_does_not() {
        let mut fog = Platform::new(1, DeploymentConfig::FarmFog);
        let mut cloud = Platform::new(1, DeploymentConfig::CloudOnly);
        assert_eq!(fog.service_point(), Some(ServedBy::Fog));
        assert_eq!(cloud.service_point(), Some(ServedBy::Cloud));
        fog.set_internet(false);
        cloud.set_internet(false);
        assert_eq!(fog.service_point(), Some(ServedBy::Fog));
        assert_eq!(cloud.service_point(), None);
        assert!(!fog.internet_up());
    }

    #[test]
    fn fog_replicates_to_cloud() {
        let mut p = fog_platform();
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let entity = telemetry("probe-1", 0.0, 0.31);
        let sealed = key.seal(
            &[3u8; 12],
            b"probe-1",
            entity.to_json().to_compact_string().as_bytes(),
        );
        p.ingest_frame(SimTime::ZERO, "probe-1", &sealed).unwrap();
        // Pump a few rounds so sync+ack complete.
        for i in 1..10 {
            p.pump(SimTime::from_secs(i * 120));
        }
        let replica = p.cloud_replica().unwrap();
        assert_eq!(replica.record_count(), 1);
        assert!(replica.latest("urn:swamp:device:probe-1").is_some());
        // The replicated record is also applied to the cloud-side context
        // mirror, so cloud consumers see a queryable entity, not raw bytes.
        let mirror = p.cloud_context().unwrap();
        let e = mirror.entity(&"urn:swamp:device:probe-1".into()).unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.31));
    }

    #[test]
    fn cloud_only_deployment_has_no_mirror_context() {
        let p = Platform::new(7, DeploymentConfig::CloudOnly);
        assert!(p.cloud_context().is_none());
        assert!(p.cloud_replica().is_none());
    }

    #[test]
    fn ingest_entities_batch_matches_frame_loop() {
        // Same updates applied through the batch path and the per-frame
        // path must leave identical context + history state behind.
        let mut batch_p = fog_platform();
        let mut loop_p = fog_platform();
        let updates: Vec<Entity> = (0..5)
            .map(|i| telemetry("probe-1", i as f64, 0.2 + 0.01 * i as f64))
            .collect();

        let applied = batch_p.ingest_entities(SimTime::from_secs(1), updates.clone());
        assert_eq!(applied, 5);
        for u in updates {
            loop_p.ingest_entities(SimTime::from_secs(1), std::iter::once(u));
        }

        let id = "urn:swamp:device:probe-1".into();
        assert_eq!(
            batch_p
                .context
                .entity(&id)
                .unwrap()
                .to_json()
                .to_compact_string(),
            loop_p
                .context
                .entity(&id)
                .unwrap()
                .to_json()
                .to_compact_string()
        );
        assert_eq!(
            batch_p.history.range(
                "urn:swamp:device:probe-1",
                "moisture_vwc",
                SimTime::ZERO,
                SimTime::from_secs(10),
            ),
            loop_p.history.range(
                "urn:swamp:device:probe-1",
                "moisture_vwc",
                SimTime::ZERO,
                SimTime::from_secs(10),
            )
        );
        assert_eq!(
            batch_p.metrics().counter("ingest.accepted"),
            loop_p.metrics().counter("ingest.accepted")
        );
    }

    #[test]
    fn authorized_read_enforces_ownership() {
        let mut p = fog_platform();
        // Put an entity in context directly.
        p.context
            .upsert(SimTime::ZERO, telemetry("probe-1", 0.0, 0.2));
        p.idm.register_user("owner", "pw", &["owner:test"]);
        p.idm.register_user("stranger", "pw", &[]);
        let (owner_token, _) = p.idm.password_grant(SimTime::ZERO, "owner", "pw").unwrap();
        let (stranger_token, _) = p
            .idm
            .password_grant(SimTime::ZERO, "stranger", "pw")
            .unwrap();

        let e = p
            .authorized_read(SimTime::ZERO, &owner_token, "urn:swamp:device:probe-1")
            .unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.2));
        assert!(p
            .authorized_read(SimTime::ZERO, &stranger_token, "urn:swamp:device:probe-1")
            .is_err());
        // Bad token.
        let forged = Token::from_raw_for_tests("junk");
        assert!(matches!(
            p.authorized_read(SimTime::ZERO, &forged, "urn:swamp:device:probe-1"),
            Err(Some(AuthError::InvalidToken))
        ));
    }

    #[test]
    fn command_authorization() {
        let mut p = fog_platform();
        p.idm.register_user("owner", "pw", &["owner:test"]);
        let (token, _) = p.idm.password_grant(SimTime::ZERO, "owner", "pw").unwrap();
        let d = p
            .authorize_command(SimTime::ZERO, &token, "probe-1")
            .unwrap();
        assert!(d.is_permit());
        let d = p
            .authorize_command(SimTime::ZERO, &token, "other-device")
            .unwrap();
        assert!(!d.is_permit());
    }
}
