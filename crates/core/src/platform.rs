//! The assembled SWAMP platform: network + secure ingestion + context
//! broker + history + fog tier, in the deployment configurations the paper
//! describes ("smart algorithms and analytics in the cloud, fog-based smart
//! decisions located on the farm premises").
//!
//! One [`Platform`] instance is one pilot deployment, assembled by
//! [`PlatformBuilder`] (see [`Platform::builder`]). Devices are registered
//! (keystore provisioning + registry), publish sealed NGSI entity updates
//! over the simulated network, and the ingestion pipeline authenticates,
//! replay-checks and stores them.
//!
//! Both deployment configurations now ride the same retry/ack engine over
//! the unreliable uplink ([`swamp_fog::sync::FogSync`]):
//!
//! - [`DeploymentConfig::FarmFog`] — the context lives on the farm fog
//!   node; accepted updates are replicated to the cloud store-and-forward,
//!   so the platform keeps serving during Internet outages.
//! - [`DeploymentConfig::CloudOnly`] — the gateway store-and-forwards
//!   sealed frames to the cloud through the same engine (replacing the old
//!   fire-and-forget relay, which silently lost frames to uplink loss).
//!
//! The engine's [`DegradedMode`] is surfaced through
//! [`Platform::degraded_mode`] and [`Platform::active_fallback`], and
//! deterministic faults (loss/duplication/reordering/partitions) can be
//! injected at build time with [`PlatformBuilder::fault_plan`] and
//! [`PlatformBuilder::uplink_outages`].

use swamp_codec::json::Json;
use swamp_codec::ngsi::Entity;
use swamp_crypto::aead::NonceSequence;
use swamp_crypto::keystore::Keystore;
use swamp_fog::availability::{OutageSchedule, ServedBy};
use swamp_fog::sync::{CloudStore, DegradedMode, DropPolicy, FogSync, ACK_TOPIC, SYNC_TOPIC};
use swamp_net::fault::FaultPlan;
use swamp_net::link::LinkSpec;
use swamp_net::message::{Delivery, Message, NodeId};
use swamp_net::network::Network;
use swamp_obs::{Counter, Level, Obs, ObsSnapshot, Span};
use swamp_security::access::{Action, Decision, Pdp, Resource};
use swamp_security::baseline::{BaselineConfig, BehaviorBank};
use swamp_security::detect::{RangeValidator, SeqEvent, SeqMonitor};
use swamp_security::identity::{AuthError, IdentityProvider, Token};
use swamp_security::pipeline::{DetectorBank, Recommendation};
use swamp_sensors::device::DeviceKind;
use swamp_sim::{SimDuration, SimTime};
use swamp_views::{ViewConfig, ViewIndexer};

use crate::broker::ContextBroker;
use crate::error::Error;
use crate::history::HistoryStore;
use crate::query::{QueryRequest, QueryResponse, SeriesEntry};
use crate::registry::DeviceRegistry;

/// Where the platform's decision logic runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeploymentConfig {
    /// Everything in the cloud; the farm gateway store-and-forwards sealed
    /// frames upstream. Decisions stall during Internet outages, but
    /// telemetry is buffered rather than lost.
    CloudOnly,
    /// A farm-premises fog node hosts the context broker and decisions;
    /// the cloud receives replicated state asynchronously.
    FarmFog,
}

/// Why a telemetry frame was rejected by ingestion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Device not in the registry (rogue node) or quarantined.
    UnregisteredDevice(String),
    /// Authenticated decryption failed (wrong key, tampered frame).
    AuthenticationFailed(String),
    /// Payload did not parse as an entity.
    MalformedPayload(String),
    /// Sequence number replayed or duplicated.
    Replay(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnregisteredDevice(d) => write!(f, "unregistered device {d:?}"),
            IngestError::AuthenticationFailed(d) => {
                write!(f, "authentication failed for {d:?}")
            }
            IngestError::MalformedPayload(d) => write!(f, "malformed payload from {d:?}"),
            IngestError::Replay(d) => write!(f, "replayed frame from {d:?}"),
        }
    }
}
impl std::error::Error for IngestError {}

/// The degraded-behavior fallback a deployment is currently exercising,
/// per the paper's requirement that the platform keep functioning "even in
/// case of Internet disconnections using local components".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fallback {
    /// CloudOnly: the gateway is buffering sealed frames until the uplink
    /// recovers; decisions are stalled.
    GatewayBuffering,
    /// FarmFog: irrigation decisions continue at the fog node; cloud
    /// replication is catching up in the background.
    LocalControl,
}

/// The assembled platform.
pub struct Platform {
    config: DeploymentConfig,
    /// The seed every stochastic process was derived from (see
    /// [`PlatformBuilder::seed`]); labelled obs reports carry it.
    seed: u64,
    /// The simulated network fabric (public for attack/SDN experiments).
    pub net: Network,
    /// The context broker (public: the platform API surface).
    pub context: ContextBroker,
    /// Historical time-series store.
    pub history: HistoryStore,
    /// Device registry.
    pub registry: DeviceRegistry,
    /// Key management.
    pub keystore: Keystore,
    /// Identity provider (OAuth2-style).
    pub idm: IdentityProvider,
    /// Policy decision point.
    pub pdp: Pdp,
    /// Anomaly-detection pipeline fed by ingestion ("avoid fake data").
    pub detectors: DetectorBank,
    /// Streaming behavioral baseline ("expected sequence of events"),
    /// fed one observation per accepted record of its signal attribute
    /// by [`Platform::ingest_entities`]. Passive by default (see
    /// [`BaselineConfig`]); configure phases via
    /// [`PlatformBuilder::baseline`].
    pub behavior: BehaviorBank,
    auto_quarantine: bool,
    seq: SeqMonitor,
    device_nonces: std::collections::BTreeMap<String, NonceSequence>,
    fog_sync: Option<FogSync>,
    cloud_store: Option<CloudStore>,
    /// Cloud-side context mirror (FarmFog): replicated records drained from
    /// the [`CloudStore`] are batch-upserted here, so cloud dashboards can
    /// query broker state even though decisions run at the fog.
    cloud_context: Option<ContextBroker>,
    /// CloudOnly: the gateway's store-and-forward engine toward the cloud.
    /// Deliberately not exposed through [`Platform::cloud_replica`] — it
    /// carries sealed frames in transit, not replicated context.
    relay_sync: Option<FogSync>,
    /// CloudOnly: cloud-side receiver/deduplicator for relayed frames.
    relay_store: Option<CloudStore>,
    /// Incremental materialized views (farm rollups, top-K, alerts):
    /// tails the cloud replica's applied-record run behind its own cursor
    /// — never `drain_new`, whose read position belongs to
    /// [`Platform::cloud_context`]'s mirror. Caught up lazily on
    /// [`Platform::query`].
    views: ViewIndexer,
    obs: Obs,
    ins: PlatformInstruments,
}

/// Typed handles for the platform's own instruments (`ingest.*`,
/// `relay.*`, `query.*`, `view.*`, and the `platform.*`/`query.run`
/// spans); the network, uplink engine, cloud store
/// and detector bank each own their instruments, merged on demand by
/// [`Platform::observe`].
struct PlatformInstruments {
    accepted: Counter,
    rejected_unregistered: Counter,
    rejected_auth: Counter,
    rejected_malformed: Counter,
    rejected_replay: Counter,
    quarantined: Counter,
    quarantine_failed: Counter,
    replication_refused: Counter,
    sync_malformed_ack: Counter,
    relay_malformed_ack: Counter,
    relay_refused: Counter,
    relay_duplicates_discarded: Counter,
    query_requests: Counter,
    query_segments_pruned: Counter,
    query_segments_summarized: Counter,
    query_segments_decoded: Counter,
    view_applied: Counter,
    pump_span: Span,
    ingest_span: Span,
    query_span: Span,
}

impl PlatformInstruments {
    fn register(obs: &mut Obs) -> PlatformInstruments {
        PlatformInstruments {
            accepted: obs.counter("ingest.accepted"),
            rejected_unregistered: obs.counter("ingest.rejected_unregistered"),
            rejected_auth: obs.counter("ingest.rejected_auth"),
            rejected_malformed: obs.counter("ingest.rejected_malformed"),
            rejected_replay: obs.counter("ingest.rejected_replay"),
            quarantined: obs.counter("ingest.quarantined"),
            quarantine_failed: obs.counter("ingest.quarantine_failed"),
            replication_refused: obs.counter("ingest.replication_refused"),
            sync_malformed_ack: obs.counter("sync.malformed_ack"),
            relay_malformed_ack: obs.counter("relay.malformed_ack"),
            relay_refused: obs.counter("relay.refused"),
            relay_duplicates_discarded: obs.counter("relay.duplicates_discarded"),
            query_requests: obs.counter("query.requests"),
            query_segments_pruned: obs.counter("query.segments_pruned"),
            query_segments_summarized: obs.counter("query.segments_summarized"),
            query_segments_decoded: obs.counter("query.segments_decoded"),
            view_applied: obs.counter("view.applied"),
            pump_span: obs.span("platform.pump"),
            ingest_span: obs.span("platform.ingest"),
            query_span: obs.span("query.run"),
        }
    }
}

/// Node names used by the platform topology.
pub mod nodes {
    /// The cloud datacenter node.
    pub const CLOUD: &str = "cloud";
    /// The farm fog node (FarmFog config).
    pub const FOG: &str = "farm-fog";
    /// The farm gateway/relay node (CloudOnly config).
    pub const GATEWAY: &str = "farm-gw";
}

/// Assembles a [`Platform`] with named, defaulted knobs: seed, uplink
/// retry/backoff tuning, auto-quarantine, and deterministic fault
/// injection.
///
/// # Example
/// ```
/// use swamp_core::platform::{DeploymentConfig, Platform};
/// use swamp_sim::SimDuration;
///
/// let p = Platform::builder(DeploymentConfig::FarmFog)
///     .seed(42)
///     .sync_base_timeout(SimDuration::from_secs(30))
///     .sync_backoff(2.0, SimDuration::from_secs(240))
///     .build();
/// assert_eq!(p.config(), DeploymentConfig::FarmFog);
/// ```
#[derive(Clone, Debug)]
pub struct PlatformBuilder {
    seed: u64,
    config: DeploymentConfig,
    sync_capacity: usize,
    sync_policy: DropPolicy,
    sync_base_timeout: SimDuration,
    sync_backoff_factor: f64,
    sync_max_backoff: SimDuration,
    sync_jitter: f64,
    sync_max_in_flight: usize,
    auto_quarantine: bool,
    fault_plan: Option<FaultPlan>,
    uplink_outages: Vec<(SimTime, SimTime)>,
    uplink_spec: Option<LinkSpec>,
    shards: usize,
    workers: usize,
    history_segment_threshold: Option<usize>,
    view_config: ViewConfig,
    baseline: BaselineConfig,
}

impl PlatformBuilder {
    fn new(config: DeploymentConfig) -> Self {
        PlatformBuilder {
            seed: 0,
            config,
            sync_capacity: 100_000,
            sync_policy: DropPolicy::Oldest,
            sync_base_timeout: SimDuration::from_secs(60),
            sync_backoff_factor: 2.0,
            sync_max_backoff: SimDuration::from_secs(480),
            sync_jitter: 0.1,
            sync_max_in_flight: 1024,
            auto_quarantine: false,
            fault_plan: None,
            uplink_outages: Vec::new(),
            uplink_spec: None,
            shards: 1,
            workers: 1,
            history_segment_threshold: None,
            view_config: ViewConfig::default(),
            baseline: BaselineConfig::default(),
        }
    }

    /// Configures the streaming behavioral baseline (training/
    /// calibration horizons, profile-error margin). The default config
    /// trains forever and never flags — a passive bank.
    pub fn baseline(mut self, config: BaselineConfig) -> Self {
        self.baseline = config;
        self
    }

    /// Auto-freeze cadence of the history store's columnar segments:
    /// every `Some(n)` tail samples a series' tail is frozen into an
    /// immutable segment (see [`HistoryStore::compact`]). `None` (the
    /// default) never auto-freezes — the flat pre-segment layout.
    /// Compaction is observationally free either way; this knob trades
    /// append-side freeze work for query-side segment pruning.
    pub fn history_segment_threshold(mut self, threshold: Option<usize>) -> Self {
        self.history_segment_threshold = threshold;
        self
    }

    /// Configures the materialized views (consumption attribute, alert
    /// floor, top-K size); defaults to [`ViewConfig::default`].
    pub fn view_config(mut self, config: ViewConfig) -> Self {
        self.view_config = config;
        self
    }

    /// Seeds every stochastic process (network, fault plan, retry jitter).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Capacity of the uplink store-and-forward buffer.
    pub fn sync_capacity(mut self, capacity: usize) -> Self {
        self.sync_capacity = capacity;
        self
    }

    /// What the uplink buffer drops when full.
    pub fn sync_drop_policy(mut self, policy: DropPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// First-retransmission timeout of the uplink engine.
    pub fn sync_base_timeout(mut self, timeout: SimDuration) -> Self {
        self.sync_base_timeout = timeout;
        self
    }

    /// Exponential backoff multiplier and cap for uplink retries.
    pub fn sync_backoff(mut self, factor: f64, cap: SimDuration) -> Self {
        self.sync_backoff_factor = factor;
        self.sync_max_backoff = cap;
        self
    }

    /// Jitter fraction applied to uplink retry timers (`[0, 1]`).
    pub fn sync_jitter(mut self, fraction: f64) -> Self {
        self.sync_jitter = fraction;
        self
    }

    /// Maximum unacknowledged records in flight on the uplink.
    pub fn sync_max_in_flight(mut self, window: usize) -> Self {
        self.sync_max_in_flight = window;
        self
    }

    /// Enables automatic quarantine of devices the detection pipeline
    /// flags (see [`Platform::set_auto_quarantine`]).
    pub fn auto_quarantine(mut self, on: bool) -> Self {
        self.auto_quarantine = on;
        self
    }

    /// Installs a deterministic fault-injection plan on the network
    /// fabric (loss, duplication, reordering, delay, partitions).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the farm↔cloud uplink link characteristics (default:
    /// [`LinkSpec::rural_internet`]). The shard differential harness runs
    /// a lossless, jitter-free uplink so retry/duplicate counters are
    /// workload-determined rather than channel-determined; benchmarks can
    /// model fatter or thinner pipes.
    pub fn uplink_spec(mut self, spec: LinkSpec) -> Self {
        self.uplink_spec = Some(spec);
        self
    }

    /// Number of per-farm shards the deployment is partitioned into
    /// (≥ 1; zero is clamped to one). [`PlatformBuilder::build`] always
    /// builds a *single* shard — the scale-out tier
    /// (`swamp_shard::ShardedPlatform::build`) reads this via
    /// [`PlatformBuilder::shard_count`] and instantiates one platform per
    /// shard, routing devices with [`crate::shard::route_device`].
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// The configured shard count (see [`PlatformBuilder::shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Number of worker threads the scale-out tier may advance shards on
    /// (≥ 1; zero is clamped to one). `1` means the serial schedule; the
    /// parallel schedule is fingerprint-identical to it (the shard
    /// differential suite proves this), so this knob trades wall-clock for
    /// cores without changing behavior. Ignored by
    /// [`PlatformBuilder::build`], which always assembles one platform.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// The configured worker-thread count (see
    /// [`PlatformBuilder::workers`]).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The configured base seed (see [`PlatformBuilder::seed`]). The
    /// scale-out tier derives per-shard seeds from this.
    pub fn configured_seed(&self) -> u64 {
        self.seed
    }

    /// The configured deployment (see [`Platform::builder`]).
    pub fn deployment(&self) -> DeploymentConfig {
        self.config
    }

    /// Schedules farm↔cloud uplink partitions from an outage schedule:
    /// each `[start, end)` window becomes a fault-plan partition on the
    /// uplink pair (creating a fault plan if none was supplied).
    pub fn uplink_outages(mut self, schedule: &OutageSchedule) -> Self {
        self.uplink_outages.extend_from_slice(schedule.windows());
        self
    }

    /// Builds the platform.
    ///
    /// # Panics
    /// Panics if [`PlatformBuilder::uplink_outages`] windows overlap
    /// partitions already scheduled on the uplink pair in a supplied
    /// [`PlatformBuilder::fault_plan`] (both sources are caller-authored
    /// configuration, so the overlap is a configuration bug).
    pub fn build(self) -> Platform {
        let PlatformBuilder {
            seed,
            config,
            sync_capacity,
            sync_policy,
            sync_base_timeout,
            sync_backoff_factor,
            sync_max_backoff,
            sync_jitter,
            sync_max_in_flight,
            auto_quarantine,
            mut fault_plan,
            uplink_outages,
            uplink_spec,
            // One builder always yields one shard; ShardedPlatform::build
            // fans a builder out into `shards` platforms across `workers`
            // threads.
            shards: _,
            workers: _,
            history_segment_threshold,
            view_config,
            baseline,
        } = self;

        let mut net = Network::new(seed);
        net.add_node(nodes::CLOUD);
        let farm = match config {
            DeploymentConfig::CloudOnly => nodes::GATEWAY,
            DeploymentConfig::FarmFog => nodes::FOG,
        };
        net.add_node(farm);
        net.connect(
            farm,
            nodes::CLOUD,
            uplink_spec.unwrap_or_else(LinkSpec::rural_internet),
        );

        if !uplink_outages.is_empty() {
            let plan = fault_plan.get_or_insert_with(|| FaultPlan::new(seed));
            plan.add_partitions_from(farm, nodes::CLOUD, uplink_outages)
                .expect("uplink outage windows overlap partitions already in the fault plan");
        }
        if let Some(plan) = fault_plan {
            net.install_fault_plan(plan);
        }

        let uplink_engine = |node: &str| {
            FogSync::builder(node, nodes::CLOUD)
                .capacity(sync_capacity)
                .drop_policy(sync_policy)
                .base_timeout(sync_base_timeout)
                .backoff(sync_backoff_factor, sync_max_backoff)
                .jitter(sync_jitter)
                .max_in_flight(sync_max_in_flight)
                .seed(seed ^ 0x73796e635f656e67) // "sync_eng"
                .build()
        };
        let (fog_sync, cloud_store, relay_sync, relay_store) = match config {
            DeploymentConfig::FarmFog => (
                Some(uplink_engine(nodes::FOG)),
                Some(CloudStore::new(nodes::CLOUD)),
                None,
                None,
            ),
            DeploymentConfig::CloudOnly => (
                None,
                None,
                Some(uplink_engine(nodes::GATEWAY)),
                // In-order release: relayed frames feed the per-device
                // sequence monitor, which rejects any frame that arrives
                // behind one it has already seen — and retransmissions on
                // a lossy uplink reorder freely. The hold cap only kicks
                // in for seqs the gateway's bounded buffer dropped before
                // transmitting (everything else retries until acked), so
                // a generous hour bounds the stall without ever rejecting
                // a live record.
                Some(CloudStore::in_order(
                    nodes::CLOUD,
                    SimDuration::from_hours(1),
                )),
            ),
        };

        let mut detectors = DetectorBank::new();
        detectors.configure_quantity("moisture_vwc", RangeValidator::soil_moisture());
        detectors.configure_quantity("battery_fraction", RangeValidator::new(0.0, 1.0));
        detectors.configure_quantity("rh_mean_pct", RangeValidator::new(0.0, 100.0));

        let mut obs = Obs::new();
        let ins = PlatformInstruments::register(&mut obs);
        let mut history = HistoryStore::new();
        history.set_segment_threshold(history_segment_threshold);
        Platform {
            config,
            seed,
            net,
            context: ContextBroker::new(),
            history,
            registry: DeviceRegistry::new(),
            keystore: Keystore::new(&seed.to_be_bytes()),
            idm: IdentityProvider::new(b"swamp-idm-signing", SimDuration::from_hours(8)),
            pdp: Pdp::new(),
            detectors,
            behavior: BehaviorBank::new(baseline),
            auto_quarantine,
            seq: SeqMonitor::new(),
            device_nonces: std::collections::BTreeMap::new(),
            cloud_context: fog_sync.as_ref().map(|_| ContextBroker::new()),
            fog_sync,
            cloud_store,
            relay_sync,
            relay_store,
            views: ViewIndexer::with_config(view_config),
            obs,
            ins,
        }
    }

    /// Builds shard `i` of a scale-out deployment *without consuming the
    /// builder*: the configuration (fault plan, outage windows, uplink
    /// spec, sync tuning) is cloned per shard and the shard's seed is
    /// derived with [`crate::shard::shard_seed`], so shard 0 of an
    /// N-shard deployment is byte-identical to the 1-shard build from the
    /// same builder.
    ///
    /// Taking `&self` is load-bearing: the old fan-out path consumed the
    /// builder per shard, so a caller holding only getters could end up
    /// building later shards from a builder whose fault plan had already
    /// been moved out. Every shard now clones from the same intact
    /// configuration.
    ///
    /// # Panics
    /// As [`PlatformBuilder::build`], if outage windows overlap fault-plan
    /// partitions.
    pub fn build_shard(&self, shard: crate::shard::ShardIndex) -> Platform {
        let seed = crate::shard::shard_seed(self.seed, shard);
        let mut platform = self.clone().seed(seed).build();
        platform.set_net_namespace(format!("shard{shard}"));
        platform
    }
}

impl Platform {
    /// Starts building a platform in the given deployment configuration.
    pub fn builder(config: DeploymentConfig) -> PlatformBuilder {
        PlatformBuilder::new(config)
    }

    /// The deployment configuration.
    pub fn config(&self) -> DeploymentConfig {
        self.config
    }

    /// The seed this platform was built with (see
    /// [`PlatformBuilder::seed`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Enables automatic quarantine: when the detection pipeline recommends
    /// it, the device is disabled in the registry and further frames are
    /// rejected until an operator re-enables it.
    pub fn set_auto_quarantine(&mut self, on: bool) {
        self.auto_quarantine = on;
    }

    /// Labels this platform's network fabric (see
    /// [`Network::set_namespace`]); the scale-out tier tags each shard's
    /// fabric `shard<i>` so diagnostics from parallel fabrics stay
    /// distinguishable.
    pub fn set_net_namespace(&mut self, namespace: impl Into<String>) {
        self.net.set_namespace(namespace);
    }

    /// The network fabric's namespace label, if one was set.
    pub fn net_namespace(&self) -> Option<&str> {
        self.net.namespace()
    }

    /// The node where ingestion and decisions run.
    pub fn platform_node(&self) -> NodeId {
        match self.config {
            DeploymentConfig::CloudOnly => nodes::CLOUD.into(),
            DeploymentConfig::FarmFog => nodes::FOG.into(),
        }
    }

    /// The farm-side node devices connect to.
    pub fn farm_node(&self) -> NodeId {
        match self.config {
            DeploymentConfig::CloudOnly => nodes::GATEWAY.into(),
            DeploymentConfig::FarmFog => nodes::FOG.into(),
        }
    }

    /// One merged, typed snapshot of every subsystem's instruments: the
    /// platform's own `ingest.*`/`relay.*` counters and `platform.*` spans,
    /// the network's `net.*` instruments, the uplink engine's `sync.*`
    /// instruments, the cloud store's `cloud.*` counters and the detector
    /// bank's `security.*` instruments. Counters with the same name add,
    /// gauges take the later value, summaries merge, events interleave by
    /// `(tick, seq)` — with each deployment owning exactly one engine and
    /// one store, merged names never collide in practice.
    pub fn observe(&self) -> ObsSnapshot {
        let mut snap = self.obs.snapshot();
        snap.merge(&self.net.observe());
        if let Some(engine) = self.uplink_engine() {
            snap.merge(&engine.observe());
        }
        if let Some(store) = self.cloud_store.as_ref().or(self.relay_store.as_ref()) {
            snap.merge(&store.observe());
        }
        snap.merge(&self.detectors.observe());
        snap.merge(&self.behavior.observe());
        snap
    }

    /// Enables or disables instrumentation across every subsystem (the
    /// uninstrumented baseline for overhead benchmarks).
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
        self.net.set_obs_enabled(enabled);
        if let Some(s) = &mut self.fog_sync {
            s.set_obs_enabled(enabled);
        }
        if let Some(s) = &mut self.relay_sync {
            s.set_obs_enabled(enabled);
        }
        if let Some(s) = &mut self.cloud_store {
            s.set_obs_enabled(enabled);
        }
        if let Some(s) = &mut self.relay_store {
            s.set_obs_enabled(enabled);
        }
        self.detectors.set_obs_enabled(enabled);
        self.behavior.set_obs_enabled(enabled);
    }

    /// The cloud replica store, if this is a fog deployment. (The CloudOnly
    /// gateway relay also uses a store internally, but it holds sealed
    /// frames in transit, not replicated context, so it is not exposed
    /// here.)
    pub fn cloud_replica(&self) -> Option<&CloudStore> {
        self.cloud_store.as_ref()
    }

    /// Mutable access to the cloud replica store (fog deployments only):
    /// the scale-out tier drains each shard's newly applied records
    /// ([`CloudStore::drain_new`]) and forwards them to the cross-shard
    /// aggregation inbox.
    #[deprecated(
        since = "0.1.0",
        note = "read through `Drive::query` (e.g. `QueryRequest::ReplicaSeqs`); \
                handing out mutable store access lets callers race the \
                platform's own drain cursors"
    )]
    pub fn cloud_replica_mut(&mut self) -> Option<&mut CloudStore> {
        self.cloud_store.as_mut()
    }

    /// The fog-side context broker (current entity state).
    #[deprecated(
        since = "0.1.0",
        note = "read through `Drive::query`, or use the public `context` \
                field where direct broker access is genuinely needed"
    )]
    pub fn context(&self) -> &ContextBroker {
        &self.context
    }

    /// The historical time-series store.
    #[deprecated(
        since = "0.1.0",
        note = "read through `Drive::query` (`QueryRequest::Range` / \
                `Aggregate` / `SeriesDump`), or use the public `history` \
                field where direct store access is genuinely needed"
    )]
    pub fn history(&self) -> &HistoryStore {
        &self.history
    }

    /// Freezes every history series' mutable tail into a columnar
    /// segment now (see [`HistoryStore::compact`]); queries before and
    /// after are byte-identical. Returns the segments created.
    pub fn compact_history(&mut self) -> usize {
        self.history.compact()
    }

    /// Answers a typed read — the [`crate::drive::Drive::query`] entry
    /// point. Instrumented with the `query.requests` /
    /// `query.segments_pruned` / `query.segments_summarized` /
    /// `query.segments_decoded` / `view.applied`
    /// counters and the `query.run` span; [`QueryRequest::Views`] first
    /// catches the view indexer's cursor up to the cloud replica's
    /// applied-record run.
    pub fn query(&mut self, req: &QueryRequest) -> QueryResponse {
        let token = self.obs.enter(self.ins.query_span);
        self.obs.inc(self.ins.query_requests);
        let resp = match req {
            QueryRequest::Range {
                entity,
                attr,
                from,
                to,
            } => QueryResponse::Samples(self.history.range(entity, attr, *from, *to)),
            QueryRequest::Aggregate {
                entity,
                attr,
                from,
                to,
            } => QueryResponse::Aggregate(self.history.aggregate(entity, attr, *from, *to)),
            QueryRequest::Extremes {
                entity,
                attr,
                from,
                to,
            } => QueryResponse::Extremes(self.history.extremes(entity, attr, *from, *to)),
            QueryRequest::Downsample {
                entity,
                attr,
                from,
                to,
                bucket,
            } => QueryResponse::Buckets(self.history.downsample(entity, attr, *from, *to, *bucket)),
            QueryRequest::Last { entity, attr } => {
                QueryResponse::Sample(self.history.last(entity, attr))
            }
            QueryRequest::SeriesDump => QueryResponse::Series(
                self.history
                    .dump_sorted()
                    .into_iter()
                    .map(|(entity, attr, samples)| SeriesEntry {
                        entity: entity.to_owned(),
                        attr: attr.to_owned(),
                        samples,
                    })
                    .collect(),
            ),
            QueryRequest::ReplicaSeqs => QueryResponse::Seqs(
                self.cloud_store
                    .as_ref()
                    .map(|s| s.history().iter().map(|r| r.seq).collect())
                    .unwrap_or_default(),
            ),
            QueryRequest::Views => {
                let run = self
                    .cloud_store
                    .as_ref()
                    .map(|s| s.history())
                    .unwrap_or(&[]);
                let applied = self.views.catch_up(run);
                self.obs.add(self.ins.view_applied, applied as u64);
                QueryResponse::Views(self.views.snapshot())
            }
        };
        let stats = self.history.take_scan_stats();
        self.obs
            .add(self.ins.query_segments_pruned, stats.segments_pruned);
        self.obs.add(
            self.ins.query_segments_summarized,
            stats.segments_summarized,
        );
        self.obs
            .add(self.ins.query_segments_decoded, stats.segments_decoded);
        self.obs.exit(token);
        resp
    }

    /// The cloud-side context mirror, if this is a fog deployment: broker
    /// state rebuilt from replicated records, queryable like the fog's own
    /// [`ContextBroker`] (and independently subscribable).
    pub fn cloud_context(&self) -> Option<&ContextBroker> {
        self.cloud_context.as_ref()
    }

    /// The uplink store-and-forward engine: fog→cloud replication
    /// (FarmFog) or the gateway relay (CloudOnly).
    fn uplink_engine(&self) -> Option<&FogSync> {
        self.fog_sync.as_ref().or(self.relay_sync.as_ref())
    }

    /// The uplink engine's degraded-mode state (`Connected` if the
    /// deployment has no uplink engine).
    pub fn degraded_mode(&self) -> DegradedMode {
        self.uplink_engine().map(FogSync::mode).unwrap_or_default()
    }

    /// The fallback behavior currently active, if the uplink engine has
    /// left `Connected`: the CloudOnly gateway buffers, a FarmFog node
    /// keeps deciding locally.
    pub fn active_fallback(&self) -> Option<Fallback> {
        if self.degraded_mode() == DegradedMode::Connected {
            return None;
        }
        Some(match self.config {
            DeploymentConfig::CloudOnly => Fallback::GatewayBuffering,
            DeploymentConfig::FarmFog => Fallback::LocalControl,
        })
    }

    /// Registers a field device: network node + link, key provisioning and
    /// registry entry.
    ///
    /// # Errors
    /// [`Error::Registry`] if the device id is already registered; no
    /// platform state changes in that case.
    pub fn register_device(
        &mut self,
        now: SimTime,
        device_id: &str,
        kind: DeviceKind,
        owner: &str,
    ) -> Result<(), Error> {
        // Registry first: it is the fallible step, and erroring before any
        // other mutation keeps registration atomic.
        self.registry.register(device_id, kind, owner, now)?;
        self.net.add_node(device_id);
        let farm = self.farm_node();
        self.net.connect(device_id, farm, LinkSpec::lpwan_field());
        self.keystore.provision(device_id);
        self.device_nonces.insert(
            device_id.to_owned(),
            NonceSequence::new(self.device_nonces.len() as u32 + 1),
        );
        Ok(())
    }

    /// Device-side publish: seals the entity with the device's provisioned
    /// key and offers it to the network toward the farm node.
    ///
    /// # Errors
    /// [`Error::Send`] if the network refuses the send synchronously.
    pub fn device_publish(
        &mut self,
        now: SimTime,
        device_id: &str,
        entity: &Entity,
    ) -> Result<(), Error> {
        let key = self
            .keystore
            .device_key(device_id)
            .map(|dk| dk.key)
            .unwrap_or_else(|_| {
                // Unprovisioned device: derive a garbage key — its frames
                // will fail authentication at ingest (rogue-node path).
                self.keystore
                    .derive("rogue", swamp_crypto::keystore::KeyEpoch(0))
            });
        let nonces = self
            .device_nonces
            .entry(device_id.to_owned())
            .or_insert_with(|| NonceSequence::new(9999));
        let plaintext = entity.to_json().to_compact_string();
        let sealed = key.seal(
            &nonces.next_nonce(),
            device_id.as_bytes(),
            plaintext.as_bytes(),
        );
        let farm = self.farm_node();
        self.net
            .send(
                now,
                device_id,
                farm,
                Message::new(format!("telemetry/{device_id}"), sealed),
            )
            .map(|_| ())
            .map_err(Error::from)
    }

    /// Advances the network and processes everything that arrived: the
    /// gateway relay (CloudOnly), secure ingestion, replication acks and
    /// fog→cloud replication. Returns the number of entity updates
    /// ingested this round.
    pub fn pump(&mut self, now: SimTime) -> usize {
        let token = self.obs.enter(self.ins.pump_span);
        let ingested = self.pump_inner(now);
        self.obs.exit(token);
        ingested
    }

    fn pump_inner(&mut self, now: SimTime) -> usize {
        self.net.advance_to(now);

        // CloudOnly: the gateway store-and-forwards farm traffic to the
        // cloud through the retry/ack engine (the old fire-and-forget
        // relay lost frames to uplink loss with no retransmission).
        if let Some(relay) = &mut self.relay_sync {
            let gw: NodeId = nodes::GATEWAY.into();
            for d in self.net.drain(&gw) {
                if d.message.topic == ACK_TOPIC {
                    if relay.process_ack(now, &d.message.payload).is_err() {
                        self.obs.inc(self.ins.relay_malformed_ack);
                    }
                } else if d.message.topic != SYNC_TOPIC
                    && relay
                        .enqueue(now, &d.message.topic, d.message.payload)
                        .is_err()
                {
                    self.obs.inc(self.ins.relay_refused);
                }
            }
            relay.sync_round(&mut self.net, now, 256);
            self.net.advance_to(now);
        }

        // One drain of the platform node's inbox, routed by topic: sealed
        // telemetry to validation, relayed records to the relay store
        // (CloudOnly), ack payloads to the retry engine (FarmFog — these
        // used to be discarded by the telemetry filter here, leaving every
        // record to retransmit until the cloud's duplicate path re-acked
        // it).
        let node = self.platform_node();
        let deliveries = self.net.drain(&node);
        let mut batch: Vec<Entity> = Vec::new();
        let mut relayed: Vec<Delivery> = Vec::new();
        for d in deliveries {
            if let Some(device_id) = d.message.topic.strip_prefix("telemetry/") {
                match self.validate_frame(now, device_id, &d.message.payload) {
                    Ok(entity) => batch.push(entity),
                    Err(e) => self.count_rejection(&e),
                }
            } else if d.message.topic == SYNC_TOPIC {
                relayed.push(d);
            } else if d.message.topic == ACK_TOPIC {
                if let Some(sync) = &mut self.fog_sync {
                    if sync.process_ack(now, &d.message.payload).is_err() {
                        self.obs.inc(self.ins.sync_malformed_ack);
                    }
                }
            }
        }

        // CloudOnly: store/dedup the relayed records, ack the gateway, and
        // ingest the sealed frames they carry.
        if let Some(store) = &mut self.relay_store {
            let dup_before = store.duplicates();
            store.process_deliveries(&mut self.net, now, relayed);
            let dup_delta = store.duplicates() - dup_before;
            if dup_delta > 0 {
                self.obs.add(self.ins.relay_duplicates_discarded, dup_delta);
            }
            let frames: Vec<(String, Vec<u8>)> = store
                .drain_ready(now)
                .into_iter()
                .map(|r| (r.key, r.payload))
                .collect();
            self.net.advance_to(now);
            for (key, payload) in frames {
                if let Some(device_id) = key.strip_prefix("telemetry/") {
                    match self.validate_frame(now, device_id, &payload) {
                        Ok(entity) => batch.push(entity),
                        Err(e) => self.count_rejection(&e),
                    }
                }
            }
        }

        let ingested = self.ingest_entities(now, batch);

        // Fog→cloud replication; newly accepted records are batch-applied
        // to the cloud-side context mirror.
        if let (Some(sync), Some(store)) = (&mut self.fog_sync, &mut self.cloud_store) {
            sync.sync_round(&mut self.net, now, 256);
            self.net.advance_to(now);
            store.process(&mut self.net, now);
            self.net.advance_to(now);
            sync.poll_acks(&mut self.net, now);
            if let Some(cloud_ctx) = &mut self.cloud_context {
                let replicated = store.drain_new().iter().filter_map(|r| {
                    let text = std::str::from_utf8(&r.payload).ok()?;
                    let json = Json::parse(text).ok()?;
                    Entity::from_json(&json).ok()
                });
                cloud_ctx.upsert_batch(now, replicated);
            }
        }
        ingested
    }

    fn count_rejection(&mut self, e: &IngestError) {
        let handle = match e {
            IngestError::UnregisteredDevice(_) => self.ins.rejected_unregistered,
            IngestError::AuthenticationFailed(_) => self.ins.rejected_auth,
            IngestError::MalformedPayload(_) => self.ins.rejected_malformed,
            IngestError::Replay(_) => self.ins.rejected_replay,
        };
        self.obs.inc(handle);
    }

    /// The secure ingestion path for one sealed frame: validation followed
    /// by a single-update apply. Bursts should go through
    /// [`Platform::validate_frame`] + [`Platform::ingest_entities`], which
    /// is what [`Platform::pump`] does.
    ///
    /// # Errors
    /// [`IngestError`] describing which defense rejected the frame.
    pub fn ingest_frame(
        &mut self,
        now: SimTime,
        device_id: &str,
        sealed: &[u8],
    ) -> Result<(), IngestError> {
        let entity = self.validate_frame(now, device_id, sealed)?;
        self.ingest_entities(now, std::iter::once(entity));
        Ok(())
    }

    /// Runs the defensive half of ingestion for one sealed frame — registry
    /// check, authenticated decryption, payload decode, replay detection
    /// and the anomaly pipeline — returning the validated entity update
    /// without applying it.
    ///
    /// # Errors
    /// [`IngestError`] describing which defense rejected the frame.
    pub fn validate_frame(
        &mut self,
        now: SimTime,
        device_id: &str,
        sealed: &[u8],
    ) -> Result<Entity, IngestError> {
        if !self.registry.is_active(device_id) {
            return Err(IngestError::UnregisteredDevice(device_id.to_owned()));
        }
        let key = self
            .keystore
            .device_key(device_id)
            .map_err(|_| IngestError::AuthenticationFailed(device_id.to_owned()))?;
        let plaintext = key
            .key
            .open(device_id.as_bytes(), sealed)
            .map_err(|_| IngestError::AuthenticationFailed(device_id.to_owned()))?;
        let text = std::str::from_utf8(&plaintext)
            .map_err(|_| IngestError::MalformedPayload(device_id.to_owned()))?;
        let json =
            Json::parse(text).map_err(|_| IngestError::MalformedPayload(device_id.to_owned()))?;
        let entity = Entity::from_json(&json)
            .map_err(|_| IngestError::MalformedPayload(device_id.to_owned()))?;

        // Replay detection on the firmware sequence number.
        if let Some(seq) = entity.number("seq") {
            if let SeqEvent::ReplayOrDuplicate = self.seq.observe(device_id, seq as u64) {
                return Err(IngestError::Replay(device_id.to_owned()));
            }
        }

        // Detection pipeline: every numeric attribute is screened before it
        // can influence decisions ("mechanisms to avoid fake data").
        for (name, attr) in entity.attributes() {
            if name == "seq" {
                continue;
            }
            if let Some(v) = attr.value.as_number() {
                self.detectors.observe_value(now, device_id, name, v);
            }
        }
        if self.auto_quarantine
            && self.detectors.recommendation(device_id) == Recommendation::Quarantine
        {
            // `is_active` above proved the device is registered, so the
            // disable cannot miss; if the registry ever disagrees, count it
            // rather than silently dropping the quarantine.
            match self.registry.set_enabled(device_id, false) {
                Ok(()) => {
                    self.obs.inc(self.ins.quarantined);
                    self.obs.event(Level::Warn, "ingest.quarantine", device_id);
                }
                Err(_) => {
                    self.obs.inc(self.ins.quarantine_failed);
                    self.obs
                        .event(Level::Error, "ingest.quarantine_failed", device_id);
                }
            }
        }
        Ok(entity)
    }

    /// Applies a batch of *already validated* entity updates: history
    /// samples for numeric attributes, one batched context-broker upsert
    /// (zero-copy fan-out to subscribers), and fog→cloud replication
    /// enqueueing. This is the storage half of the ingestion hot path;
    /// callers are responsible for authentication — frames from the network
    /// must come through [`Platform::validate_frame`] first.
    ///
    /// Returns the number of updates applied.
    pub fn ingest_entities(
        &mut self,
        now: SimTime,
        entities: impl IntoIterator<Item = Entity>,
    ) -> usize {
        let token = self.obs.enter(self.ins.ingest_span);
        let mut applied = 0;
        let mut batch: Vec<Entity> = Vec::new();
        for entity in entities {
            for (name, attr) in entity.attributes() {
                if let Some(v) = attr.value.as_number() {
                    let at = attr.observed_at_ms.map(SimTime::from_millis).unwrap_or(now);
                    self.history.append(entity.id().as_str(), name, at, v);
                    if name == self.behavior.signal_attr() {
                        self.behavior.ingest(at, entity.id().as_str(), v);
                    }
                }
            }
            self.obs.inc(self.ins.accepted);
            applied += 1;
            batch.push(entity);
        }
        // Fog deployments replicate the accepted updates to the cloud.
        // Entity ids are far below the sync key-length limit, so a refusal
        // here is a policy outcome worth a metric, never a lost batch.
        if let Some(sync) = &mut self.fog_sync {
            let enqueued = sync.enqueue_batch(
                now,
                batch.iter().map(|e| {
                    (
                        e.id().as_str(),
                        e.to_json().to_compact_string().into_bytes(),
                    )
                }),
            );
            if enqueued.is_err() {
                self.obs.inc(self.ins.replication_refused);
            }
        }
        self.context.upsert_batch(now, batch);
        self.obs.exit(token);
        applied
    }

    /// Whether the farm↔cloud uplink is currently up.
    pub fn internet_up(&self) -> bool {
        self.net.link_up(&self.farm_node(), &nodes::CLOUD.into())
    }

    /// Brings the farm↔cloud uplink up or down (outage scenarios).
    pub fn set_internet(&mut self, up: bool) {
        let farm = self.farm_node();
        self.net.set_link_up(&farm, &nodes::CLOUD.into(), up);
    }

    /// Whether the platform can serve its function right now, and where.
    ///
    /// CloudOnly requires the uplink; FarmFog decides locally regardless,
    /// reporting `Cloud` only when it could also reach the cloud.
    pub fn service_point(&self) -> Option<ServedBy> {
        match self.config {
            DeploymentConfig::CloudOnly => {
                if self.internet_up() {
                    Some(ServedBy::Cloud)
                } else {
                    None
                }
            }
            DeploymentConfig::FarmFog => Some(ServedBy::Fog),
        }
    }

    /// Reads an entity on behalf of a token holder, enforcing ownership
    /// policies (the paper's "each owner controls their data").
    ///
    /// # Errors
    /// `Err(Some(AuthError))` for token problems, `Err(None)` for a policy
    /// denial or a missing entity.
    pub fn authorized_read(
        &mut self,
        now: SimTime,
        token: &Token,
        entity_id: &str,
    ) -> Result<Entity, Option<AuthError>> {
        let info = self.idm.validate(now, token).map_err(Some)?;
        let owner = entity_id
            .strip_prefix("urn:swamp:device:")
            .and_then(|d| self.registry.get(d))
            .map(|r| r.owner.clone())
            .unwrap_or_else(|| "owner:platform".to_owned());
        let resource = Resource::new(entity_id, owner);
        let decision = self.pdp.decide(&info, &resource, Action::Read);
        if !decision.is_permit() {
            return Err(None);
        }
        self.context.entity(&entity_id.into()).cloned().ok_or(None)
    }

    /// Authorizes a command against a device on behalf of a token holder.
    pub fn authorize_command(
        &mut self,
        now: SimTime,
        token: &Token,
        device_id: &str,
    ) -> Result<Decision, AuthError> {
        let info = self.idm.validate(now, token)?;
        let owner = self
            .registry
            .get(device_id)
            .map(|r| r.owner.clone())
            .unwrap_or_else(|| "owner:platform".to_owned());
        let resource = Resource::new(format!("urn:swamp:device:{device_id}"), owner);
        Ok(self.pdp.decide(&info, &resource, Action::Command))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_codec::ngsi::Entity;

    fn telemetry(device: &str, seq: f64, vwc: f64) -> Entity {
        let mut e = Entity::new(format!("urn:swamp:device:{device}"), "SoilProbe");
        e.set("moisture_vwc", vwc);
        e.set("seq", seq);
        e
    }

    fn fog_platform() -> Platform {
        let mut p = Platform::builder(DeploymentConfig::FarmFog)
            .seed(42)
            .build();
        p.register_device(
            SimTime::ZERO,
            "probe-1",
            DeviceKind::SoilProbe,
            "owner:test",
        )
        .unwrap();
        p
    }

    #[test]
    fn end_to_end_publish_ingest() {
        let mut p = fog_platform();
        p.device_publish(SimTime::ZERO, "probe-1", &telemetry("probe-1", 0.0, 0.27))
            .unwrap();
        // LPWAN link has loss; retry a few times at increasing times.
        let mut ingested = 0;
        for i in 1..10 {
            ingested += p.pump(SimTime::from_secs(i * 10));
            if ingested > 0 {
                break;
            }
            p.device_publish(
                SimTime::from_secs(i * 10),
                "probe-1",
                &telemetry("probe-1", i as f64, 0.27),
            )
            .unwrap();
        }
        assert!(ingested > 0, "telemetry must eventually ingest");
        let e = p
            .context
            .entity(&"urn:swamp:device:probe-1".into())
            .unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.27));
        assert!(p
            .history
            .last("urn:swamp:device:probe-1", "moisture_vwc")
            .is_some());
        assert!(p.observe().counter("ingest.accepted").unwrap() >= 1);
        // The pump and ingest spans nest: every pump entered the span, and
        // ingest ran inside it.
        let snap = p.observe();
        assert!(snap.span("platform.pump").unwrap().count >= 1);
        assert!(
            snap.span("platform.pump")
                .unwrap()
                .children
                .get("platform.ingest")
                .copied()
                .unwrap_or(0)
                >= 1
        );
    }

    #[test]
    fn duplicate_registration_is_a_typed_error() {
        let mut p = fog_platform();
        let err = p
            .register_device(
                SimTime::ZERO,
                "probe-1",
                DeviceKind::SoilProbe,
                "owner:test",
            )
            .unwrap_err();
        assert!(matches!(err, Error::Registry(_)));
        assert!(err.to_string().contains("registry"));
    }

    #[test]
    fn rogue_device_rejected() {
        let mut p = fog_platform();
        // "rogue-9" has a network node but is never registered/provisioned.
        p.net.add_node("rogue-9");
        let farm = p.farm_node();
        p.net
            .connect("rogue-9", farm, swamp_net::link::LinkSpec::farm_lan());
        let fake = telemetry("rogue-9", 0.0, 0.99);
        p.device_publish(SimTime::ZERO, "rogue-9", &fake).unwrap();
        let ingested = p.pump(SimTime::from_secs(5));
        assert_eq!(ingested, 0);
        assert_eq!(
            p.observe().counter("ingest.rejected_unregistered").unwrap(),
            1
        );
        assert!(p
            .context
            .entity(&"urn:swamp:device:rogue-9".into())
            .is_none());
    }

    #[test]
    fn tampered_frame_rejected() {
        let mut p = fog_platform();
        // Build a valid sealed frame, then flip a ciphertext bit.
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let entity = telemetry("probe-1", 0.0, 0.2);
        let mut sealed = key.seal(
            &[7u8; 12],
            b"probe-1",
            entity.to_json().to_compact_string().as_bytes(),
        );
        sealed[14] ^= 0x40;
        let err = p
            .ingest_frame(SimTime::ZERO, "probe-1", &sealed)
            .unwrap_err();
        assert!(matches!(err, IngestError::AuthenticationFailed(_)));
    }

    #[test]
    fn replayed_frame_rejected() {
        let mut p = fog_platform();
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let entity = telemetry("probe-1", 5.0, 0.2);
        let sealed = key.seal(
            &[1u8; 12],
            b"probe-1",
            entity.to_json().to_compact_string().as_bytes(),
        );
        p.ingest_frame(SimTime::ZERO, "probe-1", &sealed).unwrap();
        let err = p
            .ingest_frame(SimTime::from_secs(10), "probe-1", &sealed)
            .unwrap_err();
        assert!(matches!(err, IngestError::Replay(_)));
    }

    #[test]
    fn malformed_payload_rejected() {
        let mut p = fog_platform();
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let sealed = key.seal(&[2u8; 12], b"probe-1", b"not json at all");
        let err = p
            .ingest_frame(SimTime::ZERO, "probe-1", &sealed)
            .unwrap_err();
        assert!(matches!(err, IngestError::MalformedPayload(_)));
    }

    #[test]
    fn fog_keeps_serving_during_outage_cloud_only_does_not() {
        let mut fog = Platform::builder(DeploymentConfig::FarmFog).seed(1).build();
        let mut cloud = Platform::builder(DeploymentConfig::CloudOnly)
            .seed(1)
            .build();
        assert_eq!(fog.service_point(), Some(ServedBy::Fog));
        assert_eq!(cloud.service_point(), Some(ServedBy::Cloud));
        fog.set_internet(false);
        cloud.set_internet(false);
        assert_eq!(fog.service_point(), Some(ServedBy::Fog));
        assert_eq!(cloud.service_point(), None);
        assert!(!fog.internet_up());
    }

    #[test]
    fn fog_replicates_to_cloud() {
        let mut p = fog_platform();
        let key = p.keystore.device_key("probe-1").unwrap().key;
        let entity = telemetry("probe-1", 0.0, 0.31);
        let sealed = key.seal(
            &[3u8; 12],
            b"probe-1",
            entity.to_json().to_compact_string().as_bytes(),
        );
        p.ingest_frame(SimTime::ZERO, "probe-1", &sealed).unwrap();
        // Pump a few rounds so sync+ack complete.
        for i in 1..10 {
            p.pump(SimTime::from_secs(i * 120));
        }
        let replica = p.cloud_replica().unwrap();
        assert_eq!(replica.record_count(), 1);
        assert!(replica.latest("urn:swamp:device:probe-1").is_some());
        // The replicated record is also applied to the cloud-side context
        // mirror, so cloud consumers see a queryable entity, not raw bytes.
        let mirror = p.cloud_context().unwrap();
        let e = mirror.entity(&"urn:swamp:device:probe-1".into()).unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.31));
        // The ack made it back to the fog engine (regression: acks used to
        // be discarded by the pump's telemetry filter, so every record
        // retransmitted forever).
        let snap = p.observe();
        assert_eq!(snap.gauge("sync.pending").unwrap(), Some(0.0));
        assert!(snap.counter("sync.acked").unwrap() >= 1);
        assert_eq!(snap.gauge("sync.in_flight").unwrap(), Some(0.0));
    }

    #[test]
    fn cloud_only_deployment_has_no_mirror_context() {
        let p = Platform::builder(DeploymentConfig::CloudOnly)
            .seed(7)
            .build();
        assert!(p.cloud_context().is_none());
        assert!(p.cloud_replica().is_none());
        // It still has an uplink engine (the gateway relay): its sync.*
        // instruments show up in the merged snapshot.
        assert!(p.observe().counter("sync.enqueued").is_ok());
    }

    #[test]
    fn cloud_only_relay_retries_through_uplink_loss() {
        let mut p = Platform::builder(DeploymentConfig::CloudOnly)
            .seed(11)
            .sync_base_timeout(SimDuration::from_secs(20))
            .build();
        p.register_device(
            SimTime::ZERO,
            "probe-1",
            DeviceKind::SoilProbe,
            "owner:test",
        )
        .unwrap();
        // Make the gateway→cloud hop very lossy: the retry engine must
        // still get every frame through (the old relay just lost them).
        let mut plan = swamp_net::FaultPlan::new(5);
        plan.set_link_faults(
            nodes::GATEWAY,
            nodes::CLOUD,
            swamp_net::FaultSpec::lossy(0.5),
        )
        .unwrap();
        p.net.install_fault_plan(plan);

        let mut ingested = 0;
        let mut seq = 0.0;
        for i in 1..40 {
            if ingested == 0 {
                p.device_publish(
                    SimTime::from_secs(i * 30),
                    "probe-1",
                    &telemetry("probe-1", seq, 0.3),
                )
                .unwrap();
                seq += 1.0;
            }
            ingested += p.pump(SimTime::from_secs(i * 30 + 15));
        }
        assert!(ingested > 0, "relay must deliver through 50% uplink loss");
        let snap = p.observe();
        assert!(snap.counter("sync.transmissions").unwrap() >= snap.counter("sync.acked").unwrap());
        assert!(snap.counter("sync.acked").unwrap() >= 1);
        // The engine's backoff timing is captured per retry.
        assert!(
            snap.summary("sync.retry_interval_ms")
                .unwrap()
                .stats
                .count()
                >= snap.counter("sync.transmissions").unwrap()
        );
    }

    #[test]
    fn degraded_mode_surfaces_through_platform() {
        let mut p = Platform::builder(DeploymentConfig::FarmFog)
            .seed(3)
            .sync_base_timeout(SimDuration::from_secs(10))
            .sync_jitter(0.0)
            .build();
        p.register_device(
            SimTime::ZERO,
            "probe-1",
            DeviceKind::SoilProbe,
            "owner:test",
        )
        .unwrap();
        assert_eq!(p.degraded_mode(), DegradedMode::Connected);
        assert_eq!(p.active_fallback(), None);

        p.set_internet(false);
        p.ingest_entities(SimTime::from_secs(1), [telemetry("probe-1", 0.0, 0.25)]);
        // Each pump's refused sync round is a strike; walk into Degraded.
        for i in 1..4 {
            p.pump(SimTime::from_secs(1 + i * 60));
        }
        assert_ne!(p.degraded_mode(), DegradedMode::Connected);
        assert_eq!(p.active_fallback(), Some(Fallback::LocalControl));
        // The fog keeps serving decisions locally throughout.
        assert_eq!(p.service_point(), Some(ServedBy::Fog));

        // Heal the uplink: replication drains and the engine reconnects.
        p.set_internet(true);
        for i in 0..6 {
            p.pump(SimTime::from_secs(400 + i * 60));
        }
        assert_eq!(p.degraded_mode(), DegradedMode::Connected);
        assert_eq!(p.active_fallback(), None);
        assert_eq!(p.cloud_replica().unwrap().record_count(), 1);
    }

    #[test]
    fn builder_uplink_outages_partition_the_fault_plan() {
        let mut schedule = OutageSchedule::new();
        schedule.add_outage(SimTime::from_secs(10), SimTime::from_secs(500));
        let mut p = Platform::builder(DeploymentConfig::FarmFog)
            .seed(9)
            .sync_base_timeout(SimDuration::from_secs(30))
            .uplink_outages(&schedule)
            .build();
        p.register_device(
            SimTime::ZERO,
            "probe-1",
            DeviceKind::SoilProbe,
            "owner:test",
        )
        .unwrap();
        p.ingest_entities(SimTime::from_secs(1), [telemetry("probe-1", 0.0, 0.3)]);
        // Inside the outage window nothing replicates.
        for i in 1..5 {
            p.pump(SimTime::from_secs(i * 60));
        }
        assert_eq!(p.cloud_replica().unwrap().record_count(), 0);
        assert!(p.net.observe().counter("net.fault.partitioned").unwrap() > 0);
        // After the window the retry engine recovers on its own.
        for i in 0..8 {
            p.pump(SimTime::from_secs(520 + i * 60));
        }
        assert_eq!(p.cloud_replica().unwrap().record_count(), 1);
        assert_eq!(p.degraded_mode(), DegradedMode::Connected);
    }

    #[test]
    fn ingest_entities_batch_matches_frame_loop() {
        // Same updates applied through the batch path and the per-frame
        // path must leave identical context + history state behind.
        let mut batch_p = fog_platform();
        let mut loop_p = fog_platform();
        let updates: Vec<Entity> = (0..5)
            .map(|i| telemetry("probe-1", i as f64, 0.2 + 0.01 * i as f64))
            .collect();

        let applied = batch_p.ingest_entities(SimTime::from_secs(1), updates.clone());
        assert_eq!(applied, 5);
        for u in updates {
            loop_p.ingest_entities(SimTime::from_secs(1), std::iter::once(u));
        }

        let id = "urn:swamp:device:probe-1".into();
        assert_eq!(
            batch_p
                .context
                .entity(&id)
                .unwrap()
                .to_json()
                .to_compact_string(),
            loop_p
                .context
                .entity(&id)
                .unwrap()
                .to_json()
                .to_compact_string()
        );
        assert_eq!(
            batch_p.history.range(
                "urn:swamp:device:probe-1",
                "moisture_vwc",
                SimTime::ZERO,
                SimTime::from_secs(10),
            ),
            loop_p.history.range(
                "urn:swamp:device:probe-1",
                "moisture_vwc",
                SimTime::ZERO,
                SimTime::from_secs(10),
            )
        );
        assert_eq!(
            batch_p.observe().counter("ingest.accepted").unwrap(),
            loop_p.observe().counter("ingest.accepted").unwrap()
        );
    }

    #[test]
    fn builder_reports_seed_and_config() {
        let p = Platform::builder(DeploymentConfig::FarmFog)
            .seed(42)
            .build();
        assert_eq!(p.config(), DeploymentConfig::FarmFog);
        assert_eq!(p.seed(), 42);
    }

    #[test]
    fn authorized_read_enforces_ownership() {
        let mut p = fog_platform();
        // Put an entity in context directly.
        p.context
            .upsert(SimTime::ZERO, telemetry("probe-1", 0.0, 0.2));
        p.idm.register_user("owner", "pw", &["owner:test"]);
        p.idm.register_user("stranger", "pw", &[]);
        let (owner_token, _) = p.idm.password_grant(SimTime::ZERO, "owner", "pw").unwrap();
        let (stranger_token, _) = p
            .idm
            .password_grant(SimTime::ZERO, "stranger", "pw")
            .unwrap();

        let e = p
            .authorized_read(SimTime::ZERO, &owner_token, "urn:swamp:device:probe-1")
            .unwrap();
        assert_eq!(e.number("moisture_vwc"), Some(0.2));
        assert!(p
            .authorized_read(SimTime::ZERO, &stranger_token, "urn:swamp:device:probe-1")
            .is_err());
        // Bad token.
        let forged = Token::from_raw_for_tests("junk");
        assert!(matches!(
            p.authorized_read(SimTime::ZERO, &forged, "urn:swamp:device:probe-1"),
            Err(Some(AuthError::InvalidToken))
        ));
    }

    #[test]
    fn command_authorization() {
        let mut p = fog_platform();
        p.idm.register_user("owner", "pw", &["owner:test"]);
        let (token, _) = p.idm.password_grant(SimTime::ZERO, "owner", "pw").unwrap();
        let d = p
            .authorize_command(SimTime::ZERO, &token, "probe-1")
            .unwrap();
        assert!(d.is_permit());
        let d = p
            .authorize_command(SimTime::ZERO, &token, "other-device")
            .unwrap();
        assert!(!d.is_permit());
    }
}
