//! The workspace-wide error type.
//!
//! Every fallible platform operation surfaces one of a small set of typed
//! errors — ingestion ([`IngestError`]), networking
//! ([`swamp_net::network::SendError`]), fog synchronization
//! ([`swamp_fog::sync::SyncError`]), registry bookkeeping
//! ([`RegistryError`]) — and [`Error`] unifies them for callers that cross
//! layers (hand-written in the `thiserror` style; the offline build
//! carries no proc-macro dependencies). The platform's API contract is
//! *non-panicking*: failure is a value, enforced by a clippy gate in
//! `ci.sh` (`-D clippy::unwrap_used -D clippy::panic` on the `core` and
//! `fog` lib targets).

use swamp_fog::sync::SyncError;
use swamp_net::network::SendError;

use crate::platform::IngestError;
use crate::registry::RegistryError;

/// Any error the assembled platform can raise.
#[derive(Clone, Debug, PartialEq)]
pub enum Error {
    /// A telemetry frame was rejected by secure ingestion.
    Ingest(IngestError),
    /// The network refused a transmission synchronously.
    Send(SendError),
    /// The fog↔cloud sync engine refused an operation.
    Sync(SyncError),
    /// Device registry bookkeeping failed.
    Registry(RegistryError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Ingest(e) => write!(f, "ingest: {e}"),
            Error::Send(e) => write!(f, "network: {e}"),
            Error::Sync(e) => write!(f, "sync: {e}"),
            Error::Registry(e) => write!(f, "registry: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Ingest(e) => Some(e),
            Error::Send(e) => Some(e),
            Error::Sync(e) => Some(e),
            Error::Registry(e) => Some(e),
        }
    }
}

impl From<IngestError> for Error {
    fn from(e: IngestError) -> Self {
        Error::Ingest(e)
    }
}

impl From<SendError> for Error {
    fn from(e: SendError) -> Self {
        Error::Send(e)
    }
}

impl From<SyncError> for Error {
    fn from(e: SyncError) -> Self {
        Error::Sync(e)
    }
}

impl From<RegistryError> for Error {
    fn from(e: RegistryError) -> Self {
        Error::Registry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = IngestError::Replay("probe-1".into()).into();
        assert!(e.to_string().contains("replayed"));
        let e: Error = SendError::Denied.into();
        assert!(e.to_string().contains("denied"));
        let e: Error = SyncError::BufferFull { capacity: 3 }.into();
        assert!(e.to_string().contains("capacity 3"));
        let e: Error = RegistryError::Unknown("x".into()).into();
        assert!(e.to_string().contains("unknown device"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error as _;
        let e: Error = SendError::Denied.into();
        assert!(e.source().is_some());
    }
}
