//! Differential proof that segment compaction is observationally free at
//! platform scope (ISSUE 9 tentpole): for the same seeded workload —
//! out-of-order `observedAt` samples included, with a mid-run retention
//! pass whose cutoff lands *inside* frozen segments — every read through
//! the typed query surface must serialize byte-identically across
//! compaction cadences {never, every round, every 64 appends} and shard
//! counts {1, 3, 8}.
//!
//! "Never" runs the flat pre-segment layout (threshold `None`, no
//! `compact_history` calls), so it doubles as the behavioral baseline
//! from before the columnar read path landed. `SHARD_DIFF_SEED`
//! overrides the default seed — ci.sh runs the suite twice (42, 1337),
//! making the equivalence a property of the seed family.

use swamp_codec::ngsi::{Attribute, Entity};
use swamp_core::query::QueryRequest;
use swamp_pilots::driver::run_rounds;
use swamp_pilots::experiments::scale::e14_builder;
use swamp_shard::ShardedPlatform;
use swamp_sim::{SimDuration, SimRng, SimTime};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const ROUNDS: u64 = 8;
const BATCHES_PER_ROUND: u64 = 20;
const DEVICES: usize = 30;
/// Retention pass fires after this round; the cutoff falls mid-round-2,
/// inside the first frozen segment of every deep series.
const PRUNE_AFTER_ROUND: u64 = 5;

/// The seed under test: `SHARD_DIFF_SEED` if set (ci.sh sets 42 and 1337),
/// else 42.
fn diff_seed() -> u64 {
    match std::env::var("SHARD_DIFF_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("SHARD_DIFF_SEED must be a u64, got {s:?}")),
        Err(_) => 42,
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Cadence {
    /// Flat layout: threshold `None`, never compacts.
    Never,
    /// Threshold `None`, but `compact_history()` freezes every tail at
    /// the end of every round.
    EveryRound,
    /// Auto-freeze: tails freeze as they reach 64 samples.
    Every64,
}

/// Drives the seeded workload at one (cadence, shards) cell and returns
/// `(fingerprint, frozen_segments_at_end)`. The fingerprint is the
/// concatenated compact-JSON serialization of a fixed battery of query
/// responses — dump, range, aggregate, downsample, extremes, last — with
/// windows chosen to straddle segment boundaries.
fn run_cell(seed: u64, shards: usize, cadence: Cadence) -> (String, usize) {
    let mut builder = e14_builder(seed, shards);
    if cadence == Cadence::Every64 {
        builder = builder.history_segment_threshold(Some(64));
    }
    let mut sp = ShardedPlatform::build(&builder);
    let mut rng = SimRng::seed_from(seed).split("compaction-diff");
    run_rounds(
        &mut sp,
        SimTime::from_secs(60),
        SimDuration::from_secs(60),
        SimDuration::ZERO,
        ROUNDS,
        |sp, _round, t| {
            // Each round every device reports BATCHES_PER_ROUND flow
            // samples (deep series → multiple frozen segments) plus one
            // in-order moisture sample. ~20% of flow samples carry an
            // out-of-order `observedAt` up to three rounds in the past —
            // far enough behind the frozen watermark to force thaws.
            for k in 0..BATCHES_PER_ROUND {
                let batch: Vec<Entity> = (0..DEVICES)
                    .map(|i| {
                        let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                        let in_order = t.as_millis() + k * 250;
                        let at = if rng.chance(0.2) {
                            in_order.saturating_sub(rng.below(3) * 60_000 + 500)
                        } else {
                            in_order
                        };
                        e.set_attribute(
                            "water_flow",
                            Attribute::new(1.0 + rng.uniform_f64()).observed_at(at),
                        );
                        if k == 0 {
                            e.set("moisture_vwc", 0.15 + rng.uniform_f64() * 0.2);
                        }
                        e
                    })
                    .collect();
                sp.ingest_entities(t, batch);
            }
        },
        |sp, round, t| {
            if cadence == Cadence::EveryRound {
                sp.compact_history();
            }
            if round == PRUNE_AFTER_ROUND {
                // Retention: cut mid-way through round 2's samples, deep
                // inside the oldest frozen segments.
                let cutoff = SimTime::from_secs(60) + SimDuration::from_millis(2 * 60_000 + 2_500);
                assert!(cutoff < t, "cutoff must land in already-frozen data");
                for i in 0..sp.shard_count() {
                    sp.shard_mut(i)
                        .expect("index < shard_count")
                        .history
                        .prune_before(cutoff);
                }
            }
        },
    );
    let probe = "urn:swamp:device:probe-3";
    let mid = SimTime::from_secs(60) + SimDuration::from_secs(3 * 60 + 7);
    let battery = [
        QueryRequest::SeriesDump,
        QueryRequest::Range {
            entity: probe.to_owned(),
            attr: "water_flow".to_owned(),
            from: SimTime::ZERO,
            to: SimTime::MAX,
        },
        QueryRequest::Range {
            entity: probe.to_owned(),
            attr: "water_flow".to_owned(),
            from: mid,
            to: mid + SimDuration::from_secs(95),
        },
        QueryRequest::Aggregate {
            entity: probe.to_owned(),
            attr: "water_flow".to_owned(),
            from: mid,
            to: mid + SimDuration::from_secs(150),
        },
        QueryRequest::Downsample {
            entity: probe.to_owned(),
            attr: "water_flow".to_owned(),
            from: SimTime::from_secs(60),
            to: SimTime::from_secs(60) + SimDuration::from_secs(ROUNDS * 60),
            bucket: SimDuration::from_secs(30),
        },
        // Wide envelope: summary-served on segmented layouts, a full
        // sample walk on the flat baseline — the two fold paths must
        // agree byte-for-byte (count/min/max compose exactly).
        QueryRequest::Extremes {
            entity: probe.to_owned(),
            attr: "water_flow".to_owned(),
            from: SimTime::ZERO,
            to: SimTime::MAX,
        },
        // Windowed envelope straddling segment boundaries: partial
        // segments decode, interior segments answer from summaries.
        QueryRequest::Extremes {
            entity: probe.to_owned(),
            attr: "water_flow".to_owned(),
            from: mid,
            to: mid + SimDuration::from_secs(150),
        },
        QueryRequest::Last {
            entity: probe.to_owned(),
            attr: "moisture_vwc".to_owned(),
        },
    ];
    let mut doc = String::new();
    for req in &battery {
        doc.push_str(&sp.query(req).to_json().to_compact_string());
        doc.push('\n');
    }
    let segments = sp.shards().map(|p| p.history.segment_count()).sum();
    (doc, segments)
}

#[test]
fn compaction_cadence_and_shard_count_are_observationally_free() {
    let seed = diff_seed();
    let (baseline, flat_segments) = run_cell(seed, 1, Cadence::Never);
    assert_eq!(
        flat_segments, 0,
        "the never cadence must exercise the flat layout"
    );
    assert!(
        baseline.contains("water_flow"),
        "the battery must actually read data back"
    );
    for shards in SHARD_COUNTS {
        for cadence in [Cadence::Never, Cadence::EveryRound, Cadence::Every64] {
            let (doc, segments) = run_cell(seed, shards, cadence);
            assert_eq!(
                doc, baseline,
                "seed {seed}: query battery diverged at {shards} shards / {cadence:?}"
            );
            if cadence != Cadence::Never {
                assert!(
                    segments > 0,
                    "seed {seed}: {shards} shards / {cadence:?} froze no segments — \
                     the differential would be vacuous"
                );
            }
        }
    }
}
