//! Differential determinism harness for the sharded scale-out tier
//! (ISSUE 5 tentpole proof, extended by ISSUE 7 with the parallel
//! scheduler): an N-shard platform must be an implementation detail —
//! and so must the number of worker threads driving it. For the same
//! seeded workload at shards ∈ {1, 3, 8} × workers ∈ {1, 2, 8} we
//! require:
//!
//! 1. identical merged history contents,
//! 2. identical cloud-applied record sets (key, timestamp, payload),
//! 3. identical summed `ingest.*` / `sync.*` / `cloud.*` counters,
//!
//! and, independently, that two runs of the same seed are byte-identical
//! down to the labelled observability export — serial and parallel
//! schedules included.
//!
//! The workload runs on the E14 lossless configuration (datacenter
//! uplink, retry timeout above the ack round trip), so replication
//! counters are workload-determined: any divergence is a routing or
//! merge bug, never channel noise. `SHARD_DIFF_SEED` overrides the
//! default seed — ci.sh runs the suite twice with different values, so
//! the equivalence is checked as a property of the seed family, not one
//! lucky constant.

use std::collections::BTreeMap;

use swamp_codec::ngsi::Entity;
use swamp_obs::ObsReport;
use swamp_pilots::driver::{run_rounds, run_until};
use swamp_pilots::experiments::scale::{e14_builder, e14_run_cell, RunFingerprint};
use swamp_shard::ShardedPlatform;
use swamp_sim::{SimDuration, SimRng, SimTime};

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The seed under test: `SHARD_DIFF_SEED` if set (ci.sh sets 42 and 1337),
/// else 42.
fn diff_seed() -> u64 {
    match std::env::var("SHARD_DIFF_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("SHARD_DIFF_SEED must be a u64, got {s:?}")),
        Err(_) => 42,
    }
}

#[test]
fn n_shard_equals_single_shard_at_every_worker_count() {
    let seed = diff_seed();
    let devices = 300;
    let rounds = 6;
    let (baseline, base_sp) = e14_run_cell(seed, 1, devices, rounds, 1);
    // The workload must actually exercise the pipeline.
    assert_eq!(
        baseline.records.len(),
        devices * rounds,
        "baseline run must fully replicate"
    );
    assert!(!baseline.history.is_empty());
    assert!(baseline.counters.contains_key("ingest.accepted"));
    assert_eq!(base_sp.shard_count(), 1);

    for shards in SHARD_COUNTS {
        for workers in WORKER_COUNTS {
            let (fp, sp) = e14_run_cell(seed, shards, devices, rounds, workers);
            assert_eq!(sp.shard_count(), shards);
            assert_eq!(
                fp.history, baseline.history,
                "seed {seed}: merged history diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(
                fp.records, baseline.records,
                "seed {seed}: cloud-applied record set diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(
                fp.counters, baseline.counters,
                "seed {seed}: summed ingest./sync./cloud. counters diverged at {shards} shards / {workers} workers"
            );
        }
    }
}

#[test]
fn cloud_dedup_is_workload_determined() {
    // On the lossless differential configuration nothing is ever lost or
    // retransmitted, so the dedup stats are fully determined by the
    // workload — identical at every shard count, with zero duplicates.
    let seed = diff_seed();
    let devices = 120;
    let rounds = 4;
    let mut stats: Vec<(usize, BTreeMap<String, u64>)> = Vec::new();
    for shards in SHARD_COUNTS {
        let (fp, _) = e14_run_cell(seed, shards, devices, rounds, 1);
        let dedup: BTreeMap<String, u64> = fp
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("cloud.") || name.starts_with("sync."))
            .map(|(name, v)| (name.clone(), *v))
            .collect();
        stats.push((shards, dedup));
    }
    // Each update is applied once by its shard's cloud replica and once
    // by the cross-shard aggregate store, and the merged snapshot sums
    // both tiers' `cloud.accepted`.
    let expected = 2 * (devices * rounds) as u64;
    for (shards, dedup) in &stats {
        assert_eq!(
            dedup.get("cloud.accepted"),
            Some(&expected),
            "{shards} shards: every update applied exactly once per tier"
        );
        assert_eq!(
            dedup.get("cloud.duplicates").copied().unwrap_or(0),
            0,
            "{shards} shards: lossless run must see no duplicates"
        );
        assert_eq!(
            dedup.get("sync.retransmissions").copied().unwrap_or(0),
            0,
            "{shards} shards: lossless run must not retransmit"
        );
        assert_eq!(
            dedup, &stats[0].1,
            "{shards} shards: dedup stats diverged from 1-shard baseline"
        );
    }
}

/// Replays the full labelled-export path for one seed and returns the
/// byte-exact observability document, driving the deployment through the
/// shared driver on `workers` threads.
fn labelled_export(seed: u64, workers: usize) -> String {
    let mut sp = ShardedPlatform::build(&e14_builder(seed, 3));
    sp.set_workers(workers);
    let mut rng = SimRng::seed_from(seed).split("diff-export");
    run_rounds(
        &mut sp,
        SimTime::from_secs(60),
        SimDuration::from_secs(60),
        SimDuration::ZERO,
        5,
        |sp, round, t| {
            let batch: Vec<Entity> = (0..64)
                .map(|i| {
                    let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                    e.set("moisture_vwc", rng.uniform_f64());
                    e.set("seq", round as f64);
                    e
                })
                .collect();
            sp.ingest_entities(t, batch);
        },
        |_, _, _| {},
    );
    let (now, _) = run_until(
        &mut sp,
        SimTime::from_secs(5 * 60),
        SimDuration::from_secs(60),
        20,
        |_| false,
    );
    sp.flush_aggregation(now);
    ObsReport::array_to_json_string(&sp.observe_labelled("diff"))
}

#[test]
fn same_seed_runs_are_byte_identical_serial_and_parallel() {
    let seed = diff_seed();
    let first = labelled_export(seed, 1);
    for workers in WORKER_COUNTS {
        let replay = labelled_export(seed, workers);
        assert_eq!(
            first, replay,
            "seed {seed}: {workers}-worker run must export byte-identical labelled obs"
        );
    }
    // And the export is non-trivial: one report per shard plus the merged
    // roll-up.
    assert_eq!(first.matches("\"label\"").count(), 4);
    // Different seeds must not collapse onto the same export (guards
    // against the export accidentally ignoring the run).
    assert_ne!(first, labelled_export(seed ^ 0x5eed, 1));
}

#[test]
fn run_fingerprints_are_reproducible() {
    let seed = diff_seed();
    let (a, _) = e14_run_cell(seed, 8, 150, 3, 1);
    let (b, _) = e14_run_cell(seed, 8, 150, 3, 8);
    let same: (RunFingerprint, RunFingerprint) = (a, b);
    assert_eq!(
        same.0, same.1,
        "seed {seed}: fingerprint must be a pure function of (seed, config), not the schedule"
    );
}
