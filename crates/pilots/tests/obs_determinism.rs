//! Byte-level determinism of the exported observability reports: two
//! fresh seed-42 runs of E11 and E13 must serialize to identical JSON.
//!
//! This is the regression gate for the obs subsystem's core promise —
//! ticks, counters, histograms, span trees and event logs are all pure
//! functions of the seed, with no wall-clock or hash-order leakage. E11
//! is driven with a constant fake clock so the (machine-dependent) bench
//! timing cannot leak into the comparison; everything the reports contain
//! is sim-time driven anyway.

use swamp_obs::ObsReport;
use swamp_pilots::experiments::{e11_broker_scale_observed, e13_resilience_observed};

/// Fake clock for the E11 harness: every round "takes" 1 ms.
fn fake_clock(run: &mut dyn FnMut()) -> f64 {
    run();
    1e-3
}

#[test]
fn e13_obs_reports_are_byte_identical_across_runs() {
    let (_, first) = e13_resilience_observed(42);
    let (_, second) = e13_resilience_observed(42);
    let a = ObsReport::array_to_json_string(&first);
    let b = ObsReport::array_to_json_string(&second);
    assert_eq!(a, b, "seed-42 E13 obs export must be byte-stable");
    // Sanity: the export actually contains the sweep, not an empty shell.
    assert_eq!(first.len(), 8, "2 deployments x 4 loss rates");
    assert!(a.contains("\"label\": \"e13/farm-fog/loss10\""));
    assert!(a.contains("sync.retransmissions"));
    assert!(a.contains("net.partition.start"));
}

#[test]
fn e11_obs_reports_are_byte_identical_across_runs() {
    // Small fleet: this gate is about byte stability, not scale.
    let (_, first) = e11_broker_scale_observed(&[20], fake_clock);
    let (_, second) = e11_broker_scale_observed(&[20], fake_clock);
    let a = ObsReport::array_to_json_string(&first);
    let b = ObsReport::array_to_json_string(&second);
    assert_eq!(a, b, "E11 obs export must be byte-stable");
    assert_eq!(first.len(), 2, "one report per deployment config");
    assert!(a.contains("\"label\": \"e11/cloud_only/20\""));
    assert!(a.contains("platform.pump"));
}

#[test]
fn e13_rows_match_their_obs_reports() {
    // The table values and the exported snapshots must be two views of
    // the same run, not two runs.
    let (result, reports) = e13_resilience_observed(42);
    for (row, report) in result.rows.iter().zip(&reports) {
        assert_eq!(report.seed, 42);
        assert_eq!(
            row.offered,
            report.snapshot.counter("sync.enqueued").unwrap(),
            "row/report divergence for {}",
            report.label
        );
        assert_eq!(
            row.retransmissions,
            report.snapshot.counter("sync.retransmissions").unwrap()
        );
    }
}
