//! Golden labeled-trace regression suite (ISSUE 10 satellite): the
//! committed fixture pins, per pilot at the canonical E16 scale and
//! seed 42,
//!
//! 1. the workload stream digest (the labeled trace itself),
//! 2. the per-label record counts and planted attack-device set,
//! 3. the exact alert set the detector raises at the shipped
//!    thresholds (device, flag kind, flag time), and
//! 4. the resulting precision/recall cells (tp / fp / fn).
//!
//! Any change to the workload compiler, the baseline scoring math, or
//! the shipped margins shows up here as a diff against
//! `fixtures/e16_golden.json` — deliberate retunes regenerate the
//! fixture with `GOLDEN_REGEN=1 cargo test -p swamp-pilots --test
//! golden_traces` and re-commit it; accidental drift fails CI.

use std::path::PathBuf;

use swamp_codec::json::Json;
use swamp_pilots::experiments::{e16_run_pilot, e16_spec, E16_DEVICES, E16_ROUNDS};
use swamp_workload::Pilot;

const GOLDEN_SEED: u64 = 42;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("e16_golden.json")
}

/// Renders the full golden document from the live compiler + detector.
fn golden_doc() -> Json {
    let rows: Vec<Json> = Pilot::all()
        .into_iter()
        .map(|pilot| {
            let spec = e16_spec(pilot, GOLDEN_SEED, E16_DEVICES, E16_ROUNDS);
            let w = spec.compile();
            let labels: Vec<Json> = w
                .label_counts
                .iter()
                .map(|(label, n)| {
                    Json::object([
                        ("label", Json::String(label.as_str().into())),
                        ("records", Json::Number(*n as f64)),
                    ])
                })
                .collect();
            let attack_devices: Vec<Json> = w
                .attack_devices
                .iter()
                .map(|d| Json::String(d.clone()))
                .collect();
            let (row, platform) = e16_run_pilot(GOLDEN_SEED, pilot, E16_DEVICES, E16_ROUNDS);
            let alerts: Vec<Json> = platform
                .behavior
                .flags()
                .iter()
                .map(|(device, flag)| {
                    Json::object([
                        ("device", Json::String(device.clone())),
                        ("kind", Json::String(flag.kind.as_str().into())),
                        // Flag times are u64 milliseconds; stored as a
                        // string so the fixture survives f64 rounding.
                        ("at_ms", Json::String(flag.at.as_millis().to_string())),
                    ])
                })
                .collect();
            Json::object([
                ("pilot", Json::String(pilot.name().into())),
                ("devices", Json::Number(E16_DEVICES as f64)),
                ("rounds", Json::Number(E16_ROUNDS as f64)),
                // 64-bit FNV digest as hex: exact, f64-proof.
                (
                    "stream_digest",
                    Json::String(format!("{:016x}", w.stream_digest())),
                ),
                ("generated", Json::Number(w.generated as f64)),
                ("label_counts", Json::Array(labels)),
                ("attack_devices", Json::Array(attack_devices)),
                ("alerts", Json::Array(alerts)),
                ("tp", Json::Number(row.tp as f64)),
                ("fp", Json::Number(row.fp as f64)),
                ("fn", Json::Number(row.fn_missed as f64)),
            ])
        })
        .collect();
    Json::object([
        ("fixture", Json::String("e16_golden_labeled_traces".into())),
        ("seed", Json::Number(GOLDEN_SEED as f64)),
        ("pilots", Json::Array(rows)),
    ])
}

#[test]
fn golden_labeled_traces_match_the_committed_fixture() {
    let doc = golden_doc();
    let path = fixture_path();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, doc.to_pretty_string() + "\n").unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    let committed = Json::parse(&committed).expect("fixture must parse as JSON");
    assert_eq!(
        committed, doc,
        "live workload/detector output diverged from the committed golden \
         fixture; if the retune is deliberate, regenerate with GOLDEN_REGEN=1 \
         and review the diff"
    );
}

#[test]
fn golden_fixture_meets_the_shipped_quality_floors() {
    // The fixture is not just pinned — it must pin a *good* detector.
    // Same floors bench_e16 --check enforces, applied to the committed
    // document so a bad regeneration cannot slip through.
    let committed = std::fs::read_to_string(fixture_path())
        .expect("golden fixture missing; regenerate with GOLDEN_REGEN=1");
    let doc = Json::parse(&committed).expect("fixture must parse");
    let pilots = match doc.get("pilots") {
        Some(Json::Array(rows)) => rows,
        other => panic!("fixture pilots array missing: {other:?}"),
    };
    assert_eq!(pilots.len(), 4, "one row per pilot");
    for row in pilots {
        let name = match row.get("pilot") {
            Some(Json::String(s)) => s.clone(),
            other => panic!("pilot name missing: {other:?}"),
        };
        let num = |key: &str| -> f64 {
            match row.get(key) {
                Some(Json::Number(n)) => *n,
                other => panic!("{name}: {key} missing: {other:?}"),
            }
        };
        let (tp, fp, fn_missed) = (num("tp"), num("fp"), num("fn"));
        let truth = tp + fn_missed;
        assert!(truth > 0.0, "{name}: no planted attack devices");
        let recall = tp / truth;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 1.0 };
        assert!(
            recall >= 0.75,
            "{name}: pinned recall {recall:.2} below floor"
        );
        assert!(
            precision >= 0.9,
            "{name}: pinned precision {precision:.2} below floor"
        );
    }
}
