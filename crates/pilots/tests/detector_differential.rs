//! Differential determinism harness for the behavioral-baseline
//! detector (ISSUE 10 tentpole proof): the verdicts the `BehaviorBank`
//! reaches must be an implementation-independent function of the
//! workload — not of the shard layout or the worker schedule driving
//! it. For the E16 labeled attack workload at shards ∈ {1, 3, 8} ×
//! workers ∈ {1, 2, 8} we require:
//!
//! 1. an identical flag set (device, flag kind, flag time) across the
//!    whole grid,
//! 2. identical summed `security.baseline.*` counters,
//! 3. an identical precision/recall scorecard row,
//!
//! all compared against the 1-shard / 1-worker baseline. This holds
//! because the bank's state is strictly per-device, shards partition
//! devices disjointly, and per-device arrival order is preserved by
//! the routing tier — any divergence is a routing or merge bug.
//!
//! `SHARD_DIFF_SEED` overrides the default seed, same convention as
//! `shard_differential.rs`: ci.sh runs the suite at 42 and 1337 so the
//! equivalence is checked as a property of the seed family.

use swamp_pilots::experiments::e16_shard_run;
use swamp_workload::Pilot;

const SHARD_COUNTS: [usize; 3] = [1, 3, 8];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];
const DEVICES: usize = 16;
const ROUNDS: usize = 240;

/// The seed under test: `SHARD_DIFF_SEED` if set (ci.sh sets 42 and
/// 1337), else 42.
fn diff_seed() -> u64 {
    match std::env::var("SHARD_DIFF_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|_| panic!("SHARD_DIFF_SEED must be a u64, got {s:?}")),
        Err(_) => 42,
    }
}

#[test]
fn detector_verdicts_are_invariant_across_shards_and_workers() {
    let seed = diff_seed();
    let (baseline, base_row) = e16_shard_run(seed, Pilot::Cbec, DEVICES, ROUNDS, 1, 1);
    // The run must actually exercise the detector: attacks planted,
    // flags raised, counters moving.
    assert!(base_row.truth > 0, "no planted attack devices");
    assert!(
        !baseline.0.is_empty(),
        "seed {seed}: baseline run raised no flags — the differential would be vacuous"
    );
    assert!(
        baseline
            .1
            .get("security.baseline.scored")
            .copied()
            .unwrap_or(0)
            > 0,
        "baseline counters never scored a window"
    );

    for shards in SHARD_COUNTS {
        for workers in WORKER_COUNTS {
            let (fp, row) = e16_shard_run(seed, Pilot::Cbec, DEVICES, ROUNDS, shards, workers);
            assert_eq!(
                fp.0, baseline.0,
                "seed {seed}: flag set diverged at {shards} shards / {workers} workers"
            );
            assert_eq!(
                fp.1, baseline.1,
                "seed {seed}: summed security.baseline.* counters diverged at \
                 {shards} shards / {workers} workers"
            );
            assert_eq!(
                (row.tp, row.fp, row.fn_missed, row.flagged),
                (
                    base_row.tp,
                    base_row.fp,
                    base_row.fn_missed,
                    base_row.flagged
                ),
                "seed {seed}: precision/recall scorecard diverged at {shards} shards / \
                 {workers} workers"
            );
        }
    }
}

#[test]
fn sharded_detector_matches_the_single_platform_run() {
    // The sharded deployment is an implementation detail all the way
    // up: the 3-shard grid cell must reproduce the plain single
    // `Platform` scorecard used by E16 itself.
    let seed = diff_seed();
    let (row, _) = swamp_pilots::experiments::e16_run_pilot(seed, Pilot::Cbec, DEVICES, ROUNDS);
    let (_, sharded) = e16_shard_run(seed, Pilot::Cbec, DEVICES, ROUNDS, 3, 2);
    assert_eq!(
        (row.tp, row.fp, row.fn_missed, row.flagged, row.records),
        (
            sharded.tp,
            sharded.fp,
            sharded.fn_missed,
            sharded.flagged,
            sharded.records
        ),
        "seed {seed}: sharded run must reproduce the single-platform scorecard"
    );
}

#[test]
fn different_seeds_reach_different_flag_times() {
    // Guards against the fingerprint accidentally ignoring the run:
    // two seeds must not collapse onto the same flag set.
    let seed = diff_seed();
    let (a, _) = e16_shard_run(seed, Pilot::Cbec, DEVICES, ROUNDS, 1, 1);
    let (b, _) = e16_shard_run(seed ^ 0x5eed, Pilot::Cbec, DEVICES, ROUNDS, 1, 1);
    assert_ne!(
        a, b,
        "distinct seeds produced identical detector fingerprints"
    );
}
