//! The four SWAMP pilots, each a customization of the same platform — the
//! paper's central claim: "The same underlying SWAMP platform can be
//! customized to different pilots considering different countries, climate,
//! soil, and crops."

use swamp_agro::crop::Crop;
use swamp_agro::weather::ClimateProfile;
use swamp_irrigation::schedule::{
    DeficitMaintain, EtReplacement, FixedCalendar, IrrigationPolicy, ThresholdRefill,
};
use swamp_irrigation::source::WaterSource;
use swamp_sim::SimRng;

use crate::season::{heterogeneous_zones, run_season, SeasonConfig, SeasonOutcome};

/// Which pilot a configuration belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PilotSite {
    /// Consorzio di Bonifica Emilia Centrale, Bologna, Italy — goal:
    /// optimize water distribution to the farms.
    Cbec,
    /// Intercrop Iberica, Cartagena, Spain — goal: rational use of
    /// expensive (desalinated) water.
    Intercrop,
    /// Guaspari Winery, Espírito Santo do Pinhal, Brazil — goal: wine
    /// quality via regulated deficit irrigation.
    Guaspari,
    /// Rio das Pedras Farm, MATOPIBA, Brazil — goal: VRI on center pivots
    /// for soybean; save water and pumping energy.
    Matopiba,
}

impl PilotSite {
    /// All four pilots.
    pub fn all() -> [PilotSite; 4] {
        [
            PilotSite::Cbec,
            PilotSite::Intercrop,
            PilotSite::Guaspari,
            PilotSite::Matopiba,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PilotSite::Cbec => "CBEC (Bologna, IT)",
            PilotSite::Intercrop => "Intercrop (Cartagena, ES)",
            PilotSite::Guaspari => "Guaspari (Pinhal, BR)",
            PilotSite::Matopiba => "MATOPIBA (Barreiras, BR)",
        }
    }

    /// The pilot's climate.
    pub fn climate(&self) -> ClimateProfile {
        match self {
            PilotSite::Cbec => ClimateProfile::bologna(),
            PilotSite::Intercrop => ClimateProfile::cartagena(),
            PilotSite::Guaspari => ClimateProfile::pinhal(),
            PilotSite::Matopiba => ClimateProfile::barreiras(),
        }
    }

    /// The pilot's primary crop.
    pub fn crop(&self) -> Crop {
        match self {
            PilotSite::Cbec => Crop::tomato(),
            PilotSite::Intercrop => Crop::melon(),
            PilotSite::Guaspari => Crop::wine_grape(),
            PilotSite::Matopiba => Crop::soybean(),
        }
    }

    /// The pilot's water source.
    pub fn source(&self) -> WaterSource {
        match self {
            PilotSite::Cbec => WaterSource::cbec_canal(),
            PilotSite::Intercrop => WaterSource::intercrop_desal(),
            PilotSite::Guaspari => WaterSource::cbec_canal(),
            PilotSite::Matopiba => WaterSource::matopiba_well(),
        }
    }

    /// Sowing day of year (season placement per pilot agronomy).
    pub fn sowing_doy(&self) -> u32 {
        match self {
            PilotSite::Cbec => 105,     // mid-April transplanting
            PilotSite::Intercrop => 75, // spring planting
            PilotSite::Guaspari => 30,  // pruning places ripening in the dry winter
            PilotSite::Matopiba => 121, // dry-season sowing under pivots
        }
    }

    /// The pilot's smart irrigation policy.
    pub fn smart_policy(&self) -> Box<dyn Fn() -> Box<dyn IrrigationPolicy>> {
        match self {
            // CBEC optimizes distribution; at field level a RAW threshold.
            PilotSite::Cbec => Box::new(|| Box::new(ThresholdRefill::new(1.0))),
            // Expensive desalinated water: slightly early trigger, exact refills.
            PilotSite::Intercrop => Box::new(|| Box::new(ThresholdRefill::new(0.9))),
            // Regulated deficit for quality.
            PilotSite::Guaspari => Box::new(|| Box::new(DeficitMaintain::new(0.65))),
            // VRI pivot replaces crop ET.
            PilotSite::Matopiba => Box::new(|| Box::new(EtReplacement::new(1.0))),
        }
    }

    /// The conventional baseline practice the pilot improves on.
    pub fn baseline_policy(&self) -> Box<dyn Fn() -> Box<dyn IrrigationPolicy>> {
        match self {
            PilotSite::Cbec => Box::new(|| Box::new(FixedCalendar::new(4, 30.0))),
            PilotSite::Intercrop => Box::new(|| Box::new(FixedCalendar::new(2, 15.0))),
            PilotSite::Guaspari => Box::new(|| Box::new(FixedCalendar::new(5, 20.0))),
            PilotSite::Matopiba => Box::new(|| Box::new(FixedCalendar::new(3, 25.0))),
        }
    }

    /// Zones and per-zone area used in the pilot scenario.
    pub fn field_layout(&self) -> (usize, f64) {
        match self {
            PilotSite::Cbec => (6, 4.0),
            PilotSite::Intercrop => (4, 1.5),
            PilotSite::Guaspari => (8, 1.0),
            PilotSite::Matopiba => (16, 6.25), // 100-ha pivot circle
        }
    }
}

/// Result of running a pilot: smart policy vs baseline practice.
#[derive(Clone, Debug)]
pub struct PilotReport {
    /// Which pilot ran.
    pub site: PilotSite,
    /// Outcome under the smart (SWAMP) policy.
    pub smart: SeasonOutcome,
    /// Outcome under conventional practice.
    pub baseline: SeasonOutcome,
}

impl PilotReport {
    /// Water saved by the smart policy, fraction of baseline.
    pub fn water_saving(&self) -> f64 {
        if self.baseline.account.volume_m3 <= 0.0 {
            return 0.0;
        }
        1.0 - self.smart.account.volume_m3 / self.baseline.account.volume_m3
    }

    /// Energy saved by the smart policy, fraction of baseline.
    pub fn energy_saving(&self) -> f64 {
        if self.baseline.account.energy_kwh <= 0.0 {
            return 0.0;
        }
        1.0 - self.smart.account.energy_kwh / self.baseline.account.energy_kwh
    }

    /// Cost saved, fraction of baseline.
    pub fn cost_saving(&self) -> f64 {
        if self.baseline.account.cost_eur <= 0.0 {
            return 0.0;
        }
        1.0 - self.smart.account.cost_eur / self.baseline.account.cost_eur
    }

    /// Yield difference (smart − baseline), in relative-yield points.
    pub fn yield_delta(&self) -> f64 {
        self.smart.mean_yield() - self.baseline.mean_yield()
    }
}

/// Runs a pilot's smart-vs-baseline comparison.
pub fn run_pilot(site: PilotSite, seed: u64) -> PilotReport {
    let (zones, area) = site.field_layout();
    let mk = |policy: Box<dyn Fn() -> Box<dyn IrrigationPolicy>>| {
        let mut rng = SimRng::seed_from(seed ^ 0xf1e1d);
        SeasonConfig {
            climate: site.climate(),
            crop: site.crop(),
            zones: heterogeneous_zones(zones, area, &mut rng),
            sowing_doy: site.sowing_doy(),
            source: site.source(),
            policy,
        }
    };
    PilotReport {
        site,
        smart: run_season(&mk(site.smart_policy()), seed),
        baseline: run_season(&mk(site.baseline_policy()), seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pilots_run_and_save_water() {
        for site in PilotSite::all() {
            let report = run_pilot(site, 42);
            assert!(
                report.water_saving() > 0.0,
                "{}: smart should beat {:.0} m3 baseline, used {:.0} m3",
                site.name(),
                report.baseline.account.volume_m3,
                report.smart.account.volume_m3
            );
            assert!(
                report.yield_delta() > -0.10,
                "{}: smart must not sacrifice much yield ({:+.2})",
                site.name(),
                report.yield_delta()
            );
        }
    }

    #[test]
    fn matopiba_saves_energy() {
        let report = run_pilot(PilotSite::Matopiba, 7);
        assert!(
            report.energy_saving() > 0.1,
            "energy saving {:.2}",
            report.energy_saving()
        );
        assert!(report.smart.account.energy_kwh > 0.0);
    }

    #[test]
    fn intercrop_cost_dominated_by_desalination() {
        let report = run_pilot(PilotSite::Intercrop, 7);
        // Desalinated water ⇒ cost per m³ ~0.85: cost tracks volume.
        let expected = report.smart.account.volume_m3 * 0.85;
        assert!((report.smart.account.cost_eur - expected).abs() < 1e-6);
        assert!(report.cost_saving() > 0.0);
    }

    #[test]
    fn guaspari_quality_improves() {
        let report = run_pilot(PilotSite::Guaspari, 7);
        assert!(
            report.smart.wine_quality() > report.baseline.wine_quality(),
            "deficit quality {:.0} vs baseline {:.0}",
            report.smart.wine_quality(),
            report.baseline.wine_quality()
        );
    }

    #[test]
    fn pilot_metadata_is_consistent() {
        for site in PilotSite::all() {
            assert!(!site.name().is_empty());
            let (zones, area) = site.field_layout();
            assert!(zones > 0 && area > 0.0);
            assert!((1..=366).contains(&site.sowing_doy()));
        }
        assert_eq!(PilotSite::all().len(), 4);
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_pilot(PilotSite::Cbec, 9);
        let b = run_pilot(PilotSite::Cbec, 9);
        assert_eq!(a.smart.account.volume_m3, b.smart.account.volume_m3);
        assert_eq!(a.baseline.mean_yield(), b.baseline.mean_yield());
    }
}
