//! The shared experiment driver: one round loop for every harness.
//!
//! E11, E13 and E14 all used to hand-roll the same skeleton — a
//! fixed-cadence round loop (publish, pump at an offset into the round,
//! sample) followed by a drain loop (pump until a condition settles).
//! Both skeletons now run against [`swamp_core::Drive`], so the same
//! driver advances a plain [`swamp_core::Platform`] or a
//! [`swamp_shard::ShardedPlatform`] worker pool without the harness
//! caring which; hooks receive the *concrete* deployment type, so a
//! harness can still reach inherent methods (`degraded_mode`,
//! `aggregate_store`, …) that the trait does not carry.
//!
//! Timing contract (load-bearing — EXPERIMENTS.md is bit-reproducible
//! against it): round `r` starts at `start + r·step`; the `before` hook
//! fires at the round start `t_r`; the deployment is pumped once at
//! `t_r + pump_offset`; the `after` hook fires last, also handed `t_r`.

use swamp_core::Drive;
use swamp_sim::{SimDuration, SimTime};

/// Drives `rounds` fixed-cadence rounds and returns the total number of
/// entity updates ingested.
///
/// Per round `r` (time `t_r = start + r·step`):
/// 1. `before(d, r, t_r)` — offer this round's traffic;
/// 2. `d.round(t_r + pump_offset)` — one platform round;
/// 3. `after(d, r, t_r)` — sample state for the row under construction.
pub fn run_rounds<D: Drive + ?Sized>(
    d: &mut D,
    start: SimTime,
    step: SimDuration,
    pump_offset: SimDuration,
    rounds: u64,
    mut before: impl FnMut(&mut D, u64, SimTime),
    mut after: impl FnMut(&mut D, u64, SimTime),
) -> usize {
    let mut ingested = 0usize;
    for r in 0..rounds {
        let t = start + step * r;
        before(d, r, t);
        ingested += d.round(t + pump_offset);
        after(d, r, t);
    }
    ingested
}

/// Drains a deployment: repeatedly checks `done`, and while it holds
/// false, advances the clock one `step` and pumps. Returns the clock at
/// the last pump (or `start` if `done` held immediately) and the number
/// of pump rounds spent, so callers can settle follow-up work
/// (`flush_aggregation`) at the right instant.
///
/// The check-then-pump order means a drain that is already complete
/// costs zero rounds, and `max_rounds` bounds the loop for workloads
/// that can never settle (the caller decides whether that is a failure).
pub fn run_until<D: Drive + ?Sized>(
    d: &mut D,
    start: SimTime,
    step: SimDuration,
    max_rounds: u64,
    mut done: impl FnMut(&D) -> bool,
) -> (SimTime, u64) {
    let mut now = start;
    let mut pumps = 0u64;
    for _ in 0..max_rounds {
        if done(d) {
            break;
        }
        now = now.saturating_add(step);
        d.round(now);
        pumps += 1;
    }
    (now, pumps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_codec::ngsi::Entity;
    use swamp_core::platform::{DeploymentConfig, Platform};

    fn update(i: usize, seq: f64) -> Entity {
        let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
        e.set("moisture_vwc", 0.25);
        e.set("seq", seq);
        e
    }

    #[test]
    fn rounds_follow_the_timing_contract() {
        let mut p = Platform::builder(DeploymentConfig::FarmFog).seed(1).build();
        let mut before_times = Vec::new();
        let mut after_rounds = Vec::new();
        let ingested = run_rounds(
            &mut p,
            SimTime::from_secs(10),
            SimDuration::from_secs(60),
            SimDuration::from_secs(59),
            3,
            |d, r, t| {
                before_times.push(t.as_millis());
                d.ingest(t, vec![update(0, r as f64)]);
            },
            |_, r, _| after_rounds.push(r),
        );
        assert_eq!(before_times, vec![10_000, 70_000, 130_000]);
        assert_eq!(after_rounds, vec![0, 1, 2]);
        assert_eq!(ingested, 0, "direct ingest bypasses the round counter");
    }

    #[test]
    fn drain_is_check_first_and_bounded() {
        let mut p = Platform::builder(DeploymentConfig::FarmFog).seed(1).build();
        // Already-satisfied drains cost zero pumps and leave the clock at
        // `start`.
        let (now, pumps) = run_until(
            &mut p,
            SimTime::from_secs(5),
            SimDuration::from_secs(60),
            100,
            |_| true,
        );
        assert_eq!((now.as_millis(), pumps), (5_000, 0));
        // An unsatisfiable drain stops at the bound.
        let (now, pumps) = run_until(
            &mut p,
            SimTime::from_secs(5),
            SimDuration::from_secs(60),
            4,
            |_| false,
        );
        assert_eq!(pumps, 4);
        assert_eq!(now.as_millis(), 5_000 + 4 * 60_000);
    }
}
