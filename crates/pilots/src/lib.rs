//! # swamp-pilots — the four SWAMP pilots and the experiment harness
//!
//! The paper's §I describes four pilots on one platform; this crate runs
//! them and quantifies every claim:
//!
//! - [`season`] — the growing-season loop (weather → ET → decision → soil →
//!   yield → water/energy/cost accounting) over heterogeneous zones.
//! - [`pilots`] — CBEC, Intercrop, Guaspari, MATOPIBA configurations with
//!   smart-vs-baseline comparisons.
//! - [`driver`] — the shared [`swamp_core::Drive`]-based round/drain loops
//!   every harness runs on, deployment-shape agnostic.
//! - [`experiments`] — E1–E14, one per claim/challenge in the paper (see
//!   EXPERIMENTS.md), all seeded and reproducible.
//! - [`report`] — the result tables the harness prints.
//!
//! ## Example: run the MATOPIBA pilot
//!
//! ```
//! use swamp_pilots::pilots::{run_pilot, PilotSite};
//! let report = run_pilot(PilotSite::Matopiba, 42);
//! assert!(report.water_saving() > 0.0);
//! ```

pub mod driver;
pub mod experiments;
pub mod pilots;
pub mod report;
pub mod season;

pub use pilots::{run_pilot, PilotReport, PilotSite};
pub use report::Report;
pub use season::{run_season, SeasonConfig, SeasonOutcome};
