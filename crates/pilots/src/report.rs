//! Result tables for the experiment harness.
//!
//! Every experiment returns a [`Report`]: a titled table whose `Display`
//! output is exactly what EXPERIMENTS.md records, so paper-style results
//! can be regenerated with one binary run.

use std::fmt;

/// A titled result table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Report {
    /// Experiment id and title (e.g. `"E1: water & energy"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|h| (*h).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// A cell by row/column for assertions in tests.
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        // Column widths.
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:width$} |", width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{:-<width$}|", "", width = w + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with the given precision (helper for experiment rows).
pub fn fmt_f(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

/// Formats a fraction as a percentage string.
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut r = Report::new("E0: demo", &["policy", "water_m3"]);
        r.push_row(vec!["smart".into(), fmt_f(1234.5, 1)]);
        r.push_row(vec!["fixed".into(), fmt_f(2000.0, 1)]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.cell(0, 1), "1234.5");
        let text = r.to_string();
        assert!(text.contains("## E0: demo"));
        assert!(text.contains("| smart"));
        assert!(text.contains("|--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut r = Report::new("t", &["a", "b"]);
        r.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.256), "25.6%");
    }
}
