//! The season runner: one growing season, day by day, over a field of
//! heterogeneous management zones.
//!
//! This is the physical loop every pilot and experiment drives: weather →
//! ET₀ → crop demand → irrigation decision (per policy, per zone) → soil
//! water balance → growth accounting → water/energy/cost accounting.

use swamp_agro::crop::Crop;
use swamp_agro::growth::{wine_quality_score, CropState};
use swamp_agro::soil::{SoilProperties, SoilWaterBalance, WaterFlux};
use swamp_agro::weather::{ClimateProfile, WeatherGenerator};
use swamp_irrigation::schedule::{IrrigationPolicy, ZoneView};
use swamp_irrigation::source::{depth_to_volume_m3, WaterAccount, WaterSource};
use swamp_sim::SimRng;

/// Static description of one management zone.
#[derive(Clone, Debug)]
pub struct ZoneSpec {
    /// Soil hydraulic properties.
    pub soil: SoilProperties,
    /// Zone area, ha.
    pub area_ha: f64,
    /// Multiplier on crop water demand for this zone (topography, canopy
    /// density and microclimate make parts of a field thirstier — the
    /// spatial variability VRI exploits).
    pub etc_factor: f64,
}

/// Generates `zones` heterogeneous zone specs: a gradient from sandy to
/// clayey soils, which is exactly the heterogeneity VRI exploits.
pub fn heterogeneous_zones(zones: usize, area_ha_each: f64, rng: &mut SimRng) -> Vec<ZoneSpec> {
    assert!(zones > 0);
    (0..zones)
        .map(|i| {
            let f = i as f64 / (zones.max(2) - 1) as f64; // 0 = sandy, 1 = clay
            let fc = 0.16 + f * 0.16 + rng.uniform_range(-0.01, 0.01);
            let wp = 0.06 + f * 0.10 + rng.uniform_range(-0.005, 0.005);
            let sat = fc + 0.18;
            ZoneSpec {
                soil: SoilProperties::new(fc, wp, sat, 0.05),
                area_ha: area_ha_each,
                etc_factor: 0.8 + 0.4 * f + rng.uniform_range(-0.03, 0.03),
            }
        })
        .collect()
}

/// Configuration of one season run.
pub struct SeasonConfig {
    /// Climate the weather generator samples.
    pub climate: ClimateProfile,
    /// Crop grown in every zone.
    pub crop: Crop,
    /// Management zones.
    pub zones: Vec<ZoneSpec>,
    /// Sowing day of year.
    pub sowing_doy: u32,
    /// Water source billing/energy model.
    pub source: WaterSource,
    /// Irrigation policy factory (fresh policy per zone so stateful
    /// policies don't leak across zones).
    pub policy: Box<dyn Fn() -> Box<dyn IrrigationPolicy>>,
}

/// Per-zone outcome of a season.
#[derive(Clone, Debug)]
pub struct ZoneOutcome {
    /// FAO-33 relative yield, `[0,1]`.
    pub relative_yield: f64,
    /// Cumulative actual crop ET, mm.
    pub eta_mm: f64,
    /// Cumulative potential crop ET, mm.
    pub etc_mm: f64,
    /// Irrigation applied, mm.
    pub irrigation_mm: f64,
    /// Mean ripening-period stress (for quality models).
    pub ripening_stress: f64,
}

/// Whole-season outcome.
#[derive(Clone, Debug)]
pub struct SeasonOutcome {
    /// One outcome per zone.
    pub zones: Vec<ZoneOutcome>,
    /// Water/cost/energy account for the season.
    pub account: WaterAccount,
    /// Season rainfall, mm.
    pub rain_mm: f64,
    /// Days simulated.
    pub days: u32,
}

impl SeasonOutcome {
    /// Area-weighted mean relative yield.
    pub fn mean_yield(&self) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        self.zones.iter().map(|z| z.relative_yield).sum::<f64>() / self.zones.len() as f64
    }

    /// Mean irrigation depth over zones, mm.
    pub fn mean_irrigation_mm(&self) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        self.zones.iter().map(|z| z.irrigation_mm).sum::<f64>() / self.zones.len() as f64
    }

    /// Guaspari wine-quality score (mean over zones), 0–100.
    pub fn wine_quality(&self) -> f64 {
        if self.zones.is_empty() {
            return 0.0;
        }
        self.zones
            .iter()
            .map(|z| wine_quality_score(z.ripening_stress))
            .sum::<f64>()
            / self.zones.len() as f64
    }
}

/// How per-zone prescriptions are applied to the field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplicationMode {
    /// Variable rate: each zone receives exactly its prescribed depth.
    PerZone,
    /// Uniform machine: every zone receives the *maximum* prescribed depth
    /// (a non-VRI pivot must over-water the rest to satisfy the neediest
    /// zone).
    UniformMax,
    /// VRI with limited resolution: zones are controlled in `k` contiguous
    /// groups; within each group every zone receives the group maximum.
    /// `Grouped(1)` ≡ `UniformMax`; `Grouped(zone count)` ≡ `PerZone`.
    Grouped(usize),
}

/// Runs one season deterministically from a seed (per-zone application).
pub fn run_season(config: &SeasonConfig, seed: u64) -> SeasonOutcome {
    run_season_mode(config, seed, ApplicationMode::PerZone)
}

/// Runs one season with an explicit application mode.
pub fn run_season_mode(config: &SeasonConfig, seed: u64, mode: ApplicationMode) -> SeasonOutcome {
    let mut rng = SimRng::seed_from(seed);
    let mut weather = WeatherGenerator::new(config.climate, rng.split("weather"));
    let season_days = config.crop.season_days();

    struct ZoneState {
        swb: SoilWaterBalance,
        crop_state: CropState,
        policy: Box<dyn IrrigationPolicy>,
        irrigation_mm: f64,
        area_ha: f64,
        etc_factor: f64,
    }
    let mut zones: Vec<ZoneState> = config
        .zones
        .iter()
        .map(|spec| ZoneState {
            swb: SoilWaterBalance::new(
                spec.soil,
                config.crop.root_depth_ini_m,
                config.crop.depletion_fraction,
            ),
            crop_state: CropState::new(config.crop.clone()),
            policy: (config.policy)(),
            irrigation_mm: 0.0,
            area_ha: spec.area_ha,
            etc_factor: spec.etc_factor,
        })
        .collect();

    let mut account = WaterAccount::new();
    let mut rain_total = 0.0;

    for das in 0..season_days {
        let doy = (config.sowing_doy + das - 1) % 365 + 1;
        let day = weather.next_day(doy);
        rain_total += day.rain_mm;
        let et0 = day.et0(config.climate.latitude_deg, config.climate.elevation_m);
        let kc = config.crop.kc(das);
        let etc = et0 * kc;
        let root_depth = config.crop.root_depth(das);

        // First pass: every zone's prescription.
        let mut depths: Vec<f64> = zones
            .iter_mut()
            .map(|z| {
                z.swb.set_root_depth(root_depth);
                let view = ZoneView::from_truth(&z.swb, etc * z.etc_factor, das);
                z.policy.decide(&view)
            })
            .collect();
        // Limited-resolution machines must satisfy the neediest zone of
        // each control group everywhere in that group.
        let groups = match mode {
            ApplicationMode::PerZone => depths.len(),
            ApplicationMode::UniformMax => 1,
            ApplicationMode::Grouped(k) => k.clamp(1, depths.len()),
        };
        if groups < depths.len() {
            let group_size = depths.len().div_ceil(groups);
            for chunk in depths.chunks_mut(group_size) {
                let max = chunk.iter().copied().fold(0.0, f64::max);
                chunk.iter_mut().for_each(|d| *d = max);
            }
        }
        for (z, depth) in zones.iter_mut().zip(depths) {
            if depth > 0.0 {
                z.irrigation_mm += depth;
                account.record(&config.source, depth_to_volume_m3(depth, z.area_ha));
            }
            let etc_zone = etc * z.etc_factor;
            let outcome = z.swb.step(WaterFlux {
                rain_mm: day.rain_mm,
                irrigation_mm: depth,
                etc_mm: etc_zone,
            });
            z.crop_state
                .advance_day(etc_zone, outcome.eta_mm, outcome.ks);
        }
    }

    SeasonOutcome {
        zones: zones
            .into_iter()
            .map(|z| {
                let (eta, etc) = z.crop_state.et_totals();
                ZoneOutcome {
                    relative_yield: z.crop_state.relative_yield(),
                    eta_mm: eta,
                    etc_mm: etc,
                    irrigation_mm: z.irrigation_mm,
                    ripening_stress: z.crop_state.mean_ripening_stress(),
                }
            })
            .collect(),
        account,
        rain_mm: rain_total,
        days: season_days,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_irrigation::schedule::{EtReplacement, FixedCalendar, Rainfed, ThresholdRefill};

    fn config(policy: Box<dyn Fn() -> Box<dyn IrrigationPolicy>>) -> SeasonConfig {
        let mut rng = SimRng::seed_from(1);
        SeasonConfig {
            climate: ClimateProfile::barreiras(),
            crop: Crop::soybean(),
            zones: heterogeneous_zones(8, 6.25, &mut rng),
            sowing_doy: 121, // dry-season sowing (the MATOPIBA pilot's point)
            source: WaterSource::matopiba_well(),
            policy,
        }
    }

    #[test]
    fn irrigated_beats_rainfed_in_dry_season() {
        let rainfed = run_season(&config(Box::new(|| Box::new(Rainfed))), 7);
        let smart = run_season(&config(Box::new(|| Box::new(ThresholdRefill::new(1.0)))), 7);
        assert!(
            smart.mean_yield() > rainfed.mean_yield() + 0.2,
            "smart {:.2} vs rainfed {:.2}",
            smart.mean_yield(),
            rainfed.mean_yield()
        );
        assert!(smart.account.volume_m3 > 0.0);
        assert_eq!(rainfed.account.volume_m3, 0.0);
    }

    #[test]
    fn smart_uses_less_water_than_fixed_for_similar_yield() {
        let fixed = run_season(
            &config(Box::new(|| Box::new(FixedCalendar::new(3, 25.0)))),
            7,
        );
        let smart = run_season(&config(Box::new(|| Box::new(ThresholdRefill::new(1.0)))), 7);
        assert!(
            smart.account.volume_m3 < fixed.account.volume_m3,
            "smart {:.0} m3 vs fixed {:.0} m3",
            smart.account.volume_m3,
            fixed.account.volume_m3
        );
        assert!(
            smart.mean_yield() > fixed.mean_yield() - 0.05,
            "smart {:.2} vs fixed {:.2}",
            smart.mean_yield(),
            fixed.mean_yield()
        );
        // Energy tracks water through the pumping model.
        assert!(smart.account.energy_kwh < fixed.account.energy_kwh);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_season(&config(Box::new(|| Box::new(EtReplacement::new(1.0)))), 3);
        let b = run_season(&config(Box::new(|| Box::new(EtReplacement::new(1.0)))), 3);
        assert_eq!(a.account.volume_m3, b.account.volume_m3);
        assert_eq!(a.mean_yield(), b.mean_yield());
        let c = run_season(&config(Box::new(|| Box::new(EtReplacement::new(1.0)))), 4);
        assert_ne!(a.account.volume_m3, c.account.volume_m3);
    }

    #[test]
    fn outcome_invariants() {
        let o = run_season(&config(Box::new(|| Box::new(ThresholdRefill::new(1.0)))), 9);
        assert_eq!(o.zones.len(), 8);
        assert_eq!(o.days, Crop::soybean().season_days());
        for z in &o.zones {
            assert!((0.0..=1.0).contains(&z.relative_yield));
            assert!(z.eta_mm <= z.etc_mm + 1e-6);
            assert!(z.irrigation_mm >= 0.0);
            assert!((0.0..=1.0).contains(&z.ripening_stress));
        }
        assert!(o.rain_mm >= 0.0);
    }

    #[test]
    fn heterogeneous_zones_vary() {
        let mut rng = SimRng::seed_from(2);
        let zones = heterogeneous_zones(8, 5.0, &mut rng);
        let fc0 = zones[0].soil.field_capacity;
        let fc7 = zones[7].soil.field_capacity;
        assert!(fc7 > fc0 + 0.1, "gradient sandy→clay expected");
    }

    #[test]
    fn deficit_irrigation_raises_wine_quality() {
        use swamp_irrigation::schedule::DeficitMaintain;
        let mk = |policy: Box<dyn Fn() -> Box<dyn IrrigationPolicy>>| {
            let mut rng = SimRng::seed_from(3);
            SeasonConfig {
                climate: ClimateProfile::pinhal(),
                crop: Crop::wine_grape(),
                zones: heterogeneous_zones(4, 2.0, &mut rng),
                sowing_doy: 30, // pruned so ripening falls in the dry winter
                source: WaterSource::cbec_canal(),
                policy,
            }
        };
        let full = run_season(&mk(Box::new(|| Box::new(EtReplacement::new(1.0)))), 5);
        let deficit_run = run_season(&mk(Box::new(|| Box::new(DeficitMaintain::new(0.65)))), 5);
        assert!(
            deficit_run.wine_quality() > full.wine_quality(),
            "deficit quality {:.0} vs full {:.0}",
            deficit_run.wine_quality(),
            full.wine_quality()
        );
        // And uses less water.
        assert!(deficit_run.account.volume_m3 < full.account.volume_m3);
    }
}
