//! The experiment harness: one function per experiment in EXPERIMENTS.md.
//!
//! The paper (a two-page overview) publishes no tables or figures; these
//! experiments quantify each of its claims and challenges instead — see
//! DESIGN.md §3 for the mapping. Every experiment takes an explicit seed
//! and is bit-reproducible.

pub mod attacks;
pub mod baseline;
pub mod platform;
pub mod read_path;
pub mod resilience;
pub mod scale;
pub mod water;

pub use attacks::{e12_behavior, e2_dos, e3_tamper, e4_sybil};
pub use baseline::{
    e16_baseline_detection, e16_builder, e16_config, e16_overhead_observed, e16_run_pilot,
    e16_shard_run, e16_spec, DetectorFingerprint, E16OverheadResult, E16OverheadRow, E16Result,
    E16Row, E16_DEVICES, E16_ROUNDS,
};
pub use platform::{
    e11_broker_scale, e11_broker_scale_observed, e11_platform_scale, e5_fog_availability,
    e6_partial_view, e7_auth, e8_crypto, e9_ledger, BrokerScaleRow, E11BrokerScaleResult,
};
pub use read_path::{e15_read_path_observed, E15Result, E15Row};
pub use resilience::{e13_resilience, e13_resilience_observed, E13Result, E13Row};
pub use scale::{
    e14_shard_scale, e14_shard_throughput_observed, E14Result, E14Row, E14ThroughputResult,
    ShardScaleRow,
};
pub use water::{e10_distribution, e1_water_energy};

use crate::report::Report;

/// Runs every experiment and returns all reports in id order — the
/// generator behind EXPERIMENTS.md and the `experiments` binary.
///
/// E11c ([`e11_broker_scale`]) and E14b
/// ([`e14_shard_throughput_observed`]) are deliberately not included: they
/// measure wall-clock throughput, so their numbers are not bit-reproducible
/// per seed. The `bench_e11` and `bench_e14` binaries run them and emit
/// `BENCH_e11.json` / `BENCH_e14.json`. E15 ([`e15_read_path_observed`])
/// is wall-clock for the same reason — `bench_e15` emits
/// `BENCH_e15.json`, and its deterministic half lives in the compaction
/// differential suite. E16's wall-clock half
/// ([`e16_overhead_observed`]) likewise lives in `bench_e16`; its
/// detection-quality half ([`e16_baseline_detection`]) is deterministic
/// and included here.
pub fn run_all(seed: u64) -> Vec<Report> {
    let e1 = e1_water_energy(seed);
    let e2 = e2_dos(seed);
    let e3 = e3_tamper(seed);
    let e4 = e4_sybil(seed);
    let e5 = e5_fog_availability(seed);
    let e6 = e6_partial_view(seed);
    let e7 = e7_auth(seed);
    let e8 = e8_crypto(seed);
    let e9 = e9_ledger(seed);
    let e10 = e10_distribution(seed);
    let e11 = e11_platform_scale(seed);
    let e12 = e12_behavior(seed);
    let e13 = e13_resilience(seed);
    let e14 = e14_shard_scale(seed);
    let e16 = e16_baseline_detection(seed);
    vec![
        e1.report(),
        e1.ablation_report(),
        e2.report(),
        e3.report(),
        e4.report(),
        e5.report(),
        e5.ablation_report(),
        e6.report(),
        e7.report(),
        e8.report(),
        e9.report(),
        e10.report(),
        e11.report(),
        e11.ablation_report(),
        e12.report(),
        e13.report(),
        e14.report(),
        e16.report(),
    ]
}
