//! E14 — sharded multi-farm scale-out.
//!
//! The paper runs one platform per pilot; the ROADMAP's north star demands
//! scale-out. E14 partitions the deployment into per-farm shards
//! ([`swamp_shard::ShardedPlatform`]) and asks two questions:
//!
//! 1. **Equivalence** (deterministic, in `run_all`): is sharding an
//!    implementation detail? An N-shard run must produce the same merged
//!    history, the same cloud-applied record set, the same summed
//!    `ingest.*`/`sync.*`/`cloud.*`/`security.baseline.*` counters and
//!    the same behavioral-baseline flag set as the 1-shard run of the
//!    same workload. The full differential harness lives in
//!    `crates/pilots/tests/shard_differential.rs`; the E14 table records
//!    the equivalence verdict per cell.
//! 2. **Throughput** (wall clock, `bench_e14` binary): how much faster
//!    does the fleet replicate when the quadratic ack-scan backlog of a
//!    single sync engine is divided N ways?
//!
//! The equivalence cells run a lossless datacenter uplink with a retry
//! timeout longer than the ack round trip, so every `sync.*` counter is
//! workload-determined (transmissions = enqueued, zero retransmissions,
//! zero duplicates) — any cross-shard-count difference is a real routing
//! or merge bug, never channel noise.

use std::collections::{BTreeMap, BTreeSet};

use swamp_codec::ngsi::Entity;
use swamp_core::platform::{DeploymentConfig, Platform, PlatformBuilder};
use swamp_core::query::{QueryRequest, QueryResponse};
use swamp_core::shard::route_device;
use swamp_net::link::LinkSpec;
use swamp_obs::ObsReport;
use swamp_shard::ShardedPlatform;
use swamp_sim::{SimDuration, SimRng, SimTime};

use crate::report::{fmt_f, Report};

/// Canonical deterministic fingerprint of one sharded run: everything the
/// differential property quantifies over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFingerprint {
    /// Merged history: (entity, attr) → time-sorted samples, with the
    /// value bit pattern (histories of disjoint shards merge by key).
    pub history: BTreeMap<(String, String), Vec<(u64, u64)>>,
    /// Aggregate-store record set: (key, created_at ms, payload).
    pub records: BTreeSet<(String, u64, Vec<u8>)>,
    /// Summed `ingest.*`/`sync.*`/`cloud.*`/`security.baseline.*`
    /// counters from the merged tier snapshot.
    pub counters: BTreeMap<String, u64>,
    /// Behavioral-baseline verdicts: the union of per-shard flags as
    /// (device, flag kind, flag time ms). Devices are disjoint across
    /// shards and the bank's state is per-device, so the set must not
    /// depend on the shard or worker count (E14 runs a passive bank,
    /// so here the set is empty — the phased-detector equivalence runs
    /// in `crates/pilots/tests/detector_differential.rs`).
    pub flags: BTreeSet<(String, String, u64)>,
}

/// Builds the E14 platform configuration: a farm-fog deployment on a
/// lossless datacenter uplink whose retry timeout exceeds the ack round
/// trip (pump cadence is 60 s), so replication counters are
/// workload-determined.
pub fn e14_builder(seed: u64, shards: usize) -> PlatformBuilder {
    Platform::builder(DeploymentConfig::FarmFog)
        .seed(seed)
        .shards(shards)
        .uplink_spec(LinkSpec::cloud_backbone())
        .sync_base_timeout(SimDuration::from_secs(300))
        .sync_jitter(0.0)
}

/// Drives one seeded workload — `devices` probes publishing `rounds`
/// batches of soil telemetry — through an N-shard platform on `workers`
/// worker threads, pumps until replication settles, and returns the run's
/// [`RunFingerprint`] plus the platform for further inspection. The
/// fingerprint must not depend on `workers` — that is the parallel half of
/// the differential property (`crates/pilots/tests/shard_differential.rs`
/// quantifies over worker counts {1, 2, 8}).
pub fn e14_run_cell(
    seed: u64,
    shards: usize,
    devices: usize,
    rounds: usize,
    workers: usize,
) -> (RunFingerprint, ShardedPlatform) {
    let mut sp = ShardedPlatform::build(&e14_builder(seed, shards));
    sp.set_workers(workers);
    let mut rng = SimRng::seed_from(seed).split("e14-workload");
    crate::driver::run_rounds(
        &mut sp,
        SimTime::from_secs(60),
        SimDuration::from_secs(60),
        SimDuration::ZERO,
        rounds as u64,
        |sp, round, t| {
            let batch: Vec<Entity> = (0..devices)
                .map(|i| {
                    let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                    e.set("moisture_vwc", 0.15 + rng.uniform_f64() * 0.2);
                    e.set("seq", round as f64);
                    e
                })
                .collect();
            sp.ingest_entities(t, batch);
        },
        |_, _, _| {},
    );
    // Drain the replication backlog (window-limited), then settle the
    // aggregation fabric.
    let expected = (devices * rounds) as u64;
    let last_round = SimTime::ZERO + SimDuration::from_secs(60) * rounds as u64;
    let (now, _) = crate::driver::run_until(
        &mut sp,
        last_round,
        SimDuration::from_secs(60),
        10_000,
        |sp| sp.aggregate_store().record_count() as u64 >= expected,
    );
    sp.flush_aggregation(now);
    (fingerprint(&mut sp), sp)
}

/// Extracts the deterministic fingerprint of a settled run. Takes the
/// platform mutably because the history read goes through the typed
/// query surface ([`swamp_core::drive::Drive::query`] — instrumented,
/// and the sharded implementation fans out/merges in shard-id order),
/// not the deprecated raw store accessors.
pub fn fingerprint(sp: &mut ShardedPlatform) -> RunFingerprint {
    let mut history: BTreeMap<(String, String), Vec<(u64, u64)>> = BTreeMap::new();
    if let QueryResponse::Series(entries) = sp.query(&QueryRequest::SeriesDump) {
        for entry in entries {
            // Devices are disjoint across shards, but two shards may
            // intern the same (entity, attr) only if routing broke — the
            // entry().extend merges such keys and the per-key sample
            // equality catches the breakage.
            history
                .entry((entry.entity, entry.attr))
                .or_default()
                .extend(
                    entry
                        .samples
                        .iter()
                        .map(|s| (s.at.as_millis(), s.value.to_bits())),
                );
        }
    }
    for samples in history.values_mut() {
        samples.sort_unstable();
    }
    let records: BTreeSet<(String, u64, Vec<u8>)> = sp
        .aggregate_store()
        .history()
        .iter()
        .map(|r| (r.key.clone(), r.created_at.as_millis(), r.payload.clone()))
        .collect();
    let snap = sp.observe();
    let counters: BTreeMap<String, u64> = snap
        .counters()
        .filter(|(name, _)| {
            name.starts_with("ingest.")
                || name.starts_with("sync.")
                || name.starts_with("cloud.")
                || name.starts_with("security.baseline.")
        })
        .map(|(name, v)| (name.to_owned(), v))
        .collect();
    let flags: BTreeSet<(String, String, u64)> = sp
        .shards()
        .flat_map(|p| {
            p.behavior.flags().iter().map(|(device, flag)| {
                (
                    device.clone(),
                    flag.kind.as_str().to_owned(),
                    flag.at.as_millis(),
                )
            })
        })
        .collect();
    RunFingerprint {
        history,
        records,
        counters,
        flags,
    }
}

/// One cell of the E14 equivalence table.
#[derive(Clone, Debug)]
pub struct E14Row {
    /// Shard count.
    pub shards: usize,
    /// Worker threads driving the shard set.
    pub workers: usize,
    /// Fleet size.
    pub devices: usize,
    /// Updates ingested.
    pub updates: u64,
    /// Records applied by the aggregate cloud store.
    pub agg_records: u64,
    /// Max/min devices per shard (1.0 when perfectly balanced; ∞ guarded
    /// by the balance property test, reported here for the table).
    pub balance: f64,
    /// Whether this cell's fingerprint equals the 1-shard baseline's.
    pub matches_single_shard: bool,
}

/// E14 results.
#[derive(Clone, Debug)]
pub struct E14Result {
    /// One row per shard count.
    pub rows: Vec<E14Row>,
}

impl E14Result {
    /// The equivalence table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E14: sharded scale-out — N-shard/W-worker vs serial 1-shard equivalence (lossless uplink, 60 s pumps)",
            &[
                "shards",
                "workers",
                "devices",
                "updates",
                "agg_records",
                "balance_max_min",
                "matches_1shard",
            ],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.shards.to_string(),
                row.workers.to_string(),
                row.devices.to_string(),
                row.updates.to_string(),
                row.agg_records.to_string(),
                fmt_f(row.balance, 2),
                row.matches_single_shard.to_string(),
            ]);
        }
        r
    }
}

/// Runs E14 (deterministic half): a 240-device, 5-round workload replayed
/// across shard counts {1, 4, 16} *and* worker-thread counts — the serial
/// schedule plus genuinely parallel rounds at 2 and 8 workers. Every
/// (shards, workers) fingerprint must equal the serial 1-shard baseline:
/// sharding is an implementation detail, and so is the thread count that
/// drives the shards.
pub fn e14_shard_scale(seed: u64) -> E14Result {
    let devices = 240;
    let rounds = 5;
    let (baseline, _) = e14_run_cell(seed, 1, devices, rounds, 1);
    let mut rows = Vec::new();
    for (shards, workers) in [(1usize, 1usize), (4, 1), (4, 2), (16, 1), (16, 8)] {
        let (fp, sp) = e14_run_cell(seed, shards, devices, rounds, workers);
        let mut per_shard = vec![0u64; shards];
        for i in 0..devices {
            per_shard[route_device(&format!("probe-{i}"), shards)] += 1;
        }
        let max = *per_shard.iter().max().unwrap_or(&0) as f64;
        let min = *per_shard.iter().min().unwrap_or(&0) as f64;
        rows.push(E14Row {
            shards,
            workers,
            devices,
            updates: (devices * rounds) as u64,
            agg_records: sp.aggregate_store().record_count() as u64,
            balance: if min > 0.0 { max / min } else { f64::INFINITY },
            matches_single_shard: fp == baseline,
        });
    }
    E14Result { rows }
}

/// One cell of the E14 wall-clock throughput sweep.
#[derive(Clone, Debug)]
pub struct ShardScaleRow {
    /// Shard count.
    pub shards: usize,
    /// Worker threads driving the shard set.
    pub workers: usize,
    /// Fleet size (one update per device in the timed backlog).
    pub devices: usize,
    /// Updates fully replicated to the aggregate store.
    pub updates: u64,
    /// Pump rounds needed to drain the backlog.
    pub pumps: u64,
    /// Wall-clock time for ingest + drain + aggregation.
    pub elapsed_ms: f64,
    /// Updates fully replicated per wall-clock second.
    pub throughput_per_s: f64,
}

/// E14 throughput results.
#[derive(Clone, Debug)]
pub struct E14ThroughputResult {
    /// One row per (shards, devices).
    pub rows: Vec<ShardScaleRow>,
}

impl E14ThroughputResult {
    /// The shards×workers×devices throughput table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E14b: shard scale-out throughput — time to fully replicate one update per device (wall clock)",
            &["shards", "workers", "devices", "updates", "pumps", "elapsed_ms", "updates_per_s"],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.shards.to_string(),
                row.workers.to_string(),
                row.devices.to_string(),
                row.updates.to_string(),
                row.pumps.to_string(),
                fmt_f(row.elapsed_ms, 1),
                fmt_f(row.throughput_per_s, 0),
            ]);
        }
        r
    }

    /// Throughput of the cell with the given coordinates, if present.
    pub fn throughput(&self, shards: usize, workers: usize, devices: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.shards == shards && r.workers == workers && r.devices == devices)
            .map(|r| r.throughput_per_s)
    }
}

/// Runs the E14 wall-clock sweep: for each (shards, devices) cell, one
/// update per device is ingested and the platform is pumped until every
/// record reaches the aggregate store. The timed region covers ingest,
/// replication and cross-shard aggregation. The per-shard sync buffer is
/// sized to the fleet so the drain — not the drop policy — is what gets
/// measured. With the indexed sync engine each pump does O(transmissions)
/// work, so total drain cost is linear in backlog at any shard count and
/// single-threaded round-robin sharding yields ~1× speedup (the old
/// quadratic engine's ~N× came from splitting B² into N·(B/N)²).
///
/// The caller supplies the clock: `time_cell` receives one cell's body and
/// returns the wall-clock seconds it took, and must run the body exactly
/// once — the library stays free of ambient time sources; only the
/// `bench_e14` binary (and the unit test) touch `std::time::Instant`.
pub fn e14_shard_throughput_observed(
    shard_counts: &[usize],
    worker_counts: &[usize],
    device_counts: &[usize],
    mut time_cell: impl FnMut(&mut dyn FnMut()) -> f64,
) -> (E14ThroughputResult, Vec<ObsReport>) {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &devices in device_counts {
        if devices == 0 {
            continue;
        }
        for &shards in shard_counts {
            if shards == 0 {
                continue;
            }
            for &workers in worker_counts {
                if workers == 0 || (workers > 1 && workers > shards) {
                    // More workers than shards would time idle threads.
                    continue;
                }
                let mut sp = ShardedPlatform::build(
                    &e14_builder(7, shards).sync_capacity(devices.max(100_000)),
                );
                sp.set_workers(workers);
                let mut pumps = 0u64;
                let mut replicated = 0u64;
                let secs = time_cell(&mut || {
                    let batch: Vec<Entity> = (0..devices)
                        .map(|i| {
                            let mut e =
                                Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                            e.set("moisture_vwc", 0.2 + (i % 100) as f64 * 0.001);
                            e.set("seq", 0.0);
                            e
                        })
                        .collect();
                    sp.ingest_entities(SimTime::from_secs(60), batch);
                    let (now, drained) = crate::driver::run_until(
                        &mut sp,
                        SimTime::ZERO,
                        SimDuration::from_secs(60),
                        100_000,
                        |sp| sp.aggregate_store().record_count() >= devices,
                    );
                    pumps = drained;
                    sp.flush_aggregation(now);
                    replicated = sp.aggregate_store().record_count() as u64;
                });
                rows.push(ShardScaleRow {
                    shards,
                    workers,
                    devices,
                    updates: replicated,
                    pumps,
                    elapsed_ms: secs * 1e3,
                    throughput_per_s: if secs > 0.0 {
                        replicated as f64 / secs
                    } else {
                        0.0
                    },
                });
                let label = format!("e14/{shards}sh/{workers}w/{devices}");
                reports.push(ObsReport::new(&label, 7, sp.observe()));
            }
        }
    }
    (E14ThroughputResult { rows }, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_equivalence_holds_at_test_scale() {
        let r = e14_shard_scale(42);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert!(
                row.matches_single_shard,
                "{} shards / {} workers: fingerprint diverged from serial 1-shard baseline",
                row.shards, row.workers
            );
            assert_eq!(row.agg_records, row.updates);
            assert!(row.balance.is_finite());
        }
        assert!(
            r.rows.iter().any(|row| row.workers > 1),
            "the table must cover genuinely parallel schedules"
        );
        let table = r.report().to_string();
        assert!(table.contains("matches_1shard"));
        assert!(table.contains("workers"));
    }

    #[test]
    fn e14_throughput_cells_complete() {
        // Tiny cells keep the test fast; bench_e14 runs the real sweep.
        let (r, reports) = e14_shard_throughput_observed(&[1, 4], &[1, 2], &[64], |run| {
            let start = std::time::Instant::now();
            run();
            start.elapsed().as_secs_f64()
        });
        // (1 shard, 2 workers) is skipped: workers > shards.
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            assert_eq!(
                row.updates, 64,
                "{} shards / {} workers must fully replicate",
                row.shards, row.workers
            );
            assert!(row.throughput_per_s > 0.0);
        }
        assert_eq!(reports.len(), 3);
        assert!(r.throughput(1, 1, 64).is_some());
        assert!(r.throughput(4, 2, 64).is_some());
        assert!(r.throughput(1, 2, 64).is_none(), "idle-worker cell skipped");
        assert!(r.throughput(2, 1, 64).is_none());
    }
}
