//! E2 — DoS impact and SDN mitigation; E3 — sensor-tamper detection sweep;
//! E4 — Sybil NDVI attack and spatial defense; E12 — behavioral baseline vs
//! point detectors on actuator takeover.

use swamp_net::link::LinkSpec;
use swamp_net::message::Message;
use swamp_net::network::Network;
use swamp_net::sdn::{FlowAction, FlowMatch};
use swamp_security::attacks::{DosFlooder, SensorTamper, SybilSwarm, TamperMode};
use swamp_security::behavior::{
    actuator_takeover_sequence, normal_irrigation_cycle, BehaviorDetector, MarkovBaseline,
};
use swamp_security::detect::{spatial_outliers, RateGuard, ZScoreDetector};
use swamp_sim::{SimDuration, SimRng, SimTime};

use crate::report::{fmt_f, fmt_pct, Report};

/// E2 results: telemetry delivery under DoS.
#[derive(Clone, Debug)]
pub struct E2Result {
    /// (attack rate msg/s, delivery ratio unmitigated, delivery ratio with
    /// rate-guard + SDN deny, rounds until mitigation engaged).
    pub rows: Vec<(f64, f64, f64, usize)>,
}

impl E2Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E2: DoS flood on the broker — telemetry delivery ratio (20 probes, 10 min)",
            &[
                "attack_msg_per_s",
                "unmitigated",
                "sdn_mitigated",
                "detect_rounds",
            ],
        );
        for (rate, unmit, mit, rounds) in &self.rows {
            r.push_row(vec![
                fmt_f(*rate, 0),
                fmt_pct(*unmit),
                fmt_pct(*mit),
                rounds.to_string(),
            ]);
        }
        r
    }
}

/// One E2 scenario: 20 probes publish once per 10 s to a broker over a
/// shared constrained uplink while an attacker floods it.
fn dos_scenario(seed: u64, attack_rate: f64, mitigate: bool) -> (f64, usize) {
    let mut net = Network::new(seed);
    net.add_node("broker");
    net.add_node("attacker");
    // Constrained shared uplink into the broker: the flood competes with
    // telemetry for the loss-free but narrow pipe (we model contention as
    // load-dependent loss via a rate-limit rule representing capacity).
    net.connect(
        "attacker",
        "broker",
        LinkSpec::new(
            SimDuration::from_millis(30),
            SimDuration::ZERO,
            0.0,
            1_000_000,
        ),
    );
    let probes: Vec<String> = (0..20).map(|i| format!("probe-{i}")).collect();
    for p in &probes {
        net.add_node(p.as_str());
        net.connect(
            p.as_str(),
            "broker",
            LinkSpec::new(
                SimDuration::from_millis(30),
                SimDuration::ZERO,
                0.0,
                1_000_000,
            ),
        );
    }
    // Broker ingress capacity: 50 msg/s total, modeled as an SDN rate limit
    // on everything into the broker (token bucket = queue head capacity).
    net.flow_table_mut().install(
        0,
        FlowMatch {
            dst: Some("broker".into()),
            ..FlowMatch::default()
        },
        FlowAction::RateLimit {
            per_sec: 50.0,
            burst: 50.0,
        },
    );

    let mut dos = DosFlooder::new("attacker", "broker", attack_rate, 64);
    let mut guard = RateGuard::new(SimDuration::from_secs(10), 5.0, 20);
    let mut mitigated_at_round = usize::MAX;

    let rounds = 60; // 10 minutes in 10-second rounds
    let attack_start = 3; // the fleet norm is established first
    let mut telemetry_sent = 0u64;
    let mut telemetry_delivered = 0u64;
    for round in 0..rounds {
        let t0 = SimTime::from_secs(round as u64 * 10);
        let t1 = SimTime::from_secs(round as u64 * 10 + 10);
        // Attacker floods the whole round (after the quiet lead-in).
        if round >= attack_start {
            dos.flood_window(&mut net, t0, t1);
        }
        // Each probe publishes once.
        for (i, p) in probes.iter().enumerate() {
            let at = t0 + SimDuration::from_millis(100 + i as u64 * 37);
            let _ = net.send(
                at,
                p.as_str(),
                "broker",
                Message::new(format!("telemetry/{p}"), vec![0u8; 80]),
            );
            telemetry_sent += 1;
        }
        net.advance_to(t1);
        // Drain the broker, counting delivered telemetry; the security
        // layer watches per-source rates and (when mitigating) installs a
        // targeted deny against the flooding source.
        let mut flagged = false;
        for d in net.drain(&"broker".into()) {
            if d.message.topic.starts_with("telemetry/") {
                telemetry_delivered += 1;
            }
            if mitigate
                && mitigated_at_round == usize::MAX
                && guard.observe(d.src.as_str(), d.delivered_at).is_anomalous()
                && d.src.as_str() == "attacker"
            {
                flagged = true;
            }
        }
        if flagged {
            net.flow_table_mut()
                .install(100, FlowMatch::from_src("attacker"), FlowAction::Deny);
            mitigated_at_round = round;
        }
    }
    net.advance_to(SimTime::from_secs(rounds as u64 * 10 + 10));
    for d in net.drain(&"broker".into()) {
        if d.message.topic.starts_with("telemetry/") {
            telemetry_delivered += 1;
        }
    }
    let detect_rounds = if mitigated_at_round == usize::MAX {
        usize::MAX
    } else {
        mitigated_at_round - attack_start + 1
    };
    (
        telemetry_delivered as f64 / telemetry_sent as f64,
        detect_rounds,
    )
}

/// Runs E2 across attack rates.
pub fn e2_dos(seed: u64) -> E2Result {
    let mut rows = Vec::new();
    for rate in [0.0, 20.0, 50.0, 100.0, 200.0] {
        let rate_eff = if rate == 0.0 { 0.0001 } else { rate };
        let (unmit, _) = dos_scenario(seed, rate_eff, false);
        let (mit, rounds) = dos_scenario(seed, rate_eff, true);
        rows.push((
            rate,
            unmit,
            mit,
            if rounds == usize::MAX { 0 } else { rounds },
        ));
    }
    E2Result { rows }
}

/// E3 results: tamper detection sweep.
#[derive(Clone, Debug)]
pub struct E3Result {
    /// (tamper offset in VWC units, true-positive rate, false-positive
    /// rate, days until detection or 0).
    pub rows: Vec<(f64, f64, f64, f64)>,
}

impl E3Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E3: soil-probe tamper detection (z-score detector, 40 runs per offset)",
            &["offset_vwc", "tpr", "fpr", "mean_days_to_detect"],
        );
        for (off, tpr, fpr, days) in &self.rows {
            r.push_row(vec![
                fmt_f(*off, 3),
                fmt_pct(*tpr),
                fmt_pct(*fpr),
                fmt_f(*days, 1),
            ]);
        }
        r
    }
}

/// Runs E3: a probe samples a slow soil drydown twice daily; on day 30 an
/// attacker starts offsetting its values. Detection = any alert in the
/// attack period; false positive = alert in a clean run.
pub fn e3_tamper(seed: u64) -> E3Result {
    let offsets = [0.02, 0.05, 0.10, 0.20];
    let runs = 40;
    let mut rows = Vec::new();

    // False-positive rate from clean runs (shared across offsets).
    let mut clean_alerts = 0;
    for run in 0..runs {
        let mut rng = SimRng::seed_from(seed ^ (run as u64) << 8);
        let mut det = ZScoreDetector::for_slow_signal();
        for step in 0..120 {
            let truth = soil_truth(step);
            let v = truth + rng.normal_with(0.0, 0.008);
            if det.observe(v).is_anomalous() {
                clean_alerts += 1;
                break;
            }
        }
    }
    let fpr = clean_alerts as f64 / runs as f64;

    for &offset in &offsets {
        let mut detections = 0;
        let mut detect_days = 0.0;
        for run in 0..runs {
            let mut rng = SimRng::seed_from(seed ^ (run as u64) << 8);
            let mut det = ZScoreDetector::for_slow_signal();
            let mut tamper = SensorTamper::new(TamperMode::Offset(offset));
            for step in 0..120 {
                let truth = soil_truth(step);
                let mut v = truth + rng.normal_with(0.0, 0.008);
                if step >= 60 {
                    v = tamper.distort(v, SimTime::from_days(step as u64 / 2));
                }
                if det.observe(v).is_anomalous() && step >= 60 {
                    detections += 1;
                    detect_days += (step - 60) as f64 / 2.0;
                    break;
                }
            }
        }
        let tpr = detections as f64 / runs as f64;
        let mean_days = if detections > 0 {
            detect_days / detections as f64
        } else {
            0.0
        };
        rows.push((offset, tpr, fpr, mean_days));
    }
    E3Result { rows }
}

/// A plausible slow soil-moisture cycle: a gentle 30-day wetting/drying
/// oscillation (drip irrigation holding the zone near target). Smooth by
/// design — abrupt refill steps belong to the event-sequence detector
/// (E12), not the point detector under test here.
fn soil_truth(step: usize) -> f64 {
    0.27 + 0.015 * (2.0 * std::f64::consts::PI * step as f64 / 120.0).sin()
}

/// E4 results: Sybil swarm vs spatial consistency.
#[derive(Clone, Debug)]
pub struct E4Result {
    /// (sybil count vs 12 honest drones, fraction of sybils flagged, NDVI
    /// bias before filtering, NDVI bias after filtering).
    pub rows: Vec<(usize, f64, f64, f64)>,
}

impl E4Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E4: Sybil NDVI swarm vs spatial-consistency filter (12 honest sensors)",
            &[
                "sybils",
                "sybils_flagged",
                "ndvi_bias_raw",
                "ndvi_bias_filtered",
            ],
        );
        for (n, flagged, raw, filtered) in &self.rows {
            r.push_row(vec![
                n.to_string(),
                fmt_pct(*flagged),
                fmt_f(*raw, 3),
                fmt_f(*filtered, 3),
            ]);
        }
        r
    }
}

/// Runs E4: honest sensors report NDVI ≈ 0.55 (stressed crop); the swarm
/// claims 0.85 (healthy) to mask the stress it induced.
pub fn e4_sybil(seed: u64) -> E4Result {
    let honest_count = 12;
    let true_ndvi = 0.55;
    let fake_ndvi = 0.85;
    let mut rows = Vec::new();
    for sybils in [0usize, 2, 4, 8, 16, 24] {
        let mut rng = SimRng::seed_from(seed ^ sybils as u64);
        let mut values: Vec<(usize, f64)> = (0..honest_count)
            .map(|i| (i, true_ndvi + rng.normal_with(0.0, 0.02)))
            .collect();
        let swarm = SybilSwarm::new("drone", sybils, fake_ndvi, 0.02);
        for (j, (_, v)) in swarm.fabricate_reports(&mut rng).iter().enumerate() {
            values.push((100 + j, *v));
        }

        let raw_mean: f64 = values.iter().map(|(_, v)| v).sum::<f64>() / values.len() as f64;
        let outliers = spatial_outliers(&values, 0.15);
        let flagged_sybils = outliers.iter().filter(|&&i| i >= 100).count() as f64;
        let filtered: Vec<f64> = values
            .iter()
            .filter(|(i, _)| !outliers.contains(i))
            .map(|(_, v)| *v)
            .collect();
        let filtered_mean: f64 = if filtered.is_empty() {
            raw_mean
        } else {
            filtered.iter().sum::<f64>() / filtered.len() as f64
        };
        rows.push((
            sybils,
            if sybils == 0 {
                1.0
            } else {
                flagged_sybils / sybils as f64
            },
            (raw_mean - true_ndvi).abs(),
            (filtered_mean - true_ndvi).abs(),
        ));
    }
    E4Result { rows }
}

/// E12 results: behavioral baseline vs point detector on takeovers.
#[derive(Clone, Debug)]
pub struct E12Result {
    /// Behavioral detector: (takeover detection rate, false-alarm rate).
    pub behavioral: (f64, f64),
    /// Point (rate-based) detector on the same windows.
    pub point: (f64, f64),
}

impl E12Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E12: actuator-takeover detection — behavioral sequence baseline vs point detector",
            &["detector", "takeover_detection", "false_alarms"],
        );
        r.push_row(vec![
            "markov-sequence".into(),
            fmt_pct(self.behavioral.0),
            fmt_pct(self.behavioral.1),
        ]);
        r.push_row(vec![
            "msg-rate-only".into(),
            fmt_pct(self.point.0),
            fmt_pct(self.point.1),
        ]);
        r
    }
}

/// Runs E12. The takeover emits the same *volume* of events as normal
/// operation (so a rate detector sees nothing) but in a causally impossible
/// order (so the sequence baseline collapses).
pub fn e12_behavior(seed: u64) -> E12Result {
    let mut rng = SimRng::seed_from(seed ^ 0xE12);

    // Train on noisy normal cycles.
    let noisy_cycle = |rng: &mut SimRng| {
        let mut seq = normal_irrigation_cycle();
        // Occasionally repeat a soil:rising reading (sensor chatter).
        if rng.chance(0.3) {
            seq.insert(6, "soil:rising".to_owned());
        }
        seq
    };
    let mut baseline = MarkovBaseline::new(0.1);
    for _ in 0..300 {
        baseline.train(&noisy_cycle(&mut rng));
    }
    let holdout: Vec<Vec<String>> = (0..60).map(|_| noisy_cycle(&mut rng)).collect();
    let det = BehaviorDetector::calibrate(baseline, &holdout, 0.3);

    let trials = 100;
    // Behavioral detector.
    let mut b_tp = 0;
    let mut b_fp = 0;
    // Point detector: alerts when a window has more events than the normal
    // max (rate-style evidence only).
    let normal_max_len = holdout.iter().map(Vec::len).max().unwrap_or(0);
    let mut p_tp = 0;
    let mut p_fp = 0;
    for _ in 0..trials {
        let normal = noisy_cycle(&mut rng);
        let attack = actuator_takeover_sequence();
        if det.is_anomalous(&normal) {
            b_fp += 1;
        }
        if det.is_anomalous(&attack) {
            b_tp += 1;
        }
        if normal.len() > normal_max_len {
            p_fp += 1;
        }
        if attack.len() > normal_max_len {
            p_tp += 1;
        }
    }
    E12Result {
        behavioral: (b_tp as f64 / trials as f64, b_fp as f64 / trials as f64),
        point: (p_tp as f64 / trials as f64, p_fp as f64 / trials as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_mitigation_restores_delivery() {
        let r = e2_dos(42);
        assert_eq!(r.rows.len(), 5);
        // No attack: both near-perfect.
        let (_, unmit0, mit0, _) = r.rows[0];
        assert!(unmit0 > 0.95, "baseline delivery {unmit0}");
        assert!(mit0 > 0.95);
        // Heavy attack: unmitigated collapses, mitigated recovers.
        let (_, unmit_hi, mit_hi, rounds) = *r.rows.last().unwrap();
        assert!(
            unmit_hi < 0.6,
            "200 msg/s flood should crush a 50 msg/s ingress: {unmit_hi}"
        );
        assert!(
            mit_hi > unmit_hi + 0.2,
            "mitigation must help: {mit_hi} vs {unmit_hi}"
        );
        assert!(rounds > 0, "mitigation engaged");
        assert!(r.report().to_string().contains("E2"));
    }

    #[test]
    fn e3_detection_grows_with_offset() {
        let r = e3_tamper(42);
        assert_eq!(r.rows.len(), 4);
        let tprs: Vec<f64> = r.rows.iter().map(|x| x.1).collect();
        // Large offsets detected almost always; tiny ones may slip.
        assert!(tprs[3] > 0.9, "0.20 offset TPR {}", tprs[3]);
        assert!(tprs[3] >= tprs[0], "monotone-ish TPR {tprs:?}");
        // FPR modest.
        assert!(r.rows[0].2 < 0.2, "FPR {}", r.rows[0].2);
    }

    #[test]
    fn e4_filter_removes_minority_sybils() {
        let r = e4_sybil(42);
        // Minority swarms (< 12) get flagged and the bias is corrected.
        for &(n, flagged, raw, filtered) in &r.rows {
            if n > 0 && n < 12 {
                assert!(flagged > 0.9, "{n} sybils flagged {flagged}");
                assert!(
                    filtered < raw,
                    "{n} sybils: filtered {filtered} < raw {raw}"
                );
                assert!(filtered < 0.05, "{n} sybils: residual bias {filtered}");
            }
        }
        // Majority swarm (24 > 12) defeats the median — the documented
        // limit that motivates identity-based defenses.
        let majority = r.rows.last().unwrap();
        assert!(majority.1 < 0.5, "majority swarm evades: {}", majority.1);
        assert!(majority.3 > 0.1, "majority swarm biases result");
    }

    #[test]
    fn e12_behavioral_dominates_point_detector() {
        let r = e12_behavior(42);
        assert!(
            r.behavioral.0 > 0.95,
            "takeover detection {}",
            r.behavioral.0
        );
        assert!(r.behavioral.1 < 0.1, "false alarms {}", r.behavioral.1);
        assert!(
            r.point.0 < 0.1,
            "rate-only detector should miss same-volume takeovers: {}",
            r.point.0
        );
        assert!(r.report().to_string().contains("markov-sequence"));
    }
}
