//! E13 — end-to-end uplink resilience under injected faults: delivery
//! ratio, duplicate applies and post-partition recovery time for both
//! deployment configs across a loss sweep, driven entirely in sim time
//! (bit-reproducible per seed, so it joins `run_all`).
//!
//! Each cell injects `FaultSpec::lossy(rate)` on the farm→cloud uplink
//! plus a one-hour scheduled partition in the middle of the run, then
//! measures what the retry/ack engine actually delivered: every record
//! offered to the uplink must reach the cloud store exactly once, and
//! the engine must reconnect after the partition heals.

use swamp_codec::ngsi::Entity;
use swamp_core::platform::{nodes, DeploymentConfig, Platform};
use swamp_core::query::{QueryRequest, QueryResponse};
use swamp_fog::availability::OutageSchedule;
use swamp_fog::sync::DegradedMode;
use swamp_net::{FaultPlan, FaultSpec};
use swamp_obs::ObsReport;
use swamp_sensors::device::DeviceKind;
use swamp_sim::{SimDuration, SimTime};

use crate::report::{fmt_pct, Report};

/// One (deployment, loss-rate) cell of the sweep.
#[derive(Clone, Debug)]
pub struct E13Row {
    /// Deployment label (`cloud-only` / `farm-fog`).
    pub deployment: &'static str,
    /// Injected uplink drop probability.
    pub loss: f64,
    /// Records offered to the uplink retry engine.
    pub offered: u64,
    /// Records applied at the cloud store (unique).
    pub delivered: u64,
    /// Records applied more than once at the cloud — must stay zero.
    pub duplicate_applies: u64,
    /// Redundant copies the dedup layer discarded before apply.
    pub duplicates_discarded: u64,
    /// Retransmissions the engine issued to get there.
    pub retransmissions: u64,
    /// Worst degraded-mode state observed during the partition.
    pub mode_during_outage: DegradedMode,
    /// Engine state at the end of the run.
    pub final_mode: DegradedMode,
    /// Seconds from partition heal until the backlog fully drained.
    pub recovery_secs: u64,
}

impl E13Row {
    /// Delivered fraction of offered records.
    pub fn delivery_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.delivered as f64 / self.offered as f64
        }
    }
}

/// E13 results.
#[derive(Clone, Debug)]
pub struct E13Result {
    /// One row per (deployment, loss) cell.
    pub rows: Vec<E13Row>,
}

impl E13Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E13: uplink resilience under injected loss + 1 h partition — delivery, duplicates, recovery (8 h)",
            &[
                "deployment",
                "loss",
                "offered",
                "delivered",
                "ratio",
                "dup_applies",
                "retransmits",
                "outage_mode",
                "recovery_s",
            ],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.deployment.to_owned(),
                fmt_pct(row.loss),
                row.offered.to_string(),
                row.delivered.to_string(),
                fmt_pct(row.delivery_ratio()),
                row.duplicate_applies.to_string(),
                row.retransmissions.to_string(),
                row.mode_during_outage.to_string(),
                row.recovery_secs.to_string(),
            ]);
        }
        r
    }
}

fn severity(mode: DegradedMode) -> u8 {
    match mode {
        DegradedMode::Connected => 0,
        DegradedMode::Degraded => 1,
        DegradedMode::Offline => 2,
    }
}

/// Runs one cell: two devices publish every 5 min for 6 h over an uplink
/// with the given injected loss and a partition from hour 2 to hour 3,
/// then the run drains for up to 2 more hours of minute-grained pumps.
fn run_cell(seed: u64, config: DeploymentConfig, loss: f64) -> (E13Row, ObsReport) {
    let outage_start = SimTime::from_hours(2);
    let outage_end = SimTime::from_hours(3);
    let mut schedule = OutageSchedule::new();
    schedule.add_outage(outage_start, outage_end);

    let uplink_src = match config {
        DeploymentConfig::CloudOnly => nodes::GATEWAY,
        DeploymentConfig::FarmFog => nodes::FOG,
    };
    let mut plan = FaultPlan::new(seed ^ 0xe13);
    plan.set_link_faults(uplink_src, nodes::CLOUD, FaultSpec::lossy(loss))
        .expect("loss rates in the sweep are valid probabilities");

    let mut platform = Platform::builder(config)
        .seed(seed)
        .sync_base_timeout(SimDuration::from_secs(60))
        .sync_backoff(2.0, SimDuration::from_secs(480))
        .sync_jitter(0.1)
        .fault_plan(plan)
        .uplink_outages(&schedule)
        .build();
    for dev in ["probe-a", "probe-b"] {
        platform
            .register_device(SimTime::ZERO, dev, DeviceKind::SoilProbe, "owner:e13")
            .expect("fresh platform has no registered devices");
    }

    let mut worst_outage_mode = DegradedMode::Connected;
    let mut recovered_at: Option<SimTime> = None;
    let mut seq = 0u64;
    // 8 h of minute-grained rounds through the shared driver; devices
    // publish every 5 min for the first 6 h, the last 2 h drain the
    // backlog; the after-hook samples degraded mode and recovery on the
    // concrete platform (inherent methods the `Drive` trait doesn't
    // carry).
    crate::driver::run_rounds(
        &mut platform,
        SimTime::ZERO,
        SimDuration::from_mins(1),
        SimDuration::from_secs(30),
        480,
        |p, minute, t| {
            if minute % 5 == 0 && minute < 360 {
                for dev in ["probe-a", "probe-b"] {
                    let mut e = Entity::new(format!("urn:swamp:device:{dev}"), "SoilProbe");
                    e.set("moisture_vwc", 0.2 + seq as f64 * 1e-4);
                    e.set("seq", seq as f64);
                    let _ = p.device_publish(t, dev, &e);
                    seq += 1;
                }
            }
        },
        |p, _, t| {
            if t >= outage_start && t < outage_end {
                let mode = p.degraded_mode();
                if severity(mode) > severity(worst_outage_mode) {
                    worst_outage_mode = mode;
                }
            }
            if t >= outage_end && recovered_at.is_none() {
                // Gauges are refreshed at the end of every sync round, and
                // nothing enqueues between the round's pump and this read,
                // so they equal the engine's live queue depths here.
                let snap = p.observe();
                let pending = snap.gauge("sync.pending").expect("registered gauge");
                let in_flight = snap.gauge("sync.in_flight").expect("registered gauge");
                if pending == Some(0.0) && in_flight == Some(0.0) {
                    recovered_at = Some(t);
                }
            }
        },
    );

    let snap = platform.observe();
    let (delivered, duplicate_applies, duplicates_discarded) = match config {
        DeploymentConfig::FarmFog => {
            // Applied-record seqs come through the typed query surface
            // (the deprecated raw accessors are banned for new callers);
            // dedup/discard *counters* stay on the replica's own stats.
            let seqs = match platform.query(&QueryRequest::ReplicaSeqs) {
                QueryResponse::Seqs(seqs) => seqs,
                other => panic!("ReplicaSeqs answered with {other:?}"),
            };
            let unique: std::collections::BTreeSet<u64> = seqs.iter().copied().collect();
            let store = platform
                .cloud_replica()
                .expect("farm-fog deployments expose the cloud replica");
            (
                unique.len() as u64,
                store.record_count() as u64 - unique.len() as u64,
                store.duplicates(),
            )
        }
        DeploymentConfig::CloudOnly => (
            // The relay store dedups before validation, so any copy that
            // slipped through would be caught (and counted) by the
            // replay defense at ingest.
            snap.counter("ingest.accepted").expect("registered counter"),
            snap.counter("ingest.rejected_replay")
                .expect("registered counter"),
            snap.counter("relay.duplicates_discarded")
                .expect("registered counter"),
        ),
    };
    let recovery_secs = recovered_at
        .map(|t| (t - outage_end).as_secs())
        .unwrap_or(u64::MAX);

    let deployment = match config {
        DeploymentConfig::CloudOnly => "cloud-only",
        DeploymentConfig::FarmFog => "farm-fog",
    };
    let row = E13Row {
        deployment,
        loss,
        offered: snap.counter("sync.enqueued").expect("registered counter"),
        delivered,
        duplicate_applies,
        duplicates_discarded,
        retransmissions: snap
            .counter("sync.retransmissions")
            .expect("registered counter"),
        mode_during_outage: worst_outage_mode,
        final_mode: platform.degraded_mode(),
        recovery_secs,
    };
    let label = format!("e13/{deployment}/loss{:02}", (loss * 100.0).round() as u32);
    (row, ObsReport::new(&label, seed, snap))
}

/// Runs E13: loss sweep × both deployment configs.
pub fn e13_resilience(seed: u64) -> E13Result {
    e13_resilience_observed(seed).0
}

/// Runs E13 and also returns one deterministic [`ObsReport`] per cell
/// (labelled `e13/<deployment>/loss<pct>`), for export next to the bench
/// artifacts. The reports are sim-time only: the same seed must serialize
/// byte-identically.
pub fn e13_resilience_observed(seed: u64) -> (E13Result, Vec<ObsReport>) {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for config in [DeploymentConfig::CloudOnly, DeploymentConfig::FarmFog] {
        for loss in [0.0, 0.01, 0.10, 0.30] {
            let (row, report) = run_cell(seed, config, loss);
            rows.push(row);
            reports.push(report);
        }
    }
    (E13Result { rows }, reports)
}
