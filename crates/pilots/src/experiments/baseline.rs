//! E16 — pilot-diverse workloads vs the streaming behavioral baseline.
//!
//! The paper names behavioral baselining — "correlating the expected
//! sequence of events of an agricultural application" — the most
//! relevant security challenge, and describes four pilots whose traffic
//! could not look less alike. E16 closes the loop between the two: the
//! [`swamp_workload`] compiler turns each pilot into a seeded, labeled
//! delivery stream (diurnal CBEC, night-shifted seasonal Intercrop,
//! drone-collected Guaspari, open-loop partition-prone MATOPIBA), an
//! attack overlay plants ground truth (Sybil burst, sensor-tamper
//! drift, actuator takeover) in the detection phase, and the stream is
//! driven through a full [`Platform`] whose [`BehaviorBank`] is the
//! only judge. The scorecard is device-level precision/recall per
//! pilot against the compiler's ground-truth labels.
//!
//! Two halves, same split as E11/E14/E15:
//!
//! 1. **Detection quality** (deterministic, in `run_all`):
//!    [`e16_baseline_detection`] — per-pilot precision/recall at the
//!    canonical scale, bit-reproducible per seed.
//! 2. **Overhead** (wall clock, `bench_e16` binary):
//!    [`e16_overhead_observed`] — the same workload timed against a
//!    live bank and a muted one (`BehaviorBank::set_enabled(false)`,
//!    a single branch); the `--check` gate bounds the live/muted
//!    ratio. The caller injects the clock, so the library stays free
//!    of ambient time sources.
//!
//! Shard invariance — the detector's verdict must not depend on how
//! the fleet is partitioned or how many workers drive it — is proven
//! by `crates/pilots/tests/detector_differential.rs` over
//! [`e16_shard_run`].
//!
//! [`BehaviorBank`]: swamp_security::baseline::BehaviorBank

use std::collections::{BTreeMap, BTreeSet};

use swamp_codec::ngsi::Entity;
use swamp_core::platform::{DeploymentConfig, Platform, PlatformBuilder};
use swamp_core::Drive;
use swamp_net::link::LinkSpec;
use swamp_obs::ObsReport;
use swamp_security::baseline::BaselineConfig;
use swamp_shard::ShardedPlatform;
use swamp_sim::{SimDuration, SimTime};
use swamp_workload::{AttackOverlay, CompiledWorkload, Label, Pilot, WorkloadSpec};

use crate::report::{fmt_f, fmt_pct, Report};

/// Canonical E16 fleet size (per pilot; Sybil identities come on top).
pub const E16_DEVICES: usize = 32;

/// Canonical E16 horizon: 240 rounds at the default 30-minute cadence
/// — five simulated days (2.5 train, 1.25 calibrate, 1.25 detect).
pub const E16_ROUNDS: usize = 240;

/// Deployment coverage assumed for the profile-error margin (fraction
/// of irrigation zones actually carrying a probe).
pub const E16_COVERAGE: f64 = 0.6;

/// Field-scale moisture standard deviation feeding the margin (VWC).
pub const E16_FIELD_SD: f64 = 0.004;

/// The labeled E16 workload for one pilot: the base pilot profile plus
/// all three attack overlays, planted in the detection phase. Victims
/// per overlay scale with the fleet (one in eight, at least one); the
/// actuator takeover is placed at the first daybreak of the detection
/// phase so every pilot cadence (including CBEC's sparse nights)
/// observes the forced-refill jumps.
pub fn e16_spec(pilot: Pilot, seed: u64, devices: usize, rounds: usize) -> WorkloadSpec {
    let victims = (devices / 8).max(1);
    let detect_from = rounds * 3 / 4;
    let attack_start = detect_from + 2;
    // First round at or after `attack_start` that falls at noon of the
    // simulated day (48 rounds/day at the 30-min cadence): a 24-round
    // takeover from there spans 12:00–24:00, so both day-reporting and
    // night-reporting cadences observe the forced-refill jumps.
    let mut noon_start = attack_start;
    while noon_start % 48 != 24 {
        noon_start += 1;
    }
    let takeover_start = if noon_start + 8 <= rounds {
        noon_start
    } else {
        attack_start
    };
    WorkloadSpec::new(pilot, seed, devices, rounds).with_attacks(vec![
        AttackOverlay::SybilBurst {
            start_round: attack_start,
            rounds: rounds.saturating_sub(attack_start),
            count: victims,
        },
        AttackOverlay::TamperDrift {
            start_round: attack_start,
            devices: victims,
            drift_per_round: 0.012,
        },
        AttackOverlay::ActuatorTakeover {
            start_round: takeover_start,
            rounds: 24,
            devices: victims,
        },
    ])
}

/// The detector configuration for an E16 run: train on the first half
/// of the horizon, calibrate on the next quarter, detect on the last —
/// with the partial-observability margin for [`E16_COVERAGE`] probe
/// coverage.
pub fn e16_config(spec: &WorkloadSpec) -> BaselineConfig {
    BaselineConfig::phased(
        spec.round_time(spec.rounds / 2),
        spec.round_time(spec.rounds * 3 / 4),
    )
    .with_coverage(E16_COVERAGE, E16_FIELD_SD)
}

/// The E16 platform: the E14 farm-fog deployment (lossless datacenter
/// uplink, retry timeout above the ack round trip) with the behavioral
/// baseline phased for the given workload.
pub fn e16_builder(seed: u64, config: BaselineConfig) -> PlatformBuilder {
    Platform::builder(DeploymentConfig::FarmFog)
        .seed(seed)
        .uplink_spec(LinkSpec::cloud_backbone())
        .sync_base_timeout(SimDuration::from_secs(300))
        .sync_jitter(0.0)
        .baseline(config)
}

/// Device-level detection scorecard for one pilot.
#[derive(Clone, Debug)]
pub struct E16Row {
    /// Pilot profile.
    pub pilot: Pilot,
    /// Legitimate fleet size.
    pub devices: usize,
    /// Horizon in rounds.
    pub rounds: usize,
    /// Records delivered (and ingested) across the horizon.
    pub records: u64,
    /// Ground-truth attack devices (victims + Sybil identities).
    pub truth: usize,
    /// Devices the bank flagged.
    pub flagged: usize,
    /// Flagged ∩ truth.
    pub tp: usize,
    /// Flagged honest devices.
    pub fp: usize,
    /// Missed attack devices.
    pub fn_missed: usize,
    /// `tp / (tp + fp)` (1.0 when nothing was flagged).
    pub precision: f64,
    /// `tp / truth`.
    pub recall: f64,
    /// Per-label (caught, total) device counts.
    pub caught: BTreeMap<Label, (usize, usize)>,
}

impl E16Row {
    fn caught_cell(&self, label: Label) -> String {
        let (c, t) = self.caught.get(&label).copied().unwrap_or((0, 0));
        format!("{c}/{t}")
    }
}

/// E16 detection-quality results, one row per pilot.
#[derive(Clone, Debug)]
pub struct E16Result {
    /// Rows in paper pilot order.
    pub rows: Vec<E16Row>,
}

impl E16Result {
    /// The per-pilot precision/recall table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E16: behavioral baseline vs pilot workloads — device-level detection \
             (Sybil burst + tamper drift + actuator takeover in the detect phase)",
            &[
                "pilot",
                "devices",
                "records",
                "attack_devs",
                "flagged",
                "tp",
                "fp",
                "fn",
                "precision",
                "recall",
                "sybil",
                "tamper",
                "takeover",
            ],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.pilot.name().to_owned(),
                row.devices.to_string(),
                row.records.to_string(),
                row.truth.to_string(),
                row.flagged.to_string(),
                row.tp.to_string(),
                row.fp.to_string(),
                row.fn_missed.to_string(),
                fmt_pct(row.precision),
                fmt_pct(row.recall),
                row.caught_cell(Label::Sybil),
                row.caught_cell(Label::Tamper),
                row.caught_cell(Label::Takeover),
            ]);
        }
        r
    }

    /// The row for a pilot, if present.
    pub fn row(&self, pilot: Pilot) -> Option<&E16Row> {
        self.rows.iter().find(|r| r.pilot == pilot)
    }
}

/// Scores a flagged-device set against a compiled workload's ground
/// truth.
fn score(w: &CompiledWorkload, predicted: &BTreeSet<String>, spec: &WorkloadSpec) -> E16Row {
    let truth = &w.attack_devices;
    let tp = predicted.intersection(truth).count();
    let fp = predicted.difference(truth).count();
    let fn_missed = truth.difference(predicted).count();
    let mut by_label: BTreeMap<Label, BTreeSet<&str>> = BTreeMap::new();
    for b in &w.batches {
        for rec in &b.records {
            if rec.label != Label::Normal {
                by_label
                    .entry(rec.label)
                    .or_default()
                    .insert(rec.device.as_str());
            }
        }
    }
    let caught = by_label
        .iter()
        .map(|(label, devs)| {
            let c = devs.iter().filter(|d| predicted.contains(**d)).count();
            (*label, (c, devs.len()))
        })
        .collect();
    E16Row {
        pilot: w.pilot,
        devices: spec.devices,
        rounds: spec.rounds,
        records: w.generated,
        truth: truth.len(),
        flagged: predicted.len(),
        tp,
        fp,
        fn_missed,
        precision: if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            1.0
        },
        recall: if truth.is_empty() {
            1.0
        } else {
            tp as f64 / truth.len() as f64
        },
        caught,
    }
}

/// Runs one pilot's labeled workload through a full platform and
/// scores the bank's flags against ground truth. Returns the platform
/// too, so callers can inspect `security.baseline.*` instruments.
pub fn e16_run_pilot(seed: u64, pilot: Pilot, devices: usize, rounds: usize) -> (E16Row, Platform) {
    let spec = e16_spec(pilot, seed, devices, rounds);
    let w = spec.compile();
    let mut p = e16_builder(seed, e16_config(&spec)).build();
    crate::driver::run_rounds(
        &mut p,
        spec.start,
        spec.step,
        SimDuration::ZERO,
        rounds as u64,
        |p, r, t| {
            let entities: Vec<Entity> = w.batches[r as usize]
                .records
                .iter()
                .map(|rec| rec.entity.clone())
                .collect();
            if !entities.is_empty() {
                p.ingest(t, entities);
            }
        },
        |_, _, _| {},
    );
    let predicted: BTreeSet<String> = p.behavior.flags().keys().cloned().collect();
    (score(&w, &predicted, &spec), p)
}

/// Runs E16 (deterministic half): all four pilots at the canonical
/// scale, one precision/recall row each.
pub fn e16_baseline_detection(seed: u64) -> E16Result {
    let rows = Pilot::all()
        .into_iter()
        .map(|pilot| e16_run_pilot(seed, pilot, E16_DEVICES, E16_ROUNDS).0)
        .collect();
    E16Result { rows }
}

/// Deterministic fingerprint of one sharded detector run: the union of
/// per-shard flags (device, kind, flag time) and the summed
/// `security.baseline.*` counters. The detector differential suite
/// requires this to be invariant across shard and worker counts.
pub type DetectorFingerprint = (BTreeSet<(String, String, u64)>, BTreeMap<String, u64>);

/// Drives one pilot's labeled workload through an N-shard,
/// W-worker platform and returns the run's [`DetectorFingerprint`]
/// plus the scored row (flags unioned across shards).
pub fn e16_shard_run(
    seed: u64,
    pilot: Pilot,
    devices: usize,
    rounds: usize,
    shards: usize,
    workers: usize,
) -> (DetectorFingerprint, E16Row) {
    let spec = e16_spec(pilot, seed, devices, rounds);
    let w = spec.compile();
    let mut sp = ShardedPlatform::build(&e16_builder(seed, e16_config(&spec)).shards(shards));
    sp.set_workers(workers);
    crate::driver::run_rounds(
        &mut sp,
        spec.start,
        spec.step,
        SimDuration::ZERO,
        rounds as u64,
        |sp, r, t| {
            let entities: Vec<Entity> = w.batches[r as usize]
                .records
                .iter()
                .map(|rec| rec.entity.clone())
                .collect();
            if !entities.is_empty() {
                sp.ingest_entities(t, entities);
            }
        },
        |_, _, _| {},
    );
    let flags: BTreeSet<(String, String, u64)> = sp
        .shards()
        .flat_map(|p| {
            p.behavior.flags().iter().map(|(device, flag)| {
                (
                    device.clone(),
                    flag.kind.as_str().to_owned(),
                    flag.at.as_millis(),
                )
            })
        })
        .collect();
    let counters: BTreeMap<String, u64> = sp
        .observe()
        .counters()
        .filter(|(name, _)| name.starts_with("security.baseline."))
        .map(|(name, v)| (name.to_owned(), v))
        .collect();
    let predicted: BTreeSet<String> = flags.iter().map(|(d, _, _)| d.clone()).collect();
    ((flags, counters), score(&w, &predicted, &spec))
}

/// One timed arm of the overhead measurement.
#[derive(Clone, Debug)]
pub struct E16OverheadRow {
    /// `"muted"` (bank disabled — a single branch) or `"live"`.
    pub arm: &'static str,
    /// Records ingested in the timed region.
    pub records: u64,
    /// Best-of-reps wall-clock time for ingest + pump of the full
    /// horizon.
    pub elapsed_ms: f64,
    /// Records ingested per wall-clock second.
    pub records_per_s: f64,
}

/// E16 overhead results: live vs muted bank on the same workload.
#[derive(Clone, Debug)]
pub struct E16OverheadResult {
    /// Fleet size of the timed workload.
    pub devices: usize,
    /// Horizon in rounds.
    pub rounds: usize,
    /// Records per run.
    pub records: u64,
    /// Interleaved repetitions (minima reported).
    pub reps: usize,
    /// The two timed arms.
    pub rows: Vec<E16OverheadRow>,
    /// `live / muted − 1` on the best-of-reps times.
    pub overhead_frac: f64,
}

impl E16OverheadResult {
    /// The live-vs-muted table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            format!(
                "E16b: detector ingest overhead — live vs muted bank, {} devices x {} rounds \
                 (best of {} interleaved reps, wall clock)",
                self.devices, self.rounds, self.reps
            ),
            &["arm", "records", "elapsed_ms", "records_per_s", "overhead"],
        );
        for row in &self.rows {
            let overhead = if row.arm == "live" {
                fmt_pct(self.overhead_frac)
            } else {
                "-".to_owned()
            };
            r.push_row(vec![
                row.arm.to_owned(),
                row.records.to_string(),
                fmt_f(row.elapsed_ms, 1),
                fmt_f(row.records_per_s, 0),
                overhead,
            ]);
        }
        r
    }
}

/// Runs the E16 wall-clock overhead measurement: the CBEC labeled
/// workload (the densest pilot stream) is ingested and pumped through
/// two platforms per repetition — one with the bank live in its phased
/// configuration, one with the bank muted — interleaved, best times
/// kept. The batches are compiled once and cloned per ingest in both
/// arms, so the only difference between the arms is the detector.
///
/// The caller supplies the clock: `time_cell` receives one arm's body
/// and returns the wall-clock seconds it took, and must run the body
/// exactly once — only the `bench_e16` binary (and the unit test)
/// touch `std::time::Instant`.
pub fn e16_overhead_observed(
    seed: u64,
    devices: usize,
    rounds: usize,
    mut time_cell: impl FnMut(&mut dyn FnMut()) -> f64,
) -> (E16OverheadResult, Vec<ObsReport>) {
    const REPS: usize = 3;
    let spec = e16_spec(Pilot::Cbec, seed, devices, rounds);
    let w = spec.compile();
    let batches: Vec<(SimTime, Vec<Entity>)> = w
        .batches
        .iter()
        .map(|b| {
            (
                b.at,
                b.records.iter().map(|rec| rec.entity.clone()).collect(),
            )
        })
        .collect();
    let records = w.generated;
    let mut best = [f64::INFINITY; 2]; // [muted, live]
    let mut reports = Vec::new();
    for rep in 0..REPS {
        for (slot, live) in [(0usize, false), (1, true)] {
            let mut p = e16_builder(seed, e16_config(&spec)).build();
            if !live {
                p.behavior.set_enabled(false);
            }
            let secs = time_cell(&mut || {
                for (at, entities) in &batches {
                    if !entities.is_empty() {
                        p.ingest(*at, entities.clone());
                    }
                    p.round(*at);
                }
            });
            best[slot] = best[slot].min(secs);
            if rep == 0 {
                let label = format!(
                    "e16/{}/{devices}x{rounds}",
                    if live { "live" } else { "muted" }
                );
                reports.push(ObsReport::new(&label, seed, p.observe()));
            }
        }
    }
    let mk_row = |arm: &'static str, secs: f64| E16OverheadRow {
        arm,
        records,
        elapsed_ms: secs * 1e3,
        records_per_s: if secs > 0.0 {
            records as f64 / secs
        } else {
            0.0
        },
    };
    let overhead_frac = if best[0] > 0.0 {
        best[1] / best[0] - 1.0
    } else {
        0.0
    };
    (
        E16OverheadResult {
            devices,
            rounds,
            records,
            reps: REPS,
            rows: vec![mk_row("muted", best[0]), mk_row("live", best[1])],
            overhead_frac,
        },
        reports,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_detects_planted_attacks_per_pilot() {
        let r = e16_baseline_detection(42);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(row.records > 0);
            assert!(row.truth > 0, "{}: no planted attacks", row.pilot.name());
            assert!(
                row.recall >= 0.5,
                "{}: recall {:.2} collapsed",
                row.pilot.name(),
                row.recall
            );
            assert!(
                row.precision >= 0.5,
                "{}: precision {:.2} collapsed",
                row.pilot.name(),
                row.precision
            );
        }
        let table = r.report().to_string();
        assert!(table.contains("guaspari"));
        assert!(table.contains("recall"));
    }

    #[test]
    fn e16_is_deterministic_per_seed() {
        let (a, _) = e16_run_pilot(7, Pilot::Matopiba, 16, 120);
        let (b, _) = e16_run_pilot(7, Pilot::Matopiba, 16, 120);
        assert_eq!(a.records, b.records);
        assert_eq!(a.flagged, b.flagged);
        assert_eq!(a.tp, b.tp);
        assert_eq!(a.fp, b.fp);
    }

    #[test]
    fn e16_overhead_cells_complete() {
        // Tiny workload: bench_e16 runs the real sweep.
        let (r, reports) = e16_overhead_observed(42, 16, 48, |run| {
            let start = std::time::Instant::now();
            run();
            start.elapsed().as_secs_f64()
        });
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].arm, "muted");
        assert_eq!(r.rows[1].arm, "live");
        for row in &r.rows {
            assert!(row.records > 0);
            assert!(row.records_per_s > 0.0);
        }
        assert_eq!(reports.len(), 2, "one obs report per arm");
        assert!(r.report().to_string().contains("overhead"));
    }
}
