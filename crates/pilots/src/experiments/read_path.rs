//! E15 — the columnar read path under mixed read/write load.
//!
//! Two platforms ingest the *same* seeded workload — sustained telemetry
//! with a deep hot tier (1% of devices report 512 sub-round samples, so
//! their series freeze into multiple columnar segments) — one on the
//! flat pre-segment layout (threshold `None`), one compacting every 64
//! appends. Each round interleaves ingest, a zipfian query burst through
//! [`swamp_core::drive::Drive::query`] and a retention pass, the regime
//! the ROADMAP's read-tier item describes: dashboards querying while the
//! fleet writes and retention trims.
//!
//! Three quantities come out per (tier, layout):
//!
//! 1. **Query latency** (p50/p99): recent-window reads are near-parity —
//!    a flat sorted vector already answers windows by binary search, so
//!    segment decode must not *cost* latency — but the wide-window
//!    [`QueryRequest::Extremes`] reads in the mix are where **segment
//!    pruning beats the uncompacted scan**: the flat layout walks every
//!    in-window sample of a deep hot series while the segmented layout
//!    folds whole-segment summaries without decoding
//!    (`query.segments_summarized`). The wide reads get their own
//!    percentiles (`wide_p50/p90/p99`); `bench_e15 --check` gates the
//!    wide p90, which sits inside the hot-series mass at every tier and
//!    above scheduler noise, unlike the overall p99.
//! 2. **Retention**: `prune_before` on the flat layout shifts every
//!    surviving sample of every touched series per pass; the columnar
//!    layout drops whole expired segments in O(1) via their summaries.
//!    With the horizon round-aligned (no straddling segment to
//!    re-freeze), the two layouts run at parity — the per-series floor
//!    across the fleet dominates either layout's per-sample work.
//! 3. **Equivalence**: after all rounds, both platforms must serialize
//!    byte-identical answers to a fixed query battery — the bench-scale
//!    replay of the compaction differential.
//!
//! Wall-clock timing is injected (`clock`), keeping the library free of
//! ambient time sources; only the `bench_e15` binary touches `Instant`.
//! Numbers are machine-dependent, so E15 is excluded from `run_all` and
//! EXPERIMENTS.md tables — `BENCH_e15.json` is its artifact.

use swamp_codec::ngsi::{Attribute, Entity};
use swamp_core::platform::{DeploymentConfig, Platform};
use swamp_core::query::{QueryRequest, QueryResponse};
use swamp_obs::ObsReport;
use swamp_sim::{SimDuration, SimRng, SimTime};

use crate::report::{fmt_f, Report};

/// Rounds of ingest+query+retention per tier.
const ROUNDS: u64 = 6;
/// Sub-round samples each hot device reports per round.
const HOT_SUBSAMPLES: u64 = 512;
/// Retention horizon: samples older than this are pruned every round.
const RETENTION: SimDuration = SimDuration::from_secs(120);
/// Segment threshold of the compacted platform.
const SEGMENT_THRESHOLD: usize = 64;

/// One (tier, layout) cell.
#[derive(Clone, Debug)]
pub struct E15Row {
    /// Fleet size.
    pub devices: usize,
    /// `"flat"` (threshold `None`) or `"segmented"` (threshold 64).
    pub layout: &'static str,
    /// Samples ingested over the run (before retention).
    pub ingested: u64,
    /// Live samples at the end (after retention).
    pub live_samples: u64,
    /// Frozen segments at the end (0 for flat).
    pub segments: usize,
    /// Queries answered.
    pub queries: u64,
    /// Median query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: f64,
    /// Median latency of the wide-window `Extremes` reads only.
    pub wide_p50_us: f64,
    /// 90th-percentile wide-read latency — the `--check` gate statistic:
    /// deep inside the hot-series mass at every tier, above timer noise.
    pub wide_p90_us: f64,
    /// 99th-percentile wide-read latency.
    pub wide_p99_us: f64,
    /// Query throughput over the timed query phases.
    pub queries_per_s: f64,
    /// Frozen segments skipped via summaries across all queries.
    pub segments_pruned: u64,
    /// Frozen segments *answered* from summaries (wide `Extremes`
    /// windows) without decoding.
    pub segments_summarized: u64,
    /// Frozen segments decoded across all queries.
    pub segments_decoded: u64,
    /// Total wall-clock of the retention passes, milliseconds.
    pub retention_ms: f64,
    /// Samples removed by retention.
    pub retention_removed: u64,
    /// Whether the end-state query battery matched the flat twin
    /// byte-for-byte (trivially true for the flat row itself).
    pub responses_match: bool,
}

/// E15 results.
#[derive(Clone, Debug)]
pub struct E15Result {
    /// Two rows (flat, segmented) per device tier.
    pub rows: Vec<E15Row>,
}

impl E15Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E15: columnar read path under mixed read/write load — summary-served wide reads win, retention parity (wall clock)",
            &[
                "devices",
                "layout",
                "ingested",
                "live",
                "segments",
                "queries",
                "p50_us",
                "p99_us",
                "wide_p50_us",
                "wide_p90_us",
                "queries_per_s",
                "seg_pruned",
                "seg_summarized",
                "seg_decoded",
                "retention_ms",
                "removed",
                "match",
            ],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.devices.to_string(),
                row.layout.to_owned(),
                row.ingested.to_string(),
                row.live_samples.to_string(),
                row.segments.to_string(),
                row.queries.to_string(),
                fmt_f(row.p50_us, 1),
                fmt_f(row.p99_us, 1),
                fmt_f(row.wide_p50_us, 1),
                fmt_f(row.wide_p90_us, 1),
                fmt_f(row.queries_per_s, 0),
                row.segments_pruned.to_string(),
                row.segments_summarized.to_string(),
                row.segments_decoded.to_string(),
                fmt_f(row.retention_ms, 2),
                row.retention_removed.to_string(),
                row.responses_match.to_string(),
            ]);
        }
        r
    }

    /// The cell at the given coordinates, if present.
    pub fn row(&self, devices: usize, layout: &str) -> Option<&E15Row> {
        self.rows
            .iter()
            .find(|r| r.devices == devices && r.layout == layout)
    }
}

/// Zipfian rank sampler (s = 1.0) over `n` ranks via inverse CDF; rank 0
/// is the hottest. Hot devices occupy the head ranks, so the query
/// stream concentrates on exactly the deep multi-segment series.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / (rank + 1) as f64;
            cdf.push(acc);
        }
        let total = acc.max(f64::MIN_POSITIVE);
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, u: f64) -> usize {
        self.cdf
            .partition_point(|&c| c < u)
            .min(self.cdf.len().saturating_sub(1))
    }
}

fn build_platform(seed: u64, segmented: bool) -> Platform {
    let threshold = if segmented {
        Some(SEGMENT_THRESHOLD)
    } else {
        None
    };
    Platform::builder(DeploymentConfig::FarmFog)
        .seed(seed)
        .history_segment_threshold(threshold)
        .build()
}

/// Cheap use of a response so the timed query cannot be optimized away;
/// also a sanity count of how much data the battery touched.
fn resp_weight(resp: &QueryResponse) -> u64 {
    match resp {
        QueryResponse::Samples(s) => s.len() as u64,
        QueryResponse::Aggregate(a) => a.as_ref().map(|a| a.count).unwrap_or(0),
        QueryResponse::Extremes(e) => e.as_ref().map(|e| e.count).unwrap_or(0),
        QueryResponse::Buckets(b) => b.len() as u64,
        QueryResponse::Sample(s) => s.is_some() as u64,
        QueryResponse::Series(s) => s.iter().map(|e| e.samples.len() as u64).sum(),
        QueryResponse::Seqs(s) => s.len() as u64,
        QueryResponse::Views(v) => v.applied,
    }
}

/// The fixed end-state battery both layouts must answer byte-identically.
fn battery(devices: usize, now: SimTime) -> Vec<QueryRequest> {
    let hot = "urn:swamp:device:probe-0".to_owned();
    let cold = format!("urn:swamp:device:probe-{}", devices - 1);
    let attr = "water_flow".to_owned();
    vec![
        QueryRequest::SeriesDump,
        QueryRequest::Range {
            entity: hot.clone(),
            attr: attr.clone(),
            from: SimTime::ZERO,
            to: SimTime::MAX,
        },
        QueryRequest::Aggregate {
            entity: hot.clone(),
            attr: attr.clone(),
            from: back(now, RETENTION),
            to: now,
        },
        QueryRequest::Downsample {
            entity: hot.clone(),
            attr: attr.clone(),
            from: SimTime::ZERO,
            to: now,
            bucket: SimDuration::from_secs(30),
        },
        QueryRequest::Extremes {
            entity: hot.clone(),
            attr: attr.clone(),
            from: SimTime::ZERO,
            to: SimTime::MAX,
        },
        QueryRequest::Extremes {
            entity: cold.clone(),
            attr: attr.clone(),
            from: SimTime::ZERO,
            to: SimTime::MAX,
        },
        QueryRequest::Last { entity: cold, attr },
    ]
}

/// `now - d`, clamped at zero (sim time has no negative instants).
fn back(now: SimTime, d: SimDuration) -> SimTime {
    SimTime::ZERO + (now - SimTime::ZERO).saturating_sub(d)
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct CellState {
    platform: Platform,
    layout: &'static str,
    latencies_us: Vec<f64>,
    wide_us: Vec<f64>,
    query_secs: f64,
    retention_secs: f64,
    retention_removed: u64,
    ingested: u64,
}

/// Runs E15 over the given device tiers. `queries_per_round` zipfian
/// queries hit each platform each round. `clock` returns monotonic
/// seconds and is the only time source (the binary passes `Instant`).
/// Returns the result plus one deterministic-shaped [`ObsReport`] per
/// cell (labelled `e15/<devices>/<layout>`; note the obs *span* values
/// are wall-clock dependent, so these are bench artifacts like the
/// latencies, not EXPERIMENTS.md material).
pub fn e15_read_path_observed(
    seed: u64,
    device_counts: &[usize],
    queries_per_round: usize,
    clock: &mut dyn FnMut() -> f64,
) -> (E15Result, Vec<ObsReport>) {
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for &devices in device_counts {
        if devices == 0 {
            continue;
        }
        let hot = (devices / 100).max(1);
        let zipf = Zipf::new(devices);
        let mut rng = SimRng::seed_from(seed).split("e15");
        let mut cells = [
            CellState {
                platform: build_platform(seed, false),
                layout: "flat",
                latencies_us: Vec::new(),
                wide_us: Vec::new(),
                query_secs: 0.0,
                retention_secs: 0.0,
                retention_removed: 0,
                ingested: 0,
            },
            CellState {
                platform: build_platform(seed, true),
                layout: "segmented",
                latencies_us: Vec::new(),
                wide_us: Vec::new(),
                query_secs: 0.0,
                retention_secs: 0.0,
                retention_removed: 0,
                ingested: 0,
            },
        ];
        let mut now = SimTime::from_secs(60);
        for _round in 0..ROUNDS {
            // --- Write: one batch, fed to both platforms identically.
            // Hot devices report HOT_SUBSAMPLES sub-round flow samples
            // (deep series -> multiple frozen segments); the cold tier
            // reports once.
            let mut batch: Vec<Entity> = Vec::new();
            for i in 0..devices {
                let subs = if i < hot { HOT_SUBSAMPLES } else { 1 };
                for k in 0..subs {
                    let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                    e.set_attribute(
                        "water_flow",
                        Attribute::new(1.0 + rng.uniform_f64())
                            .observed_at(now.as_millis() + k * (57_600 / HOT_SUBSAMPLES)),
                    );
                    batch.push(e);
                }
            }
            for cell in &mut cells {
                cell.ingested += cell.platform.ingest_entities(now, batch.iter().cloned()) as u64;
                cell.platform.pump(now);
            }

            // --- Read: one zipfian query burst, replayed on both
            // platforms. Recent windows dominate (dashboards), with a
            // full-horizon downsample and a point read mixed in.
            let queries: Vec<QueryRequest> = (0..queries_per_round)
                .map(|_| {
                    let entity =
                        format!("urn:swamp:device:probe-{}", zipf.sample(rng.uniform_f64()));
                    let attr = "water_flow".to_owned();
                    match rng.below(20) {
                        0..=7 => QueryRequest::Aggregate {
                            entity,
                            attr,
                            from: back(now, SimDuration::from_secs(60)),
                            to: now + SimDuration::from_secs(60),
                        },
                        8..=11 => QueryRequest::Range {
                            entity,
                            attr,
                            from: back(now, SimDuration::from_secs(45)),
                            to: now + SimDuration::from_secs(15),
                        },
                        // The wide-window envelope read: full horizon,
                        // summary-served on the segmented layout, a full
                        // sample walk on the flat one.
                        12..=16 => QueryRequest::Extremes {
                            entity,
                            attr,
                            from: SimTime::ZERO,
                            to: now + SimDuration::from_secs(60),
                        },
                        17..=18 => QueryRequest::Downsample {
                            entity,
                            attr,
                            from: back(now, RETENTION),
                            to: now + SimDuration::from_secs(60),
                            bucket: SimDuration::from_secs(30),
                        },
                        _ => QueryRequest::Last { entity, attr },
                    }
                })
                .collect();
            let mut touched = 0u64;
            for cell in &mut cells {
                for req in &queries {
                    let t0 = clock();
                    let resp = cell.platform.query(req);
                    let t1 = clock();
                    let us = (t1 - t0) * 1e6;
                    cell.latencies_us.push(us);
                    if matches!(req, QueryRequest::Extremes { .. }) {
                        cell.wide_us.push(us);
                    }
                    cell.query_secs += t1 - t0;
                    touched += resp_weight(&resp);
                }
            }
            std::hint::black_box(touched);

            // --- Retention: trim everything older than the horizon.
            // This is where the layouts diverge: the flat store shifts
            // every surviving sample of every touched series; the
            // segmented store drops whole expired segments by summary.
            let cutoff = back(now, RETENTION);
            for cell in &mut cells {
                let t0 = clock();
                let removed = cell.platform.history.prune_before(cutoff);
                let t1 = clock();
                cell.retention_secs += t1 - t0;
                cell.retention_removed += removed;
            }

            now += SimDuration::from_secs(60);
        }

        // --- Equivalence: both layouts answer the end-state battery
        // byte-identically (bench-scale differential replay).
        let docs: Vec<String> = cells
            .iter_mut()
            .map(|cell| {
                battery(devices, now)
                    .iter()
                    .map(|req| cell.platform.query(req).to_json().to_compact_string())
                    .collect::<Vec<_>>()
                    .join("\n")
            })
            .collect();
        let responses_match = docs[0] == docs[1];

        for cell in &mut cells {
            let snap = cell.platform.observe();
            let mut lat = std::mem::take(&mut cell.latencies_us);
            lat.sort_by(f64::total_cmp);
            let mut wide = std::mem::take(&mut cell.wide_us);
            wide.sort_by(f64::total_cmp);
            rows.push(E15Row {
                devices,
                layout: cell.layout,
                ingested: cell.ingested,
                live_samples: cell.platform.history.len(),
                segments: cell.platform.history.segment_count(),
                queries: lat.len() as u64,
                p50_us: percentile(&lat, 0.50),
                p99_us: percentile(&lat, 0.99),
                wide_p50_us: percentile(&wide, 0.50),
                wide_p90_us: percentile(&wide, 0.90),
                wide_p99_us: percentile(&wide, 0.99),
                queries_per_s: if cell.query_secs > 0.0 {
                    lat.len() as f64 / cell.query_secs
                } else {
                    0.0
                },
                segments_pruned: snap
                    .counter("query.segments_pruned")
                    .expect("registered counter"),
                segments_summarized: snap
                    .counter("query.segments_summarized")
                    .expect("registered counter"),
                segments_decoded: snap
                    .counter("query.segments_decoded")
                    .expect("registered counter"),
                retention_ms: cell.retention_secs * 1e3,
                retention_removed: cell.retention_removed,
                responses_match,
            });
            let label = format!("e15/{devices}/{}", cell.layout);
            reports.push(ObsReport::new(&label, seed, snap));
        }
    }
    (E15Result { rows }, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_layouts_agree_and_segment_layer_engages() {
        // Tiny tier keeps the test fast; bench_e15 runs the real sweep.
        let mut t = 0.0f64;
        let mut fake_clock = || {
            t += 1e-6;
            t
        };
        let (r, reports) = e15_read_path_observed(42, &[200], 40, &mut fake_clock);
        assert_eq!(r.rows.len(), 2);
        let flat = r.row(200, "flat").expect("flat row");
        let seg = r.row(200, "segmented").expect("segmented row");
        assert!(flat.responses_match && seg.responses_match);
        assert_eq!(flat.segments, 0, "flat layout must never freeze");
        assert!(seg.segments > 0, "hot series must freeze segments");
        assert!(seg.segments_pruned > 0, "recent windows must skip segments");
        assert!(
            seg.segments_summarized > 0,
            "wide Extremes reads must be served from frozen summaries"
        );
        assert_eq!(
            flat.segments_summarized, 0,
            "flat layout has no summaries to serve from"
        );
        assert_eq!(flat.ingested, seg.ingested);
        assert_eq!(flat.live_samples, seg.live_samples);
        assert_eq!(flat.retention_removed, seg.retention_removed);
        assert_eq!(flat.queries, seg.queries);
        assert!(flat.queries > 0);
        assert_eq!(reports.len(), 2);
        let table = r.report().to_string();
        assert!(table.contains("segmented"));
    }

    #[test]
    fn zipf_head_is_hot() {
        let z = Zipf::new(1_000);
        // The head rank owns ~13% of the s=1 mass at n=1000; u below
        // that maps to rank 0, the deep hot series.
        assert_eq!(z.sample(0.05), 0);
        assert!(z.sample(0.999) > 100);
    }
}
