//! E5 — fog availability under Internet outages; E6 — partial
//! observability; E7 — auth correctness/overhead; E8 — crypto overhead on
//! constrained links; E9 — ledger growth/verification; E11 — platform
//! scaling with device count.

use swamp_codec::ngsi::Entity;
use swamp_core::platform::{DeploymentConfig, Platform};
use swamp_crypto::aead::{NonceSequence, SecretKey, SEAL_OVERHEAD};
use swamp_fog::availability::{AvailabilityTracker, OutageSchedule};
use swamp_fog::sync::{CloudStore, DropPolicy, FogSync};
use swamp_net::link::LinkSpec;
use swamp_net::lpwan::{LpwanConfig, LpwanRadio, TxDecision};
use swamp_net::network::Network;
use swamp_obs::ObsReport;
use swamp_security::access::{Action, Pdp, Policy, Resource};
use swamp_security::identity::IdentityProvider;
use swamp_security::ledger::{Ledger, LifecycleEvent, LifecycleKind};
use swamp_security::profile::CropProfiler;
use swamp_sensors::device::DeviceKind;
use swamp_sim::{SimDuration, SimRng, SimTime};

use crate::report::{fmt_f, fmt_pct, Report};

/// E5 results.
#[derive(Clone, Debug)]
pub struct E5Result {
    /// (outage fraction of the day, cloud-only availability, farm-fog
    /// availability, records eventually replicated to cloud under fog).
    pub rows: Vec<(f64, f64, f64, f64)>,
    /// Buffer-size ablation at 50% outage: (buffer capacity, delivered
    /// fraction after reconnect).
    pub buffer_ablation: Vec<(usize, f64)>,
}

impl E5Result {
    /// The main availability table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E5: availability under Internet outages — cloud-only vs farm-fog (48 h, hourly decisions)",
            &["outage_frac", "cloud_only_avail", "farm_fog_avail", "fog_replicated"],
        );
        for (f, c, g, rep) in &self.rows {
            r.push_row(vec![fmt_pct(*f), fmt_pct(*c), fmt_pct(*g), fmt_pct(*rep)]);
        }
        r
    }

    /// The buffer ablation table.
    pub fn ablation_report(&self) -> Report {
        let mut r = Report::new(
            "E5b: fog buffer-size ablation at 50% outage",
            &["buffer_capacity", "history_delivered"],
        );
        for (cap, frac) in &self.buffer_ablation {
            r.push_row(vec![cap.to_string(), fmt_pct(*frac)]);
        }
        r
    }
}

/// Runs E5: hourly service decisions over 48 h with a contiguous outage of
/// the given fraction, for both deployment configs; then the buffer
/// ablation.
pub fn e5_fog_availability(seed: u64) -> E5Result {
    let hours = 48u64;
    let mut rows = Vec::new();
    for outage_frac in [0.0, 0.1, 0.25, 0.5, 0.75] {
        let outage_hours = (hours as f64 * outage_frac) as u64;
        let mut schedule = OutageSchedule::new();
        if outage_hours > 0 {
            schedule.add_outage(
                SimTime::from_hours(6),
                SimTime::from_hours(6 + outage_hours),
            );
        }

        let mut avail = [
            (
                DeploymentConfig::CloudOnly,
                AvailabilityTracker::new(SimDuration::from_hours(1)),
            ),
            (
                DeploymentConfig::FarmFog,
                AvailabilityTracker::new(SimDuration::from_hours(1)),
            ),
        ];
        let mut replicated = 0.0;
        for (config, tracker) in &mut avail {
            let mut platform = Platform::builder(*config).seed(seed).build();
            platform
                .register_device(SimTime::ZERO, "probe-1", DeviceKind::SoilProbe, "owner:e5")
                .expect("fresh platform has no registered devices");
            for h in 0..hours {
                let t = SimTime::from_hours(h);
                platform.set_internet(!schedule.is_down(t));
                // Device publishes hourly telemetry.
                let mut e = Entity::new("urn:swamp:device:probe-1", "SoilProbe");
                e.set("moisture_vwc", 0.2 + (h as f64 * 0.001));
                e.set("seq", h as f64);
                let _ = platform.device_publish(t, "probe-1", &e);
                platform.pump(t + SimDuration::from_mins(30));
                tracker.record(platform.service_point());
            }
            // Post-outage: restore the uplink and let replication drain.
            platform.set_internet(true);
            for extra in 0..24 {
                platform.pump(SimTime::from_hours(hours + extra));
            }
            if *config == DeploymentConfig::FarmFog {
                let got = platform
                    .cloud_replica()
                    .map(|c| c.record_count() as f64)
                    .unwrap_or(0.0);
                // Against what actually ingested (LPWAN loses some frames).
                let ingested = platform
                    .observe()
                    .counter("ingest.accepted")
                    .expect("registered counter") as f64;
                replicated = if ingested > 0.0 { got / ingested } else { 1.0 };
            }
        }
        rows.push((
            outage_frac,
            avail[0].1.availability(),
            avail[1].1.availability(),
            replicated,
        ));
    }

    // Buffer ablation: 1000 updates created during an outage; how many
    // survive to the cloud for various buffer capacities?
    let mut buffer_ablation = Vec::new();
    for capacity in [50usize, 100, 250, 500, 1000] {
        let mut net = Network::new(seed ^ capacity as u64);
        net.add_node("fog");
        net.add_node("cloud");
        net.connect("fog", "cloud", LinkSpec::rural_internet());
        net.set_link_up(&"fog".into(), &"cloud".into(), false);
        let mut sync = FogSync::builder("fog", "cloud")
            .capacity(capacity)
            .drop_policy(DropPolicy::Oldest)
            .base_timeout(SimDuration::from_secs(30))
            .backoff(1.0, SimDuration::from_secs(30))
            .jitter(0.0)
            .build();
        let mut cloud = CloudStore::new("cloud");
        for i in 0..1000u64 {
            let _ = sync.enqueue(SimTime::from_secs(i), &format!("k{i}"), vec![0u8; 16]);
        }
        net.set_link_up(&"fog".into(), &"cloud".into(), true);
        let mut now = SimTime::from_secs(2000);
        for _ in 0..100 {
            sync.sync_round(&mut net, now, 64);
            now += SimDuration::from_secs(2);
            net.advance_to(now);
            cloud.process(&mut net, now);
            now += SimDuration::from_secs(2);
            net.advance_to(now);
            sync.poll_acks(&mut net, now);
            now += SimDuration::from_secs(30);
            if sync.pending() == 0 {
                break;
            }
        }
        buffer_ablation.push((capacity, cloud.record_count() as f64 / 1000.0));
    }

    E5Result {
        rows,
        buffer_ablation,
    }
}

/// E6 results.
#[derive(Clone, Debug)]
pub struct E6Result {
    /// (sensors per 32 zones, coverage, profile MAE in VWC units, required
    /// detection margin, tamper-detector FPR without margin, with margin).
    pub rows: Vec<(usize, f64, f64, f64, f64, f64)>,
}

impl E6Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E6: partial observability — sensor density vs profile fidelity and detector margins (32 zones)",
            &["sensors", "coverage", "profile_mae", "margin", "fpr_no_margin", "fpr_with_margin"],
        );
        for (n, cov, mae, margin, fpr0, fpr1) in &self.rows {
            r.push_row(vec![
                n.to_string(),
                fmt_pct(*cov),
                fmt_f(*mae, 4),
                fmt_f(*margin, 4),
                fmt_pct(*fpr0),
                fmt_pct(*fpr1),
            ]);
        }
        r
    }
}

/// Runs E6: spatially correlated fields sampled at varying density; a naive
/// cross-check that alarms when |estimate − reading| exceeds a fixed 0.02
/// threshold false-alarms on honest data unless widened by the profiler's
/// margin.
pub fn e6_partial_view(seed: u64) -> E6Result {
    let zones = 32;
    let trials = 60;
    let profiler = CropProfiler::new(zones);
    let mut rows = Vec::new();
    for sensors in [32usize, 16, 8, 4, 2] {
        let mut rng = SimRng::seed_from(seed ^ sensors as u64);
        let mut mae_sum = 0.0;
        let mut fpr0_hits = 0u64;
        let mut fpr1_hits = 0u64;
        let mut checks = 0u64;
        let mut field_sd_sum = 0.0;
        for _ in 0..trials {
            // Spatially correlated field.
            let mut truth = Vec::with_capacity(zones);
            let mut x = 0.25;
            for _ in 0..zones {
                x = (x + rng.normal_with(0.0, 0.012)).clamp(0.08, 0.42);
                truth.push(x);
            }
            let mean = truth.iter().sum::<f64>() / zones as f64;
            let sd = (truth.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / zones as f64).sqrt();
            field_sd_sum += sd;

            let step = zones / sensors;
            let readings: Vec<(usize, f64)> = (0..sensors)
                .map(|i| {
                    let z = i * step;
                    (z, truth[z] + rng.normal_with(0.0, 0.005))
                })
                .collect();
            let profile = profiler.build(&readings);
            mae_sum += profile.mean_abs_error(&truth);

            // Honest spot-checks in unobserved zones: a fresh manual reading
            // vs the interpolated estimate.
            let margin = CropProfiler::detection_margin(profile.coverage(), sd);
            for (z, &truth_z) in truth.iter().enumerate() {
                if profile.observed[z] {
                    continue;
                }
                let est = match profile.estimates[z] {
                    Some(e) => e,
                    None => continue,
                };
                let honest_reading = truth_z + rng.normal_with(0.0, 0.005);
                checks += 1;
                let err = (honest_reading - est).abs();
                if err > 0.02 {
                    fpr0_hits += 1;
                }
                if err > 0.02 + margin {
                    fpr1_hits += 1;
                }
            }
        }
        let coverage = sensors as f64 / zones as f64;
        let field_sd = field_sd_sum / trials as f64;
        rows.push((
            sensors,
            coverage,
            mae_sum / trials as f64,
            CropProfiler::detection_margin(coverage, field_sd),
            if checks == 0 {
                0.0
            } else {
                fpr0_hits as f64 / checks as f64
            },
            if checks == 0 {
                0.0
            } else {
                fpr1_hits as f64 / checks as f64
            },
        ));
    }
    E6Result { rows }
}

/// E7 results.
#[derive(Clone, Debug)]
pub struct E7Result {
    /// Authorization decision matrix rows: (scenario, permitted).
    pub matrix: Vec<(String, bool)>,
    /// Token validations performed in the throughput probe.
    pub validations: u64,
}

impl E7Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E7: OAuth2 + PEP/PDP authorization matrix",
            &["scenario", "permitted"],
        );
        for (s, p) in &self.matrix {
            r.push_row(vec![s.clone(), p.to_string()]);
        }
        r
    }
}

/// Runs E7: the ownership/policy matrix the paper requires ("each owner
/// controls their data"), plus a bulk validation count for the bench.
pub fn e7_auth(_seed: u64) -> E7Result {
    let mut idm = IdentityProvider::new(b"e7-key", SimDuration::from_hours(1));
    idm.register_user("maria", "pw", &["owner:guaspari"]);
    idm.register_user("carlos", "pw", &["owner:matopiba"]);
    idm.register_user("ana", "pw", &["agronomist"]);
    idm.register_client("scheduler", "secret", &["actuator:command"]);

    let mut pdp = Pdp::new();
    pdp.add_policy(Policy::new(
        swamp_security::access::Effect::Allow,
        swamp_security::access::SubjectMatch::HasScope("role:agronomist".into()),
        "urn:swamp:guaspari:",
        &[Action::Read],
    ));
    pdp.add_policy(Policy::new(
        swamp_security::access::Effect::Allow,
        swamp_security::access::SubjectMatch::Exact("client:scheduler".into()),
        "urn:swamp:",
        &[Action::Command],
    ));

    let now = SimTime::ZERO;
    let (maria, _) = idm
        .password_grant(now, "maria", "pw")
        .expect("maria was registered above");
    let (carlos, _) = idm
        .password_grant(now, "carlos", "pw")
        .expect("carlos was registered above");
    let (ana, _) = idm
        .password_grant(now, "ana", "pw")
        .expect("ana was registered above");
    let sched = idm
        .client_credentials_grant(now, "scheduler", "secret", &["actuator:command"])
        .expect("scheduler client was registered above");

    let guaspari_probe = Resource::new("urn:swamp:guaspari:probe:1", "owner:guaspari");
    let matopiba_pivot = Resource::new("urn:swamp:matopiba:pivot:1", "owner:matopiba");

    let mut matrix = Vec::new();
    let mut check =
        |label: &str, token: &swamp_security::identity::Token, res: &Resource, action: Action| {
            let info = idm.validate(now, token).expect("valid token");
            let d = pdp.decide(&info, res, action);
            matrix.push((label.to_owned(), d.is_permit()));
        };
    check(
        "owner reads own farm data",
        &maria,
        &guaspari_probe,
        Action::Read,
    );
    check(
        "owner reads OTHER farm data",
        &maria,
        &matopiba_pivot,
        Action::Read,
    );
    check(
        "other owner reads guaspari",
        &carlos,
        &guaspari_probe,
        Action::Read,
    );
    check(
        "agronomist reads guaspari (policy)",
        &ana,
        &guaspari_probe,
        Action::Read,
    );
    check(
        "agronomist commands guaspari",
        &ana,
        &guaspari_probe,
        Action::Command,
    );
    check(
        "scheduler commands pivot",
        &sched,
        &matopiba_pivot,
        Action::Command,
    );
    check(
        "scheduler reads pivot data",
        &sched,
        &matopiba_pivot,
        Action::Read,
    );

    // Bulk validation probe.
    let mut validations = 0;
    for _ in 0..10_000 {
        if idm.validate(now, &maria).is_ok() {
            validations += 1;
        }
    }
    E7Result {
        matrix,
        validations,
    }
}

/// E8 results.
#[derive(Clone, Debug)]
pub struct E8Result {
    /// (payload bytes, sealed bytes, overhead fraction, plain airtime ms,
    /// sealed airtime ms, max msgs/hour plain, max msgs/hour sealed).
    pub rows: Vec<(usize, usize, f64, u64, u64, u64, u64)>,
}

impl E8Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E8: crypto overhead on the LPWAN link (SF9/125kHz, 1% duty cycle)",
            &[
                "payload_B",
                "sealed_B",
                "overhead",
                "airtime_plain_ms",
                "airtime_sealed_ms",
                "msgs_per_h_plain",
                "msgs_per_h_sealed",
            ],
        );
        for (p, s, o, ap, as_, mp, ms) in &self.rows {
            r.push_row(vec![
                p.to_string(),
                s.to_string(),
                fmt_pct(*o),
                ap.to_string(),
                as_.to_string(),
                mp.to_string(),
                ms.to_string(),
            ]);
        }
        r
    }
}

/// Runs E8: seals representative payload sizes and computes the airtime and
/// duty-cycle budget cost of the confidentiality the paper mandates.
pub fn e8_crypto(seed: u64) -> E8Result {
    let key = SecretKey::derive(&seed.to_be_bytes(), "e8");
    let mut nonces = NonceSequence::new(1);
    let cfg = LpwanConfig::default();
    let mut rows = Vec::new();
    for payload_len in [16usize, 48, 96, 160] {
        let payload = vec![0x5Au8; payload_len];
        let sealed = key.seal(&nonces.next_nonce(), b"dev", &payload);
        assert_eq!(sealed.len(), payload_len + SEAL_OVERHEAD);
        let airtime_plain = cfg.airtime(payload_len);
        let airtime_sealed = cfg.airtime(sealed.len());
        // Duty-cycle budget: 1% of an hour = 36 s of airtime.
        let budget_ms = 36_000.0;
        rows.push((
            payload_len,
            sealed.len(),
            sealed.len() as f64 / payload_len as f64 - 1.0,
            airtime_plain.as_millis(),
            airtime_sealed.as_millis(),
            (budget_ms / airtime_plain.as_millis() as f64) as u64,
            (budget_ms / airtime_sealed.as_millis() as f64) as u64,
        ));
    }
    E8Result { rows }
}

/// E9 results.
#[derive(Clone, Debug)]
pub struct E9Result {
    /// (devices, blocks, events, chain verification ok, bytes-equivalent
    /// event count per device audited).
    pub rows: Vec<(usize, u64, usize, bool, usize)>,
}

impl E9Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E9: device-lifecycle ledger growth and verification",
            &[
                "devices",
                "blocks",
                "events",
                "verify_ok",
                "events_per_device",
            ],
        );
        for (d, b, e, ok, per) in &self.rows {
            r.push_row(vec![
                d.to_string(),
                b.to_string(),
                e.to_string(),
                ok.to_string(),
                per.to_string(),
            ]);
        }
        r
    }
}

/// Runs E9: provisions fleets of devices through a full lifecycle and
/// verifies the chain.
pub fn e9_ledger(seed: u64) -> E9Result {
    let mut rows = Vec::new();
    for devices in [10usize, 50, 200] {
        let mut ledger = Ledger::new();
        ledger.register_authority("consortium", &seed.to_be_bytes());
        let mut total_events = 0;
        for batch in 0..devices / 10 {
            let mut events = Vec::new();
            for i in 0..10 {
                let id = format!("dev-{}", batch * 10 + i);
                events.push(LifecycleEvent {
                    device_id: id.clone(),
                    kind: LifecycleKind::Manufactured {
                        hw_rev: "B1".into(),
                    },
                    at: SimTime::from_hours(batch as u64),
                });
                events.push(LifecycleEvent {
                    device_id: id.clone(),
                    kind: LifecycleKind::Provisioned {
                        owner: "owner:pilot".into(),
                    },
                    at: SimTime::from_hours(batch as u64),
                });
                events.push(LifecycleEvent {
                    device_id: id,
                    kind: LifecycleKind::KeyRotated { epoch: 1 },
                    at: SimTime::from_hours(batch as u64 + 1),
                });
            }
            total_events += events.len();
            ledger
                .append("consortium", SimTime::from_hours(batch as u64), events)
                .expect("consortium authority was registered above");
        }
        let ok = ledger.verify().is_ok();
        let audited = ledger.device_history("dev-0").len();
        rows.push((devices, ledger.height(), total_events, ok, audited));
    }
    E9Result { rows }
}

/// E11 results.
#[derive(Clone, Debug)]
pub struct E11Result {
    /// (devices, frames offered, ingest accepted, accept ratio, mean
    /// end-to-end latency ms).
    pub rows: Vec<(usize, u64, u64, f64, f64)>,
    /// Duty-cycle ablation: (duty cycle, frames transmitted of 500 offered
    /// by one chatty device in 1 h).
    pub duty_ablation: Vec<(f64, u64)>,
}

impl E11Result {
    /// The scaling table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E11: platform scaling — devices vs ingest throughput and latency (1 h, 1 msg/min each)",
            &["devices", "offered", "accepted", "accept_ratio", "mean_latency_ms"],
        );
        for (d, o, a, ratio, lat) in &self.rows {
            r.push_row(vec![
                d.to_string(),
                o.to_string(),
                a.to_string(),
                fmt_pct(*ratio),
                fmt_f(*lat, 1),
            ]);
        }
        r
    }

    /// The duty-cycle ablation table.
    pub fn ablation_report(&self) -> Report {
        let mut r = Report::new(
            "E11b: LPWAN duty-cycle ablation (one device offering 500 frames/h)",
            &["duty_cycle", "frames_transmitted"],
        );
        for (duty, tx) in &self.duty_ablation {
            r.push_row(vec![fmt_pct(*duty), tx.to_string()]);
        }
        r
    }
}

/// Runs E11: fleets of probes publish once a minute for an hour into a
/// farm-fog platform; measures accepted updates and latency; then the
/// duty-cycle ablation on the radio model.
pub fn e11_platform_scale(seed: u64) -> E11Result {
    let mut rows = Vec::new();
    for devices in [5usize, 20, 50, 100] {
        let mut platform = Platform::builder(DeploymentConfig::FarmFog)
            .seed(seed ^ devices as u64)
            .build();
        let ids: Vec<String> = (0..devices).map(|i| format!("probe-{i}")).collect();
        for id in &ids {
            platform
                .register_device(SimTime::ZERO, id, DeviceKind::SoilProbe, "owner:scale")
                .expect("unique probe ids");
        }
        let mut offered = 0u64;
        crate::driver::run_rounds(
            &mut platform,
            SimTime::ZERO,
            SimDuration::from_mins(1),
            SimDuration::from_secs(59),
            60,
            |p, minute, t| {
                for (i, id) in ids.iter().enumerate() {
                    let mut e = Entity::new(format!("urn:swamp:device:{id}"), "SoilProbe");
                    e.set("moisture_vwc", 0.2 + i as f64 * 0.001);
                    e.set("seq", minute as f64);
                    if p.device_publish(t + SimDuration::from_millis(i as u64 * 13), id, &e)
                        .is_ok()
                    {
                        offered += 1;
                    }
                }
            },
            |_, _, _| {},
        );
        platform.pump(SimTime::from_hours(2));
        let snap = platform.observe();
        let accepted = snap.counter("ingest.accepted").expect("registered counter");
        let latency = snap
            .summary("net.latency_ms")
            .map(|s| s.stats.mean())
            .unwrap_or(0.0);
        rows.push((
            devices,
            offered,
            accepted,
            accepted as f64 / offered as f64,
            latency,
        ));
    }

    let mut duty_ablation = Vec::new();
    for duty in [0.001, 0.01, 0.1, 1.0] {
        let mut radio = LpwanRadio::new(LpwanConfig {
            duty_cycle: duty,
            ..LpwanConfig::default()
        });
        let mut transmitted = 0u64;
        for i in 0..500u64 {
            let t = SimTime::from_millis(i * 7_200); // 500 frames over 1 h
            if let TxDecision::Granted { .. } = radio.try_transmit(t, 64) {
                transmitted += 1;
            }
        }
        duty_ablation.push((duty, transmitted));
    }

    E11Result {
        rows,
        duty_ablation,
    }
}

/// One devices×deployment cell of the E11c broker-throughput sweep.
#[derive(Clone, Debug)]
pub struct BrokerScaleRow {
    /// `cloud_only` or `farm_fog`.
    pub deployment: &'static str,
    /// Fleet size.
    pub devices: usize,
    /// Entity updates pushed through ingestion.
    pub updates: u64,
    /// Wall-clock time spent in the timed region (ingest + pump + drain).
    pub elapsed_ms: f64,
    /// Updates per wall-clock second.
    pub throughput_per_s: f64,
    /// Mean wall-clock cost per update, microseconds.
    pub mean_update_us: f64,
}

/// E11c results: wall-clock ingest throughput of the broker hot path.
#[derive(Clone, Debug)]
pub struct E11BrokerScaleResult {
    /// One row per (deployment, fleet size).
    pub rows: Vec<BrokerScaleRow>,
}

impl E11BrokerScaleResult {
    /// The devices×deployment throughput/latency table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E11c: broker ingest throughput — post-validation hot path (wall clock, 1 fleet-wide subscriber)",
            &["deployment", "devices", "updates", "elapsed_ms", "updates_per_s", "us_per_update"],
        );
        for row in &self.rows {
            r.push_row(vec![
                row.deployment.to_owned(),
                row.devices.to_string(),
                row.updates.to_string(),
                fmt_f(row.elapsed_ms, 1),
                fmt_f(row.throughput_per_s, 0),
                fmt_f(row.mean_update_us, 2),
            ]);
        }
        r
    }
}

/// Runs E11c: fleets of {100, 1k, 10k} devices (or the given sizes) publish
/// telemetry rounds into both deployment configurations; measures the
/// wall-clock cost of the post-validation hot path — history appends,
/// batched broker upsert with subscriber fan-out, fog replication enqueue,
/// replication pump and notification drain. Radio/crypto are bypassed
/// (`Platform::ingest_entities`) so the number isolates the storage and
/// fan-out layers this PR optimizes, and 10k-device fleets stay feasible.
///
/// The caller supplies the clock: `time_round` receives one round's body
/// and returns the wall-clock seconds it took, and must run the body
/// exactly once. This keeps the library free of ambient time sources —
/// only the `bench_e11` binary (and the unit test) touch
/// `std::time::Instant`.
///
/// # Panics
/// Panics if the fleet subscriber registered at the start of a cell
/// disappears mid-run — impossible unless the broker drops subscriptions.
pub fn e11_broker_scale(
    device_counts: &[usize],
    time_round: impl FnMut(&mut dyn FnMut()) -> f64,
) -> E11BrokerScaleResult {
    e11_broker_scale_observed(device_counts, time_round).0
}

/// Runs E11c and also returns one deterministic [`ObsReport`] per cell
/// (labelled `e11/<deployment>/<devices>`). Wall-clock timing only feeds
/// the bench rows; every instrumented quantity in the reports is sim-time
/// driven, so the reports are byte-identical across runs regardless of
/// machine speed.
///
/// # Panics
/// Same as [`e11_broker_scale`].
pub fn e11_broker_scale_observed(
    device_counts: &[usize],
    mut time_round: impl FnMut(&mut dyn FnMut()) -> f64,
) -> (E11BrokerScaleResult, Vec<ObsReport>) {
    use swamp_core::broker::SubscriptionFilter;
    let mut rows = Vec::new();
    let mut reports = Vec::new();
    for (config, deployment) in [
        (DeploymentConfig::CloudOnly, "cloud_only"),
        (DeploymentConfig::FarmFog, "farm_fog"),
    ] {
        for &devices in device_counts {
            if devices == 0 {
                continue;
            }
            let mut platform = Platform::builder(config).seed(7).build();
            // One fleet-wide subscriber stands in for the irrigation
            // service: every update fans out to it and is drained each
            // round, like `IrrigationService::absorb_notifications`.
            let sub = platform.context.subscribe(SubscriptionFilter {
                entity_type: Some("SoilProbe".into()),
                id_prefix: None,
                watched_attrs: vec![],
            });
            // ~100k updates per cell at the real fleet sizes; the round
            // cap keeps tiny (test-sized) fleets cheap.
            let rounds = (100_000 / devices).clamp(5, 1000);
            let mut drained = Vec::new();
            let mut updates = 0u64;
            let mut secs = 0.0f64;
            for round in 0..rounds {
                let t = SimTime::from_secs(round as u64 * 60);
                let batch: Vec<Entity> = (0..devices)
                    .map(|i| {
                        let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                        e.set("moisture_vwc", 0.2 + (round % 100) as f64 * 0.001);
                        e.set("seq", round as f64);
                        e
                    })
                    .collect();
                let mut batch = Some(batch);
                secs += time_round(&mut || {
                    if let Some(b) = batch.take() {
                        updates += platform.ingest_entities(t, b) as u64;
                    }
                    platform.pump(t);
                    platform
                        .context
                        .drain_notifications_into(sub, &mut drained)
                        .expect("fleet subscriber stays registered");
                });
                drained.clear();
            }
            rows.push(BrokerScaleRow {
                deployment,
                devices,
                updates,
                elapsed_ms: secs * 1e3,
                throughput_per_s: if secs > 0.0 {
                    updates as f64 / secs
                } else {
                    0.0
                },
                mean_update_us: if updates > 0 {
                    secs * 1e6 / updates as f64
                } else {
                    0.0
                },
            });
            let label = format!("e11/{deployment}/{devices}");
            reports.push(ObsReport::new(&label, 7, platform.observe()));
        }
    }
    (E11BrokerScaleResult { rows }, reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_fog_rides_through_outages() {
        let r = e5_fog_availability(42);
        assert_eq!(r.rows.len(), 5);
        // No outage: both fully available.
        assert!((r.rows[0].1 - 1.0).abs() < 1e-9);
        assert!((r.rows[0].2 - 1.0).abs() < 1e-9);
        // Heavy outage: cloud-only degrades ~proportionally, fog stays up.
        let (frac, cloud, fog, replicated) = *r.rows.last().unwrap();
        assert!(cloud < 1.0 - frac + 0.1, "cloud availability {cloud}");
        assert!((fog - 1.0).abs() < 1e-9, "fog availability {fog}");
        assert!(
            replicated > 0.95,
            "replication after reconnect {replicated}"
        );
        // Buffer ablation: bigger buffers deliver more history.
        let first = r.buffer_ablation.first().unwrap().1;
        let last = r.buffer_ablation.last().unwrap().1;
        assert!(last > first, "buffer ablation {:?}", r.buffer_ablation);
        assert!((last - 1.0).abs() < 1e-9, "1000-buffer keeps all");
    }

    #[test]
    fn e6_margin_suppresses_false_alarms() {
        let r = e6_partial_view(42);
        assert_eq!(r.rows.len(), 5);
        // MAE grows as density falls.
        assert!(r.rows[0].2 < r.rows[4].2, "{:?}", r.rows);
        // The naive fixed threshold false-alarms badly at low density; the
        // margin-adjusted one stays low.
        let sparse = r.rows.last().unwrap();
        assert!(sparse.4 > 0.2, "naive FPR at sparse coverage {}", sparse.4);
        assert!(
            sparse.5 < sparse.4 / 2.0,
            "margin must cut FPR: {:?}",
            sparse
        );
    }

    #[test]
    fn e7_matrix_is_correct() {
        let r = e7_auth(0);
        let expect = [
            ("owner reads own farm data", true),
            ("owner reads OTHER farm data", false),
            ("other owner reads guaspari", false),
            ("agronomist reads guaspari (policy)", true),
            ("agronomist commands guaspari", false),
            ("scheduler commands pivot", true),
            ("scheduler reads pivot data", false),
        ];
        assert_eq!(r.matrix.len(), expect.len());
        for ((label, got), (elabel, want)) in r.matrix.iter().zip(expect) {
            assert_eq!(label, elabel);
            assert_eq!(*got, want, "{label}");
        }
        assert_eq!(r.validations, 10_000);
    }

    #[test]
    fn e8_overhead_shrinks_with_payload() {
        let r = e8_crypto(42);
        assert_eq!(r.rows.len(), 4);
        // Constant 44-byte overhead: relative cost falls with size.
        assert!(r.rows[0].2 > r.rows[3].2);
        for row in &r.rows {
            assert_eq!(row.1, row.0 + SEAL_OVERHEAD);
            assert!(row.4 > row.3, "sealed airtime exceeds plain");
            assert!(row.6 <= row.5, "sealed budget is tighter");
            assert!(row.6 > 0, "still usable after sealing");
        }
    }

    #[test]
    fn e9_ledger_verifies_at_scale() {
        let r = e9_ledger(42);
        for (devices, blocks, events, ok, per_device) in &r.rows {
            assert!(ok, "{devices} devices: chain must verify");
            assert_eq!(*events, devices * 3);
            assert_eq!(*per_device, 3);
            assert_eq!(*blocks, (devices / 10) as u64 + 1); // + genesis
        }
    }

    #[test]
    fn e11_broker_scale_covers_both_deployments() {
        // Tiny fleets keep the test fast; the bench_e11 binary runs the
        // real 100/1k/10k sweep.
        let r = e11_broker_scale(&[3, 7], |run| {
            let start = std::time::Instant::now();
            run();
            start.elapsed().as_secs_f64()
        });
        assert_eq!(r.rows.len(), 4, "2 deployments x 2 fleet sizes");
        for row in &r.rows {
            let rounds = (100_000 / row.devices).clamp(5, 1000) as u64;
            assert_eq!(row.updates, rounds * row.devices as u64);
            assert!(row.throughput_per_s > 0.0);
            assert!(row.mean_update_us > 0.0);
        }
        assert!(r.rows.iter().any(|r| r.deployment == "cloud_only"));
        assert!(r.rows.iter().any(|r| r.deployment == "farm_fog"));
        let table = r.report().to_string();
        assert!(table.contains("updates_per_s"));
    }

    #[test]
    fn e11_scaling_holds_up() {
        let r = e11_platform_scale(42);
        assert_eq!(r.rows.len(), 4);
        for (devices, offered, accepted, ratio, latency) in &r.rows {
            assert_eq!(*offered, *devices as u64 * 60);
            assert!(*accepted > 0);
            // LPWAN loss ~2%: accept ratio should stay near 1 − loss.
            assert!(*ratio > 0.9, "{devices} devices: ratio {ratio}");
            assert!(*latency > 0.0);
        }
        // Duty-cycle ablation: more duty ⇒ more frames through.
        let tx: Vec<u64> = r.duty_ablation.iter().map(|x| x.1).collect();
        assert!(tx[0] < tx[1] && tx[1] < tx[2], "{tx:?}");
        assert_eq!(*tx.last().unwrap(), 500, "100% duty passes everything");
    }
}
