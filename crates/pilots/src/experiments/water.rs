//! E1 — smart scheduling + VRI water/energy savings (MATOPIBA), and
//! E10 — canal distribution optimization (CBEC).

use swamp_agro::crop::Crop;
use swamp_agro::weather::ClimateProfile;
use swamp_irrigation::network::DistributionNetwork;
use swamp_irrigation::schedule::{EtReplacement, FixedCalendar, IrrigationPolicy, ThresholdRefill};
use swamp_irrigation::source::WaterSource;
use swamp_sim::SimRng;

use crate::report::{fmt_f, fmt_pct, Report};
use crate::season::{heterogeneous_zones, run_season_mode, ApplicationMode, SeasonConfig};

/// One E1 configuration's season totals.
#[derive(Clone, Debug)]
pub struct E1Row {
    /// Configuration label.
    pub label: String,
    /// Water used, m³.
    pub water_m3: f64,
    /// Pumping energy, kWh.
    pub energy_kwh: f64,
    /// Mean relative yield.
    pub yield_rel: f64,
}

/// E1 results.
#[derive(Clone, Debug)]
pub struct E1Result {
    /// Policy × application-mode comparison rows.
    pub rows: Vec<E1Row>,
    /// VRI zone-count ablation: (zones, water_m3).
    pub ablation: Vec<(usize, f64)>,
}

impl E1Result {
    /// Water saved by smart VRI (soil-state-driven threshold policy)
    /// relative to the fixed-uniform baseline.
    pub fn headline_water_saving(&self) -> f64 {
        let baseline = &self.rows[0];
        let smart = self
            .rows
            .iter()
            .find(|r| r.label == "threshold-refill / VRI")
            .expect("smart row present");
        1.0 - smart.water_m3 / baseline.water_m3
    }

    /// Energy saved by smart VRI relative to the fixed-uniform baseline.
    pub fn headline_energy_saving(&self) -> f64 {
        let baseline = &self.rows[0];
        let smart = self
            .rows
            .iter()
            .find(|r| r.label == "threshold-refill / VRI")
            .expect("smart row present");
        1.0 - smart.energy_kwh / baseline.energy_kwh
    }

    /// The main comparison table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E1: MATOPIBA irrigation policy x application mode (soybean season, 16-zone 100 ha pivot)",
            &["configuration", "water_m3", "energy_kWh", "rel_yield", "water_saving"],
        );
        let base = self.rows[0].water_m3;
        for row in &self.rows {
            r.push_row(vec![
                row.label.clone(),
                fmt_f(row.water_m3, 0),
                fmt_f(row.energy_kwh, 0),
                fmt_f(row.yield_rel, 3),
                fmt_pct(1.0 - row.water_m3 / base),
            ]);
        }
        r
    }

    /// The VRI-resolution ablation table.
    pub fn ablation_report(&self) -> Report {
        let mut r = Report::new(
            "E1b: VRI control-resolution ablation (16-zone field, threshold policy)",
            &["control_groups", "water_m3", "saving_vs_uniform"],
        );
        let base = self.ablation[0].1;
        for (zones, water) in &self.ablation {
            r.push_row(vec![
                zones.to_string(),
                fmt_f(*water, 0),
                fmt_pct(1.0 - water / base),
            ]);
        }
        r
    }
}

/// Runs E1.
pub fn e1_water_energy(seed: u64) -> E1Result {
    let mk_config =
        |zones: usize, policy: Box<dyn Fn() -> Box<dyn IrrigationPolicy>>| -> SeasonConfig {
            let mut rng = SimRng::seed_from(seed ^ 0xE1);
            SeasonConfig {
                climate: ClimateProfile::barreiras(),
                crop: Crop::soybean(),
                zones: heterogeneous_zones(zones, 100.0 / zones as f64, &mut rng),
                sowing_doy: 121,
                source: WaterSource::matopiba_well(),
                policy,
            }
        };

    #[derive(Clone, Copy)]
    enum PolicyKind {
        Fixed,
        Threshold,
        Et,
    }
    fn factory(kind: PolicyKind) -> Box<dyn Fn() -> Box<dyn IrrigationPolicy>> {
        match kind {
            PolicyKind::Fixed => Box::new(|| Box::new(FixedCalendar::new(3, 25.0))),
            PolicyKind::Threshold => Box::new(|| Box::new(ThresholdRefill::new(1.0))),
            PolicyKind::Et => Box::new(|| Box::new(EtReplacement::new(1.0))),
        }
    }
    let policies = [
        ("fixed-calendar", PolicyKind::Fixed),
        ("threshold-refill", PolicyKind::Threshold),
        ("et-replacement", PolicyKind::Et),
    ];

    let mut rows = Vec::new();
    for (name, kind) in policies {
        for (mode, mode_name) in [
            (ApplicationMode::UniformMax, "uniform"),
            (ApplicationMode::PerZone, "VRI"),
        ] {
            let config = mk_config(16, factory(kind));
            let outcome = run_season_mode(&config, seed, mode);
            rows.push(E1Row {
                label: format!("{name} / {mode_name}"),
                water_m3: outcome.account.volume_m3,
                energy_kwh: outcome.account.energy_kwh,
                yield_rel: outcome.mean_yield(),
            });
        }
    }

    // Ablation: the same heterogeneous 16-zone field, controlled at
    // decreasing VRI resolution (1 group = a plain uniform pivot). The
    // soil-state-driven threshold policy is what makes resolution matter.
    let ablation = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&groups| {
            let config = mk_config(16, Box::new(|| Box::new(ThresholdRefill::new(1.0))));
            let outcome = run_season_mode(&config, seed, ApplicationMode::Grouped(groups));
            (groups, outcome.account.volume_m3)
        })
        .collect();

    E1Result { rows, ablation }
}

/// E10 results: allocation policies under scarcity.
#[derive(Clone, Debug)]
pub struct E10Result {
    /// (supply fraction of demand, greedy fairness, max-min fairness,
    /// greedy worst-farm satisfaction, max-min worst-farm satisfaction).
    pub rows: Vec<(f64, f64, f64, f64, f64)>,
}

impl E10Result {
    /// The table.
    pub fn report(&self) -> Report {
        let mut r = Report::new(
            "E10: CBEC canal allocation — greedy upstream vs SWAMP max-min (20 farms)",
            &[
                "supply/demand",
                "jain_greedy",
                "jain_maxmin",
                "worst_farm_greedy",
                "worst_farm_maxmin",
            ],
        );
        for (s, jg, jm, wg, wm) in &self.rows {
            r.push_row(vec![
                fmt_pct(*s),
                fmt_f(*jg, 3),
                fmt_f(*jm, 3),
                fmt_pct(*wg),
                fmt_pct(*wm),
            ]);
        }
        r
    }
}

/// Builds a 20-farm CBEC-like canal tree and compares allocations across
/// supply levels.
pub fn e10_distribution(seed: u64) -> E10Result {
    let mut rng = SimRng::seed_from(seed ^ 0xE10);
    // Demands: 20 farms, 100–400 m³/day each.
    let demands: Vec<f64> = (0..20).map(|_| rng.uniform_range(100.0, 400.0)).collect();
    let total_demand: f64 = demands.iter().sum();

    let mut rows = Vec::new();
    for supply_frac in [1.2, 1.0, 0.8, 0.6, 0.4] {
        let mut net = DistributionNetwork::new(total_demand * supply_frac);
        // Two trunks of two branches of five farms each.
        let mut farm_ids = Vec::new();
        for t in 0..2 {
            let trunk = net.add_junction(net.root(), total_demand * supply_frac * 0.55);
            for b in 0..2 {
                let branch_capacity = total_demand * supply_frac * 0.30;
                let branch = net.add_junction(trunk, branch_capacity);
                for f in 0..5 {
                    let idx = t * 10 + b * 5 + f;
                    farm_ids.push(net.add_farm(branch, demands[idx]));
                }
            }
        }
        let greedy = net.allocate_greedy_upstream();
        let maxmin = net.allocate_max_min();
        let worst = |alloc: &swamp_irrigation::network::Allocation| {
            alloc
                .per_farm_m3
                .iter()
                .zip(&demands)
                .map(|(a, d)| a / d)
                .fold(f64::INFINITY, f64::min)
        };
        rows.push((
            supply_frac,
            greedy.jain_fairness(&demands),
            maxmin.jain_fairness(&demands),
            worst(&greedy),
            worst(&maxmin),
        ));
    }
    E10Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_smart_vri_saves_water_and_energy() {
        let r = e1_water_energy(42);
        assert_eq!(r.rows.len(), 6);
        assert!(
            r.headline_water_saving() > 0.15,
            "water saving {:.2}",
            r.headline_water_saving()
        );
        assert!(
            r.headline_energy_saving() > 0.15,
            "energy saving {:.2}",
            r.headline_energy_saving()
        );
        // Yield within 10 points of baseline for the smart config.
        let base_yield = r.rows[0].yield_rel;
        let smart = r
            .rows
            .iter()
            .find(|row| row.label == "threshold-refill / VRI")
            .unwrap();
        assert!(smart.yield_rel > base_yield - 0.10);
        // Report renders.
        let text = r.report().to_string();
        assert!(text.contains("E1"));
        assert!(text.contains("et-replacement / VRI"));
    }

    #[test]
    fn e1_vri_beats_uniform_per_policy() {
        let r = e1_water_energy(7);
        for pair in r.rows.chunks(2) {
            let uniform = &pair[0];
            let vri = &pair[1];
            assert!(
                vri.water_m3 <= uniform.water_m3 + 1e-6,
                "{} {:.0} vs {} {:.0}",
                vri.label,
                vri.water_m3,
                uniform.label,
                uniform.water_m3
            );
        }
    }

    #[test]
    fn e1_ablation_monotone_savings() {
        let r = e1_water_energy(11);
        assert_eq!(r.ablation.len(), 5);
        // Finer control ⇒ less water on the same heterogeneous field.
        let uniform = r.ablation[0].1;
        let full_vri = r.ablation[4].1;
        assert!(
            full_vri < uniform * 0.98,
            "16-group VRI {full_vri:.0} should clearly beat uniform {uniform:.0}"
        );
        // And the trend is weakly monotone.
        for pair in r.ablation.windows(2) {
            assert!(
                pair[1].1 <= pair[0].1 * 1.01,
                "ablation not monotone: {:?}",
                r.ablation
            );
        }
        assert!(!r.ablation_report().is_empty());
    }

    #[test]
    fn e10_maxmin_fairer_and_better_for_worst_farm() {
        let r = e10_distribution(42);
        assert_eq!(r.rows.len(), 5);
        // Under scarcity (supply < demand), max-min dominates on fairness
        // and on the worst farm's satisfaction.
        for &(supply, jg, jm, wg, wm) in &r.rows {
            if supply < 1.0 {
                assert!(jm >= jg - 1e-9, "supply {supply}: jain {jm} vs {jg}");
                assert!(wm >= wg - 1e-9, "supply {supply}: worst {wm} vs {wg}");
            }
        }
        let scarce = r.rows.last().unwrap();
        assert!(
            scarce.2 - scarce.1 > 0.05,
            "at 40% supply max-min should be clearly fairer: {:?}",
            scarce
        );
        assert!(r.report().to_string().contains("E10"));
    }

    #[test]
    fn deterministic() {
        let a = e1_water_energy(3);
        let b = e1_water_energy(3);
        assert_eq!(a.rows[0].water_m3, b.rows[0].water_m3);
        let c = e10_distribution(3);
        let d = e10_distribution(3);
        assert_eq!(c.rows, d.rows);
    }
}
