//! E14b shard scale-out throughput: runs the shards×devices sweep and
//! emits `BENCH_e14.json` on stdout (the human-readable table goes to
//! stderr so redirection captures clean JSON).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_e14 --release \
//!             [devices ...] > BENCH_e14.json`
//!
//! Defaults to fleets of 1 000, 10 000 and 100 000 devices, each replayed
//! at 1, 4 and 16 shards. Each cell ingests one update per device and is
//! pumped until every record reaches the cross-shard aggregate store.
//!
//! Honesty note: since the sync engine became O(transmissions +
//! due-timers) per round, total drain work is linear in backlog and the
//! shards all run on one thread — so per-shard speedup is ~1×, not the
//! ~14× the old quadratic engine showed (sharding divided B² into
//! N·(B/N)²). The speedup column is kept to document exactly that; real
//! scale-out now needs parallel shard execution (see ROADMAP).

use swamp_codec::json::Json;
use swamp_obs::ObsReport;
use swamp_pilots::experiments::e14_shard_throughput_observed;

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("bench_e14: fleet sizes must be positive integers, got {arg:?}");
                eprintln!("usage: bench_e14 [devices ...]   (default: 1000 10000 100000)");
                std::process::exit(2);
            }
        }
    }
    if sizes.is_empty() {
        sizes = vec![1_000, 10_000, 100_000];
    }
    // The library is clock-free; the binary owns the wall clock.
    let (result, obs_reports) = e14_shard_throughput_observed(&SHARD_COUNTS, &sizes, |run| {
        let start = std::time::Instant::now();
        run();
        start.elapsed().as_secs_f64()
    });
    eprintln!("{}", result.report());

    // Deterministic per-cell observability snapshots, written next to the
    // bench JSON (which goes to stdout via redirection).
    match std::fs::write(
        "OBS_e14.json",
        ObsReport::array_to_json_string(&obs_reports),
    ) {
        Ok(()) => eprintln!("wrote OBS_e14.json ({} cell reports)", obs_reports.len()),
        Err(e) => eprintln!("bench_e14: could not write OBS_e14.json: {e}"),
    }

    let rows: Vec<Json> = result
        .rows
        .iter()
        .map(|r| {
            // Speedup relative to the 1-shard cell of the same fleet size.
            let speedup = result
                .throughput(1, r.devices)
                .filter(|base| *base > 0.0)
                .map(|base| r.throughput_per_s / base)
                .unwrap_or(0.0);
            Json::object([
                ("shards", Json::Number(r.shards as f64)),
                ("devices", Json::Number(r.devices as f64)),
                ("updates", Json::Number(r.updates as f64)),
                ("pumps", Json::Number(r.pumps as f64)),
                (
                    "elapsed_ms",
                    Json::Number((r.elapsed_ms * 10.0).round() / 10.0),
                ),
                ("updates_per_s", Json::Number(r.throughput_per_s.round())),
                (
                    "speedup_vs_1shard",
                    Json::Number((speedup * 100.0).round() / 100.0),
                ),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("e14_shard_throughput".into())),
        (
            "description",
            Json::String(
                "Wall-clock time to fully replicate one update per device \
                 through ingest, per-shard fog sync and cross-shard cloud \
                 aggregation, per shard count and fleet size."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        ("rows", Json::Array(rows)),
    ]);
    println!("{}", doc.to_pretty_string());
}
