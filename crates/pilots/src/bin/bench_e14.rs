//! E14b shard scale-out throughput: runs the shards×workers×devices sweep
//! and emits `BENCH_e14.json` on stdout (the human-readable table goes to
//! stderr so redirection captures clean JSON).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_e14 --release \
//!             [--check] [devices ...] > BENCH_e14.json`
//!
//! Defaults to fleets of 1 000, 10 000 and 100 000 devices, each replayed
//! at 1, 4 and 16 shards under 1, 2 and 8 worker threads (cells with more
//! workers than shards are skipped — they would only time idle threads).
//! Each cell ingests one update per device and is pumped until every
//! record reaches the cross-shard aggregate store.
//!
//! Honesty note: since the sync engine became O(transmissions +
//! due-timers) per round, total drain work is linear in backlog — so
//! single-threaded sharding yields ~1× speedup, and any real gain must
//! come from the worker pool. Whether it *can* depends on the machine:
//! the JSON records `available_parallelism`, and `--check` gates
//! accordingly — on ≥2 cores the best parallel schedule must beat the
//! serial one at the largest fleet; on 1 core it can only bound the
//! scheduling overhead (parallel ≥ half of serial), because no speedup is
//! physically available. DESIGN.md §14 separates the per-shard working-set
//! effect from true core scaling.

use swamp_codec::json::Json;
use swamp_obs::ObsReport;
use swamp_pilots::experiments::e14_shard_throughput_observed;
use swamp_pilots::experiments::scale::E14ThroughputResult;

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `--check` gate: full replication everywhere, and at the largest
/// fleet the parallel schedule must beat serial where the hardware can
/// express a speedup (≥2 cores). On 1 core there is nothing to win —
/// timeslicing two workers over one cache and one allocator can cost up
/// to ~3× on big working sets — so the gate only bounds pathological
/// collapse (parallel ≥ ¼ of serial).
fn check(result: &E14ThroughputResult, sizes: &[usize]) -> Result<(), String> {
    for row in &result.rows {
        if row.updates != row.devices as u64 {
            return Err(format!(
                "{} shards / {} workers / {} devices: only {} of {} updates replicated",
                row.shards, row.workers, row.devices, row.updates, row.devices
            ));
        }
    }
    let largest = *sizes.iter().max().ok_or("empty fleet-size list")?;
    let floor = if cores() >= 2 { 1.0 } else { 0.25 };
    for &shards in SHARD_COUNTS.iter().filter(|&&s| s >= 2) {
        let serial = result
            .throughput(shards, 1, largest)
            .ok_or_else(|| format!("missing serial cell at {shards} shards"))?;
        let best_parallel = result
            .rows
            .iter()
            .filter(|r| r.shards == shards && r.workers >= 2 && r.devices == largest)
            .map(|r| r.throughput_per_s)
            .fold(f64::NAN, f64::max);
        // NaN (no parallel cell found at this shard count) must fail too.
        if best_parallel.is_nan() || best_parallel < serial * floor {
            return Err(format!(
                "{shards} shards / {largest} devices: best parallel throughput \
                 {best_parallel:.0}/s < {floor}x serial {serial:.0}/s ({} cores)",
                cores()
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut check_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_mode = true;
            continue;
        }
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("bench_e14: fleet sizes must be positive integers, got {arg:?}");
                eprintln!(
                    "usage: bench_e14 [--check] [devices ...]   (default: 1000 10000 100000)"
                );
                std::process::exit(2);
            }
        }
    }
    if sizes.is_empty() {
        sizes = vec![1_000, 10_000, 100_000];
    }
    // The library is clock-free; the binary owns the wall clock.
    let (result, obs_reports) =
        e14_shard_throughput_observed(&SHARD_COUNTS, &WORKER_COUNTS, &sizes, |run| {
            let start = std::time::Instant::now();
            run();
            start.elapsed().as_secs_f64()
        });
    eprintln!("{}", result.report());

    // Deterministic per-cell observability snapshots, written next to the
    // bench JSON (which goes to stdout via redirection). `--check` runs
    // (CI, often with reduced fleets) guard throughput only and must not
    // overwrite the committed full-sweep artifact.
    if !check_mode {
        match std::fs::write(
            "OBS_e14.json",
            ObsReport::array_to_json_string(&obs_reports),
        ) {
            Ok(()) => eprintln!("wrote OBS_e14.json ({} cell reports)", obs_reports.len()),
            Err(e) => eprintln!("bench_e14: could not write OBS_e14.json: {e}"),
        }
    }

    let rows: Vec<Json> = result
        .rows
        .iter()
        .map(|r| {
            // Speedup relative to the serial 1-shard cell of the same
            // fleet size, and relative to the serial schedule of the same
            // shard count (isolating what the worker pool buys).
            let speedup = result
                .throughput(1, 1, r.devices)
                .filter(|base| *base > 0.0)
                .map(|base| r.throughput_per_s / base)
                .unwrap_or(0.0);
            let speedup_vs_serial = result
                .throughput(r.shards, 1, r.devices)
                .filter(|base| *base > 0.0)
                .map(|base| r.throughput_per_s / base)
                .unwrap_or(0.0);
            Json::object([
                ("shards", Json::Number(r.shards as f64)),
                ("workers", Json::Number(r.workers as f64)),
                ("devices", Json::Number(r.devices as f64)),
                ("updates", Json::Number(r.updates as f64)),
                ("pumps", Json::Number(r.pumps as f64)),
                (
                    "elapsed_ms",
                    Json::Number((r.elapsed_ms * 10.0).round() / 10.0),
                ),
                ("updates_per_s", Json::Number(r.throughput_per_s.round())),
                (
                    "speedup_vs_1shard",
                    Json::Number((speedup * 100.0).round() / 100.0),
                ),
                (
                    "speedup_vs_serial",
                    Json::Number((speedup_vs_serial * 100.0).round() / 100.0),
                ),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("e14_shard_throughput".into())),
        (
            "description",
            Json::String(
                "Wall-clock time to fully replicate one update per device \
                 through ingest, per-shard fog sync and cross-shard cloud \
                 aggregation, per shard count, worker-thread count and \
                 fleet size."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        ("available_parallelism", Json::Number(cores() as f64)),
        ("rows", Json::Array(rows)),
    ]);
    println!("{}", doc.to_pretty_string());

    if check_mode {
        match check(&result, &sizes) {
            Ok(()) => eprintln!("bench_e14 --check: ok ({} cores)", cores()),
            Err(msg) => {
                eprintln!("bench_e14 --check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
