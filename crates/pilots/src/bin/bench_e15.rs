//! E15 columnar read path: runs the mixed read/write sweep (flat vs
//! segmented layout per device tier) and emits `BENCH_e15.json` on
//! stdout (the human-readable table goes to stderr so redirection
//! captures clean JSON).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_e15 --release \
//!             [--check] [devices ...] > BENCH_e15.json`
//!
//! Defaults to 1 000, 10 000 and 100 000 devices. Each tier drives two
//! platforms — flat history (pre-segment layout) and 64-sample columnar
//! segments — through identical rounds of hot-tier ingest, zipfian query
//! bursts and retention passes.
//!
//! The `--check` gate holds the four claims the layout makes:
//!
//! 1. **Equivalence** — both layouts answer the end-state query battery
//!    byte-identically (hard, machine-independent);
//! 2. **Summary path engages** — at the largest tier the segmented store
//!    must have pruned whole segments on recent windows *and* answered
//!    wide [`Extremes`] windows from frozen summaries without decoding;
//! 3. **Wide reads win** — segmented wide-read p90 must beat flat's at
//!    the largest tier. On the full-horizon Extremes reads the flat
//!    layout walks every in-window sample while the segmented layout
//!    folds one frozen summary per segment. The gate statistic is the
//!    p90 *of the wide reads only*: zipfian mass puts the top decile of
//!    wide reads on deep hot series at every tier (hot-series depth is
//!    set by the round schedule, not the device count), and p90 sits
//!    below the scheduler-noise outliers that make the overall p99
//!    layout-independent;
//! 4. **Retention parity** — with the round-aligned horizon no segment
//!    straddles the cutoff, so segmented retention is whole-segment
//!    drops and must stay within 1.3× of the flat memmove (both are
//!    dominated by the cold per-series floor). Aggregate query
//!    throughput must hold at least 10k/s.
//!
//! [`Extremes`]: swamp_core::query::QueryRequest::Extremes

use swamp_codec::json::Json;
use swamp_obs::ObsReport;
use swamp_pilots::experiments::{e15_read_path_observed, E15Result};

const QUERIES_PER_ROUND: usize = 400;

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn check(result: &E15Result, sizes: &[usize]) -> Result<(), String> {
    for row in &result.rows {
        if !row.responses_match {
            return Err(format!(
                "{} devices / {}: end-state query battery diverged between layouts",
                row.devices, row.layout
            ));
        }
        if row.queries == 0 {
            return Err(format!(
                "{} devices / {}: no queries ran",
                row.devices, row.layout
            ));
        }
    }
    let largest = *sizes.iter().max().ok_or("empty tier list")?;
    let flat = result
        .row(largest, "flat")
        .ok_or_else(|| format!("missing flat row at {largest} devices"))?;
    let seg = result
        .row(largest, "segmented")
        .ok_or_else(|| format!("missing segmented row at {largest} devices"))?;
    if seg.segments_pruned == 0 {
        return Err(format!(
            "{largest} devices: segmented layout never pruned a segment — \
             recent-window pruning is not engaging"
        ));
    }
    if seg.segments_summarized == 0 {
        return Err(format!(
            "{largest} devices: no segment was answered from its frozen \
             summary — the wide-read path is not engaging"
        ));
    }
    if seg.wide_p90_us >= flat.wide_p90_us {
        return Err(format!(
            "{largest} devices: segmented wide-read p90 {:.1} µs did not beat \
             flat's {:.1} µs — summaries should beat the uncompacted scan",
            seg.wide_p90_us, flat.wide_p90_us
        ));
    }
    if seg.p99_us > flat.p99_us * 4.0 {
        return Err(format!(
            "{largest} devices: segmented overall p99 {:.1} µs regressed past \
             4x flat p99 {:.1} µs",
            seg.p99_us, flat.p99_us
        ));
    }
    if seg.retention_ms > flat.retention_ms * 1.3 {
        return Err(format!(
            "{largest} devices: segmented retention ({:.2} ms) regressed past \
             1.3x the flat scan-and-shift ({:.2} ms)",
            seg.retention_ms, flat.retention_ms
        ));
    }
    for row in [flat, seg] {
        if row.queries_per_s < 10_000.0 {
            return Err(format!(
                "{largest} devices / {}: query throughput {:.0}/s below the 10k/s floor",
                row.layout, row.queries_per_s
            ));
        }
    }
    Ok(())
}

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut check_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_mode = true;
            continue;
        }
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("bench_e15: device tiers must be positive integers, got {arg:?}");
                eprintln!(
                    "usage: bench_e15 [--check] [devices ...]   (default: 1000 10000 100000)"
                );
                std::process::exit(2);
            }
        }
    }
    if sizes.is_empty() {
        sizes = vec![1_000, 10_000, 100_000];
    }
    // The library is clock-free; the binary owns the wall clock.
    let epoch = std::time::Instant::now();
    let mut clock = move || epoch.elapsed().as_secs_f64();
    let (result, obs_reports) = e15_read_path_observed(42, &sizes, QUERIES_PER_ROUND, &mut clock);
    eprintln!("{}", result.report());

    // Per-cell observability snapshots (query.* counters, query.run
    // span) next to the bench JSON. `--check` runs (CI, reduced tiers)
    // must not overwrite the committed full-sweep artifact.
    if !check_mode {
        match std::fs::write(
            "OBS_e15.json",
            ObsReport::array_to_json_string(&obs_reports),
        ) {
            Ok(()) => eprintln!("wrote OBS_e15.json ({} cell reports)", obs_reports.len()),
            Err(e) => eprintln!("bench_e15: could not write OBS_e15.json: {e}"),
        }
    }

    let rows: Vec<Json> = result
        .rows
        .iter()
        .map(|r| {
            // Retention ratio vs the flat twin of the same tier. With
            // the round-aligned horizon this is a parity check, not a
            // headline: both layouts pay the same cold per-series floor.
            let retention_speedup = result
                .row(r.devices, "flat")
                .filter(|_| r.retention_ms > 0.0)
                .map(|f| f.retention_ms / r.retention_ms)
                .unwrap_or(0.0);
            Json::object([
                ("devices", Json::Number(r.devices as f64)),
                ("layout", Json::String(r.layout.into())),
                ("ingested", Json::Number(r.ingested as f64)),
                ("live_samples", Json::Number(r.live_samples as f64)),
                ("segments", Json::Number(r.segments as f64)),
                ("queries", Json::Number(r.queries as f64)),
                ("p50_us", Json::Number((r.p50_us * 10.0).round() / 10.0)),
                ("p99_us", Json::Number((r.p99_us * 10.0).round() / 10.0)),
                (
                    "wide_p50_us",
                    Json::Number((r.wide_p50_us * 10.0).round() / 10.0),
                ),
                (
                    "wide_p90_us",
                    Json::Number((r.wide_p90_us * 10.0).round() / 10.0),
                ),
                (
                    "wide_p99_us",
                    Json::Number((r.wide_p99_us * 10.0).round() / 10.0),
                ),
                ("queries_per_s", Json::Number(r.queries_per_s.round())),
                ("segments_pruned", Json::Number(r.segments_pruned as f64)),
                (
                    "segments_summarized",
                    Json::Number(r.segments_summarized as f64),
                ),
                ("segments_decoded", Json::Number(r.segments_decoded as f64)),
                (
                    "retention_ms",
                    Json::Number((r.retention_ms * 100.0).round() / 100.0),
                ),
                (
                    "retention_speedup_vs_flat",
                    Json::Number((retention_speedup * 100.0).round() / 100.0),
                ),
                (
                    "retention_removed",
                    Json::Number(r.retention_removed as f64),
                ),
                ("responses_match", Json::Bool(r.responses_match)),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("e15_read_path".into())),
        (
            "description",
            Json::String(
                "Mixed read/write wall-clock sweep over the columnar read \
                 path: flat vs 64-sample segmented history per device \
                 tier, with zipfian query bursts, hot-tier deep series \
                 and per-round retention. Latencies are per-query \
                 (p50/p99); the p99 tail is the full-horizon Extremes \
                 reads, where segment summaries beat the uncompacted \
                 scan; retention is parity under the round-aligned \
                 horizon."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        ("available_parallelism", Json::Number(cores() as f64)),
        ("queries_per_round", Json::Number(QUERIES_PER_ROUND as f64)),
        ("rows", Json::Array(rows)),
    ]);
    println!("{}", doc.to_pretty_string());

    if check_mode {
        match check(&result, &sizes) {
            Ok(()) => eprintln!("bench_e15 --check: ok ({} cores)", cores()),
            Err(msg) => {
                eprintln!("bench_e15 --check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
