//! Prints every experiment report (E1–E13) — the generator for
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run -p swamp-pilots --bin experiments --release [seed]`

use swamp_pilots::experiments::run_all;
use swamp_pilots::pilots::{run_pilot, PilotSite};
use swamp_pilots::report::{fmt_f, fmt_pct, Report};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    println!("# SWAMP experiment reports (seed {seed})\n");

    // Pilot summary first (the paper's §I).
    let mut pilot_table = Report::new(
        "P0: four pilots, smart policy vs conventional practice",
        &[
            "pilot",
            "water_saving",
            "energy_saving",
            "cost_saving",
            "yield_delta",
            "quality_smart",
            "quality_base",
        ],
    );
    for site in PilotSite::all() {
        let r = run_pilot(site, seed);
        pilot_table.push_row(vec![
            site.name().to_owned(),
            fmt_pct(r.water_saving()),
            fmt_pct(r.energy_saving()),
            fmt_pct(r.cost_saving()),
            fmt_f(r.yield_delta(), 3),
            fmt_f(r.smart.wine_quality(), 1),
            fmt_f(r.baseline.wine_quality(), 1),
        ]);
    }
    println!("{pilot_table}");

    for report in run_all(seed) {
        println!("{report}");
    }
}
