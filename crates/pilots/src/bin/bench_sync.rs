//! Deep-backlog drain bench for the fog sync engine: enqueues a backlog
//! of B records on one FogSync engine and times the wall-clock cost of
//! draining it to the cloud store over a lossless LAN. Emits
//! `BENCH_sync.json` on stdout (human-readable table on stderr).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_sync --release \
//!             [--check] [backlog ...] > BENCH_sync.json`
//!
//! With the indexed engine (seq-keyed record table + ready queue + timer
//! wheel) a drain is O(B): each round touches only the records it
//! transmits and each ack is a keyed remove. The pre-indexed engine
//! rescanned the whole buffer every round and every ack, making the same
//! drain O(B²). `--check` is the CI regression guard: it fails the build
//! if drain time grows superlinearly between adjacent backlog sizes
//! (time ratio > size ratio × slack — a quadratic engine shows ~size²).
//! Both mirror the bench_obs guard: `REPS` interleaved runs per size,
//! minima compared, so transient machine noise biases every cell equally.

use swamp_codec::json::Json;
use swamp_fog::sync::{CloudStore, DropPolicy, FogSync};
use swamp_net::link::LinkSpec;
use swamp_net::network::Network;
use swamp_sim::{SimDuration, SimTime};

/// Interleaved repetitions per backlog size; minima are compared.
const REPS: usize = 3;
/// CI gate: between adjacent sizes, drain time may grow at most
/// `size_ratio × SLACK`. Linear drains sit near the size ratio itself;
/// a quadratic engine shows ~size_ratio² (≈ 100× for a 10× step).
const SLACK: f64 = 3.0;
/// Pairs whose faster cell is below this are too noisy to ratio-test.
const MIN_BASE_SECS: f64 = 0.005;
/// Transmissions per sync round (the platform's pump batch).
const BATCH: usize = 256;

struct Cell {
    backlog: usize,
    rounds: u64,
    drain_secs: f64,
}

/// One timed drain: backlog enqueued outside the timer, then rounds of
/// sync → deliver → store/ack → deliver → poll until the buffer empties.
/// Returns (rounds, seconds); panics if the drain stalls (that would be
/// an engine bug, and this harness exists to catch engine regressions).
fn run_drain(backlog: usize) -> (u64, f64) {
    let mut net = Network::new(17);
    net.add_node("fog");
    net.add_node("cloud");
    net.connect("fog", "cloud", LinkSpec::farm_lan());
    let mut sync = FogSync::builder("fog", "cloud")
        .capacity(backlog)
        .drop_policy(DropPolicy::Oldest)
        .base_timeout(SimDuration::from_secs(3600))
        .jitter(0.0)
        .build();
    let mut cloud = CloudStore::new("cloud");
    for i in 0..backlog {
        sync.enqueue(SimTime::ZERO, "probe", vec![i as u8])
            .expect("under capacity");
    }

    let round_budget = (backlog as u64 / BATCH as u64 + 16) * 3;
    let mut rounds = 0u64;
    let mut now = SimTime::ZERO;
    let start = std::time::Instant::now();
    while sync.pending() > 0 {
        assert!(
            rounds < round_budget,
            "drain stalled: {} of {backlog} records still pending after {rounds} rounds",
            sync.pending()
        );
        sync.sync_round(&mut net, now, BATCH);
        now += SimDuration::from_secs(1);
        net.advance_to(now);
        cloud.process(&mut net, now);
        now += SimDuration::from_secs(1);
        net.advance_to(now);
        sync.poll_acks(&mut net, now);
        rounds += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(cloud.record_count(), backlog, "lossless drain lost records");
    (rounds, secs)
}

fn main() {
    let mut check = false;
    let mut sizes: Vec<usize> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
            continue;
        }
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("bench_sync: backlog sizes must be positive integers, got {arg:?}");
                eprintln!(
                    "usage: bench_sync [--check] [backlog ...]   (default: 10000 100000 1000000)"
                );
                std::process::exit(2);
            }
        }
    }
    if sizes.is_empty() {
        sizes = vec![10_000, 100_000, 1_000_000];
    }
    sizes.sort_unstable();

    // Interleave repetitions across sizes so drift hits every cell alike.
    let mut cells: Vec<Cell> = sizes
        .iter()
        .map(|&b| Cell {
            backlog: b,
            rounds: 0,
            drain_secs: f64::INFINITY,
        })
        .collect();
    for _ in 0..REPS {
        for cell in &mut cells {
            let (rounds, secs) = run_drain(cell.backlog);
            cell.rounds = rounds;
            cell.drain_secs = cell.drain_secs.min(secs);
        }
    }

    eprintln!("backlog  rounds  drain_s  us/record");
    for c in &cells {
        eprintln!(
            "{:>7}  {:>6}  {:>7.3}  {:>9.3}",
            c.backlog,
            c.rounds,
            c.drain_secs,
            c.drain_secs * 1e6 / c.backlog as f64
        );
    }

    let mut violations = Vec::new();
    let mut ratio_rows: Vec<Json> = Vec::new();
    for pair in cells.windows(2) {
        let (lo, hi) = (&pair[0], &pair[1]);
        let size_ratio = hi.backlog as f64 / lo.backlog as f64;
        let time_ratio = if lo.drain_secs > 0.0 {
            hi.drain_secs / lo.drain_secs
        } else {
            0.0
        };
        let allowed = size_ratio * SLACK;
        let tested = lo.drain_secs >= MIN_BASE_SECS;
        eprintln!(
            "{} -> {}: time ratio {:.1}x (size ratio {:.0}x, allowed {:.0}x{})",
            lo.backlog,
            hi.backlog,
            time_ratio,
            size_ratio,
            allowed,
            if tested {
                ""
            } else {
                ", base too small to test"
            }
        );
        if tested && time_ratio > allowed {
            violations.push(format!(
                "{}->{}: drain time grew {time_ratio:.1}x for a {size_ratio:.0}x backlog \
                 (allowed {allowed:.0}x)",
                lo.backlog, hi.backlog
            ));
        }
        ratio_rows.push(Json::object([
            ("from_backlog", Json::Number(lo.backlog as f64)),
            ("to_backlog", Json::Number(hi.backlog as f64)),
            ("size_ratio", Json::Number(size_ratio)),
            ("time_ratio", Json::Number((time_ratio * 1e3).round() / 1e3)),
            ("allowed_ratio", Json::Number(allowed)),
        ]));
    }

    let rows: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::object([
                ("backlog", Json::Number(c.backlog as f64)),
                ("rounds", Json::Number(c.rounds as f64)),
                (
                    "drain_secs",
                    Json::Number((c.drain_secs * 1e4).round() / 1e4),
                ),
                (
                    "us_per_record",
                    Json::Number((c.drain_secs * 1e6 / c.backlog as f64 * 1e3).round() / 1e3),
                ),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("sync_drain".into())),
        (
            "description",
            Json::String(
                "Wall-clock cost of draining a deep fog backlog through the \
                 indexed sync engine (record table + ready queue + timer \
                 wheel) over a lossless LAN, one shard, batch 256. \
                 Best-of-3 interleaved runs per size; near-linear growth is \
                 the witness that per-round work no longer scans the backlog."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        ("batch", Json::Number(BATCH as f64)),
        ("slack", Json::Number(SLACK)),
        ("rows", Json::Array(rows)),
        ("adjacent_ratios", Json::Array(ratio_rows)),
    ]);
    println!("{}", doc.to_pretty_string());

    if check && !violations.is_empty() {
        for v in &violations {
            eprintln!("bench_sync: superlinear drain: {v}");
        }
        std::process::exit(1);
    }
}
