//! Runs one named pilot and prints its smart-vs-baseline season report.
//!
//! Usage: `cargo run -p swamp-pilots --bin pilot --release -- <site> [seed]`
//! where `<site>` is one of `cbec`, `intercrop`, `guaspari`, `matopiba`,
//! or `all`.

use swamp_pilots::pilots::{run_pilot, PilotReport, PilotSite};

fn print_report(r: &PilotReport) {
    println!("=== {} ===", r.site.name());
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "", "water_m3", "energy_kWh", "cost_EUR", "yield", "quality"
    );
    for (label, o) in [("baseline", &r.baseline), ("smart", &r.smart)] {
        println!(
            "{:<28} {:>12.0} {:>12.0} {:>12.0} {:>9.3} {:>9.1}",
            label,
            o.account.volume_m3,
            o.account.energy_kwh,
            o.account.cost_eur,
            o.mean_yield(),
            o.wine_quality(),
        );
    }
    println!(
        "savings: water {:.1}%, energy {:.1}%, cost {:.1}%; yield delta {:+.3}; \
         rain over season {:.0} mm\n",
        r.water_saving() * 100.0,
        r.energy_saving() * 100.0,
        r.cost_saving() * 100.0,
        r.yield_delta(),
        r.smart.rain_mm,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let site_arg = args.get(1).map(String::as_str).unwrap_or("all");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let sites: Vec<PilotSite> = match site_arg {
        "cbec" => vec![PilotSite::Cbec],
        "intercrop" => vec![PilotSite::Intercrop],
        "guaspari" => vec![PilotSite::Guaspari],
        "matopiba" => vec![PilotSite::Matopiba],
        "all" => PilotSite::all().to_vec(),
        other => {
            eprintln!("unknown pilot {other:?}; use cbec | intercrop | guaspari | matopiba | all");
            std::process::exit(2);
        }
    };

    println!("SWAMP pilot season runner (seed {seed})\n");
    for site in sites {
        print_report(&run_pilot(site, seed));
    }
}
