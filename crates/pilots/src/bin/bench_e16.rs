//! E16 behavioral baseline: runs the deterministic per-pilot
//! precision/recall scorecard plus the wall-clock live-vs-muted
//! detector overhead sweep, and emits `BENCH_e16.json` on stdout (the
//! human-readable tables go to stderr so redirection captures clean
//! JSON).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_e16 --release \
//!             [--check] [devices [rounds]] > BENCH_e16.json`
//!
//! `devices`/`rounds` size the overhead workload only (defaults 512
//! devices, 96 rounds); the detection scorecard always runs at the
//! canonical E16 scale so its numbers match EXPERIMENTS.md.
//!
//! The `--check` gate holds the claims the detector makes:
//!
//! 1. **Per-pilot recall** — the bank must flag at least 3/4 of the
//!    planted attack devices (Sybil burst + tamper drift + actuator
//!    takeover) in every pilot profile;
//! 2. **Per-pilot precision** — at least 90% of flagged devices must
//!    be real attackers (at most a stray honest flag per fleet);
//! 3. **Overhead** — ingest+pump with the bank live must cost at most
//!    10% more wall-clock time than with the bank muted (a single
//!    branch), best-of-3 interleaved. Wall clock on a shared box is
//!    noisy, so `--check` re-measures up to twice before failing.

use swamp_codec::json::Json;
use swamp_obs::ObsReport;
use swamp_pilots::experiments::{
    e16_baseline_detection, e16_overhead_observed, E16OverheadResult, E16Result,
};

const RECALL_FLOOR: f64 = 0.75;
const PRECISION_FLOOR: f64 = 0.9;
const OVERHEAD_BUDGET: f64 = 0.10;

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn check(detection: &E16Result, overhead: &E16OverheadResult) -> Result<(), String> {
    if detection.rows.len() != 4 {
        return Err(format!(
            "expected 4 pilot rows, got {}",
            detection.rows.len()
        ));
    }
    for row in &detection.rows {
        if row.truth == 0 {
            return Err(format!("{}: no planted attack devices", row.pilot.name()));
        }
        if row.recall < RECALL_FLOOR {
            return Err(format!(
                "{}: recall {:.2} below the {RECALL_FLOOR} floor ({} of {} attack \
                 devices missed)",
                row.pilot.name(),
                row.recall,
                row.fn_missed,
                row.truth
            ));
        }
        if row.precision < PRECISION_FLOOR {
            return Err(format!(
                "{}: precision {:.2} below the {PRECISION_FLOOR} floor ({} honest \
                 devices flagged)",
                row.pilot.name(),
                row.precision,
                row.fp
            ));
        }
    }
    if overhead.records == 0 {
        return Err("overhead workload generated no records".to_owned());
    }
    if overhead.overhead_frac > OVERHEAD_BUDGET {
        return Err(format!(
            "live detector overhead {:.1}% exceeds the {:.0}% budget",
            overhead.overhead_frac * 100.0,
            OVERHEAD_BUDGET * 100.0
        ));
    }
    Ok(())
}

fn main() {
    let mut dims: Vec<usize> = Vec::new();
    let mut check_mode = false;
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check_mode = true;
            continue;
        }
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => dims.push(n),
            _ => {
                eprintln!("bench_e16: sizes must be positive integers, got {arg:?}");
                eprintln!("usage: bench_e16 [--check] [devices [rounds]]   (default: 512 96)");
                std::process::exit(2);
            }
        }
    }
    if dims.len() > 2 {
        eprintln!("bench_e16: at most two sizes (devices, rounds), got {dims:?}");
        std::process::exit(2);
    }
    let devices = dims.first().copied().unwrap_or(512);
    let rounds = dims.get(1).copied().unwrap_or(96);

    let detection = e16_baseline_detection(42);
    eprintln!("{}", detection.report());

    // The library is clock-free; the binary owns the wall clock.
    let epoch = std::time::Instant::now();
    let measure = || {
        e16_overhead_observed(42, devices, rounds, |run| {
            let start = epoch.elapsed();
            run();
            (epoch.elapsed() - start).as_secs_f64()
        })
    };
    let (mut overhead, mut obs_reports) = measure();
    if check_mode {
        // A wall-clock gate on a shared box sees noisy-neighbor
        // spikes; re-measure before failing rather than flaking CI.
        let mut attempt = 1;
        while overhead.overhead_frac > OVERHEAD_BUDGET && attempt < 3 {
            attempt += 1;
            eprintln!(
                "bench_e16: overhead {:.1}% over budget, re-measuring (attempt {attempt}/3)",
                overhead.overhead_frac * 100.0
            );
            let (o, r) = measure();
            if o.overhead_frac < overhead.overhead_frac {
                (overhead, obs_reports) = (o, r);
            }
        }
    }
    eprintln!("{}", overhead.report());

    // Per-arm observability snapshots (security.baseline.* counters)
    // next to the bench JSON. `--check` runs (CI, reduced sizes) must
    // not overwrite the committed full-sweep artifact.
    if !check_mode {
        match std::fs::write(
            "OBS_e16.json",
            ObsReport::array_to_json_string(&obs_reports),
        ) {
            Ok(()) => eprintln!("wrote OBS_e16.json ({} arm reports)", obs_reports.len()),
            Err(e) => eprintln!("bench_e16: could not write OBS_e16.json: {e}"),
        }
    }

    let detection_rows: Vec<Json> = detection
        .rows
        .iter()
        .map(|r| {
            let caught: Vec<Json> = r
                .caught
                .iter()
                .map(|(label, (c, t))| {
                    Json::object([
                        ("label", Json::String(label.as_str().into())),
                        ("caught", Json::Number(*c as f64)),
                        ("total", Json::Number(*t as f64)),
                    ])
                })
                .collect();
            Json::object([
                ("pilot", Json::String(r.pilot.name().into())),
                ("devices", Json::Number(r.devices as f64)),
                ("rounds", Json::Number(r.rounds as f64)),
                ("records", Json::Number(r.records as f64)),
                ("attack_devices", Json::Number(r.truth as f64)),
                ("flagged", Json::Number(r.flagged as f64)),
                ("tp", Json::Number(r.tp as f64)),
                ("fp", Json::Number(r.fp as f64)),
                ("fn", Json::Number(r.fn_missed as f64)),
                (
                    "precision",
                    Json::Number((r.precision * 1000.0).round() / 1000.0),
                ),
                ("recall", Json::Number((r.recall * 1000.0).round() / 1000.0)),
                ("by_label", Json::Array(caught)),
            ])
        })
        .collect();
    let overhead_rows: Vec<Json> = overhead
        .rows
        .iter()
        .map(|r| {
            Json::object([
                ("arm", Json::String(r.arm.into())),
                ("records", Json::Number(r.records as f64)),
                (
                    "elapsed_ms",
                    Json::Number((r.elapsed_ms * 100.0).round() / 100.0),
                ),
                ("records_per_s", Json::Number(r.records_per_s.round())),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("e16_behavioral_baseline".into())),
        (
            "description",
            Json::String(
                "Streaming behavioral baseline vs the four labeled pilot \
                 workloads: device-level precision/recall per pilot \
                 (deterministic, seed 42) and the wall-clock ingest+pump \
                 overhead of the live detector vs a muted bank on the \
                 densest (CBEC) stream, best-of-3 interleaved."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        ("available_parallelism", Json::Number(cores() as f64)),
        ("seed", Json::Number(42.0)),
        ("detection", Json::Array(detection_rows)),
        ("overhead_devices", Json::Number(overhead.devices as f64)),
        ("overhead_rounds", Json::Number(overhead.rounds as f64)),
        ("overhead_reps", Json::Number(overhead.reps as f64)),
        ("overhead", Json::Array(overhead_rows)),
        (
            "overhead_frac",
            Json::Number((overhead.overhead_frac * 10000.0).round() / 10000.0),
        ),
        ("recall_floor", Json::Number(RECALL_FLOOR)),
        ("precision_floor", Json::Number(PRECISION_FLOOR)),
        ("overhead_budget", Json::Number(OVERHEAD_BUDGET)),
    ]);
    println!("{}", doc.to_pretty_string());

    if check_mode {
        match check(&detection, &overhead) {
            Ok(()) => eprintln!("bench_e16 --check: ok ({} cores)", cores()),
            Err(msg) => {
                eprintln!("bench_e16 --check FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
}
