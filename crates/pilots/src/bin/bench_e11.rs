//! E11c broker-throughput baseline: runs the devices×deployment sweep and
//! emits `BENCH_e11.json` on stdout (the human-readable table goes to
//! stderr so redirection captures clean JSON).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_e11 --release \
//!             [devices ...] > BENCH_e11.json`
//!
//! Defaults to fleets of 100, 1 000 and 10 000 devices.

use swamp_codec::json::Json;
use swamp_obs::ObsReport;
use swamp_pilots::experiments::e11_broker_scale_observed;

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("bench_e11: fleet sizes must be positive integers, got {arg:?}");
                eprintln!("usage: bench_e11 [devices ...]   (default: 100 1000 10000)");
                std::process::exit(2);
            }
        }
    }
    if sizes.is_empty() {
        sizes = vec![100, 1_000, 10_000];
    }
    // The library is clock-free; the binary owns the wall clock.
    let (result, obs_reports) = e11_broker_scale_observed(&sizes, |run| {
        let start = std::time::Instant::now();
        run();
        start.elapsed().as_secs_f64()
    });
    eprintln!("{}", result.report());

    // Deterministic per-cell observability snapshots, written next to the
    // bench JSON (which goes to stdout via redirection).
    match std::fs::write(
        "OBS_e11.json",
        ObsReport::array_to_json_string(&obs_reports),
    ) {
        Ok(()) => eprintln!("wrote OBS_e11.json ({} cell reports)", obs_reports.len()),
        Err(e) => eprintln!("bench_e11: could not write OBS_e11.json: {e}"),
    }

    let rows: Vec<Json> = result
        .rows
        .iter()
        .map(|r| {
            Json::object([
                ("deployment", Json::String(r.deployment.to_owned())),
                ("devices", Json::Number(r.devices as f64)),
                ("updates", Json::Number(r.updates as f64)),
                (
                    "elapsed_ms",
                    Json::Number((r.elapsed_ms * 10.0).round() / 10.0),
                ),
                ("updates_per_s", Json::Number(r.throughput_per_s.round())),
                (
                    "us_per_update",
                    Json::Number((r.mean_update_us * 100.0).round() / 100.0),
                ),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("e11_broker_scale".into())),
        (
            "description",
            Json::String(
                "Wall-clock ingest throughput of the post-validation broker hot \
                 path (history appends, batched upsert with subscriber fan-out, \
                 fog replication) per deployment and fleet size."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        ("rows", Json::Array(rows)),
    ]);
    println!("{}", doc.to_pretty_string());
}
