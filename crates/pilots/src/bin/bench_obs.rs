//! Observability overhead bench: runs the same FarmFog ingest+pump
//! workload twice per fleet size — once with the obs subsystem live,
//! once muted via `Platform::set_obs_enabled(false)` — and reports the
//! per-update cost of instrumentation. Emits `BENCH_obs.json` on stdout
//! (human-readable table on stderr).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_obs --release \
//!             [--check] [devices ...] > BENCH_obs.json`
//!
//! `--check` exits nonzero if the aggregate instrumented cost exceeds the
//! muted cost by more than 5% — the CI regression guard for the obs hot
//! path (indexed slab adds; no hashing, no allocation). Both variants run
//! `REPS` times interleaved and the minimum per variant is compared, so
//! transient machine noise biases both sides equally.

use swamp_codec::json::Json;
use swamp_codec::ngsi::Entity;
use swamp_core::platform::{DeploymentConfig, Platform};
use swamp_sim::SimTime;

/// Interleaved repetitions per (size, variant); minima are compared.
const REPS: usize = 3;
/// CI gate: instrumented cost may exceed muted cost by at most this.
const MAX_OVERHEAD: f64 = 0.05;

struct Cell {
    devices: usize,
    updates: u64,
    muted_secs: f64,
    live_secs: f64,
}

impl Cell {
    fn overhead(&self) -> f64 {
        if self.muted_secs > 0.0 {
            self.live_secs / self.muted_secs - 1.0
        } else {
            0.0
        }
    }
}

/// One timed sweep: `rounds` minute-spaced batches of `devices` updates
/// through the post-validation ingest + pump path (the same hot path
/// bench_e11 measures). Only ingest+pump are timed; batch construction is
/// identical across variants and excluded.
fn run_variant(devices: usize, muted: bool) -> (u64, f64) {
    let mut platform = Platform::builder(DeploymentConfig::FarmFog).seed(7).build();
    platform.set_obs_enabled(!muted);
    let rounds = (100_000 / devices).clamp(5, 1000);
    let mut updates = 0u64;
    let mut secs = 0.0f64;
    for round in 0..rounds {
        let t = SimTime::from_secs(round as u64 * 60);
        let batch: Vec<Entity> = (0..devices)
            .map(|i| {
                let mut e = Entity::new(format!("urn:swamp:device:probe-{i}"), "SoilProbe");
                e.set("moisture_vwc", 0.2 + (round % 100) as f64 * 0.001);
                e.set("seq", round as f64);
                e
            })
            .collect();
        let start = std::time::Instant::now();
        updates += platform.ingest_entities(t, batch) as u64;
        platform.pump(t);
        secs += start.elapsed().as_secs_f64();
    }
    (updates, secs)
}

fn run_cell(devices: usize) -> Cell {
    let mut muted_best = f64::INFINITY;
    let mut live_best = f64::INFINITY;
    let mut updates = 0u64;
    for _ in 0..REPS {
        let (u, m) = run_variant(devices, true);
        let (_, l) = run_variant(devices, false);
        updates = u;
        muted_best = muted_best.min(m);
        live_best = live_best.min(l);
    }
    Cell {
        devices,
        updates,
        muted_secs: muted_best,
        live_secs: live_best,
    }
}

fn main() {
    let mut check = false;
    let mut sizes: Vec<usize> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--check" {
            check = true;
            continue;
        }
        match arg.parse::<usize>() {
            Ok(n) if n > 0 => sizes.push(n),
            _ => {
                eprintln!("bench_obs: fleet sizes must be positive integers, got {arg:?}");
                eprintln!("usage: bench_obs [--check] [devices ...]   (default: 100 1000 10000)");
                std::process::exit(2);
            }
        }
    }
    if sizes.is_empty() {
        sizes = vec![100, 1_000, 10_000];
    }

    let cells: Vec<Cell> = sizes.iter().map(|&d| run_cell(d)).collect();

    eprintln!("devices  updates  muted_us/upd  live_us/upd  overhead");
    for c in &cells {
        eprintln!(
            "{:>7}  {:>7}  {:>12.3}  {:>11.3}  {:>+7.2}%",
            c.devices,
            c.updates,
            c.muted_secs * 1e6 / c.updates as f64,
            c.live_secs * 1e6 / c.updates as f64,
            c.overhead() * 100.0
        );
    }
    let total_muted: f64 = cells.iter().map(|c| c.muted_secs).sum();
    let total_live: f64 = cells.iter().map(|c| c.live_secs).sum();
    let agg = if total_muted > 0.0 {
        total_live / total_muted - 1.0
    } else {
        0.0
    };
    eprintln!("aggregate overhead: {:+.2}%", agg * 100.0);

    let rows: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::object([
                ("devices", Json::Number(c.devices as f64)),
                ("updates", Json::Number(c.updates as f64)),
                (
                    "muted_us_per_update",
                    Json::Number((c.muted_secs * 1e6 / c.updates as f64 * 1e3).round() / 1e3),
                ),
                (
                    "instrumented_us_per_update",
                    Json::Number((c.live_secs * 1e6 / c.updates as f64 * 1e3).round() / 1e3),
                ),
                (
                    "overhead_pct",
                    Json::Number((c.overhead() * 1e4).round() / 1e2),
                ),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("obs_overhead".into())),
        (
            "description",
            Json::String(
                "Wall-clock cost of the obs subsystem on the ingest+pump hot \
                 path: the same FarmFog workload with instrumentation live vs \
                 muted (handles registered, recording gated off). Best-of-3 \
                 interleaved runs per variant."
                    .into(),
            ),
        ),
        ("build", Json::String("release".into())),
        (
            "aggregate_overhead_pct",
            Json::Number((agg * 1e4).round() / 1e2),
        ),
        ("rows", Json::Array(rows)),
    ]);
    println!("{}", doc.to_pretty_string());

    if check && agg > MAX_OVERHEAD {
        eprintln!(
            "bench_obs: instrumentation overhead {:.2}% exceeds the {:.0}% budget",
            agg * 100.0,
            MAX_OVERHEAD * 100.0
        );
        std::process::exit(1);
    }
}
