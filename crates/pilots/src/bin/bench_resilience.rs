//! E13 resilience bench: runs the fault-injection sweep (loss × deployment
//! config, with a mid-run 1 h partition) and emits `BENCH_resilience.json`
//! on stdout (the human-readable table goes to stderr so redirection
//! captures clean JSON).
//!
//! Usage: `cargo run -p swamp-pilots --bin bench_resilience --release \
//!             [seed] > BENCH_resilience.json`
//!
//! The sweep is sim-time deterministic: the same seed reproduces the same
//! JSON bit-for-bit.

use swamp_codec::json::Json;
use swamp_obs::ObsReport;
use swamp_pilots::experiments::e13_resilience_observed;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed = match args.next() {
        None => 42,
        Some(arg) => match arg.parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("bench_resilience: seed must be a u64, got {arg:?}");
                eprintln!("usage: bench_resilience [seed]   (default: 42)");
                std::process::exit(2);
            }
        },
    };
    let (result, obs_reports) = e13_resilience_observed(seed);
    eprintln!("{}", result.report());

    // Deterministic per-cell observability snapshots, written next to the
    // bench JSON (which goes to stdout via redirection). Same seed, same
    // bytes — see the obs_determinism integration test.
    match std::fs::write(
        "OBS_resilience.json",
        ObsReport::array_to_json_string(&obs_reports),
    ) {
        Ok(()) => eprintln!(
            "wrote OBS_resilience.json ({} cell reports)",
            obs_reports.len()
        ),
        Err(e) => eprintln!("bench_resilience: could not write OBS_resilience.json: {e}"),
    }

    let rows: Vec<Json> = result
        .rows
        .iter()
        .map(|r| {
            Json::object([
                ("deployment", Json::String(r.deployment.to_owned())),
                ("loss", Json::Number(r.loss)),
                ("offered", Json::Number(r.offered as f64)),
                ("delivered", Json::Number(r.delivered as f64)),
                (
                    "delivery_ratio",
                    Json::Number((r.delivery_ratio() * 1e4).round() / 1e4),
                ),
                (
                    "duplicate_applies",
                    Json::Number(r.duplicate_applies as f64),
                ),
                (
                    "duplicates_discarded",
                    Json::Number(r.duplicates_discarded as f64),
                ),
                ("retransmissions", Json::Number(r.retransmissions as f64)),
                (
                    "mode_during_outage",
                    Json::String(r.mode_during_outage.to_string()),
                ),
                ("final_mode", Json::String(r.final_mode.to_string())),
                ("recovery_secs", Json::Number(r.recovery_secs as f64)),
            ])
        })
        .collect();
    let doc = Json::object([
        ("experiment", Json::String("e13_resilience".into())),
        (
            "description",
            Json::String(
                "End-to-end uplink resilience under injected loss and a 1 h \
                 scheduled partition: records offered to the retry/ack engine \
                 vs records applied at the cloud store (exactly once), \
                 retransmission cost, degraded-mode behavior and seconds to \
                 drain the backlog after the partition heals."
                    .into(),
            ),
        ),
        ("seed", Json::Number(seed as f64)),
        ("build", Json::String("release".into())),
        ("rows", Json::Array(rows)),
    ]);
    println!("{}", doc.to_pretty_string());
}
