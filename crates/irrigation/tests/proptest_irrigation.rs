//! Property-based tests for irrigation planning and policies.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_irrigation::schedule::{
    DeficitMaintain, EtReplacement, FixedCalendar, IrrigationPolicy, ThresholdRefill, ZoneView,
};
use swamp_irrigation::source::{depth_to_volume_m3, WaterSource};
use swamp_irrigation::vri::{compile_plan, zones_to_sectors, Prescription};
use swamp_sensors::actuators::CenterPivot;
use swamp_sim::SimTime;

fn arb_view() -> impl Strategy<Value = ZoneView> {
    (
        0.0f64..120.0,
        10.0f64..60.0,
        0.0f64..12.0,
        0.0f64..20.0,
        0u32..160,
    )
        .prop_map(|(depletion, raw, etc, rain, das)| {
            let taw = raw * 2.0;
            ZoneView {
                depletion_mm: depletion.min(taw),
                taw_mm: taw,
                raw_mm: raw,
                etc_mm: etc,
                forecast_rain_mm: rain,
                das,
            }
        })
}

proptest! {
    /// No policy ever prescribes a negative depth or a non-finite depth.
    #[test]
    fn policies_prescribe_sane_depths(views in prop::collection::vec(arb_view(), 1..60)) {
        let mut policies: Vec<Box<dyn IrrigationPolicy>> = vec![
            Box::new(FixedCalendar::new(3, 25.0)),
            Box::new(ThresholdRefill::new(1.0)),
            Box::new(EtReplacement::new(1.0)),
            Box::new(DeficitMaintain::new(0.65)),
        ];
        for v in &views {
            for p in &mut policies {
                let d = p.decide(v);
                prop_assert!(d.is_finite() && d >= 0.0, "{}: {d}", p.name());
            }
        }
    }

    /// ThresholdRefill never prescribes more than the current depletion
    /// (refilling past field capacity would just drain away).
    #[test]
    fn threshold_never_overfills(view in arb_view()) {
        let mut p = ThresholdRefill::new(1.0);
        let d = p.decide(&view);
        prop_assert!(d <= view.depletion_mm + 1e-9);
    }

    /// Any valid prescription compiles to a plan the machine accepts, and
    /// achieved depths are within the machine envelope.
    #[test]
    fn compiled_plans_are_machine_valid(
        depths in prop::collection::vec(0.0f64..100.0, 1..16),
        base_depth in 2.0f64..20.0,
    ) {
        let mut pivot = CenterPivot::new("p", depths.len(), 12.0, base_depth);
        let rx = Prescription::new(depths.clone());
        let plan = compile_plan(&pivot, &rx, base_depth);
        prop_assert!(pivot.set_sector_speeds(plan.sector_speeds.clone()).is_ok());
        for (i, &speed) in plan.sector_speeds.iter().enumerate() {
            prop_assert!((0.05..=1.0).contains(&speed));
            if plan.nozzles_off[i] {
                prop_assert_eq!(plan.achieved_mm[i], 0.0);
            } else {
                // Achieved = base/speed, bounded by the envelope.
                prop_assert!(plan.achieved_mm[i] >= base_depth - 1e-9);
                prop_assert!(plan.achieved_mm[i] <= base_depth / 0.05 + 1e-9);
            }
        }
        pivot.start(SimTime::ZERO);
    }

    /// zones_to_sectors preserves the value set (every sector depth comes
    /// from some zone) and the sector count.
    #[test]
    fn zone_mapping_preserves_values(
        zone_depths in prop::collection::vec(0.0f64..50.0, 1..8),
        sectors in 1usize..32,
    ) {
        let rx = zones_to_sectors(&zone_depths, sectors);
        prop_assert_eq!(rx.sectors(), sectors);
        for d in rx.depths_mm() {
            prop_assert!(zone_depths.iter().any(|z| (z - d).abs() < 1e-12));
        }
    }

    /// Water accounting: cost and energy are non-negative, linear in
    /// volume, and zero only for zero volume (canal energy excepted).
    #[test]
    fn source_costs_linear(volume in 0.0f64..10_000.0) {
        for source in [
            WaterSource::cbec_canal(),
            WaterSource::matopiba_well(),
            WaterSource::intercrop_desal(),
        ] {
            let one = source.deliver(volume);
            let two = source.deliver(volume * 2.0);
            prop_assert!(one.cost_eur >= 0.0 && one.energy_kwh >= 0.0);
            prop_assert!((two.cost_eur - 2.0 * one.cost_eur).abs() < 1e-6);
            prop_assert!((two.energy_kwh - 2.0 * one.energy_kwh).abs() < 1e-6);
        }
    }

    /// Depth/area → volume conversion is bilinear and positive.
    #[test]
    fn depth_volume_bilinear(depth in 0.0f64..100.0, area in 0.0f64..500.0) {
        let v = depth_to_volume_m3(depth, area);
        prop_assert!(v >= 0.0);
        prop_assert!((depth_to_volume_m3(depth * 2.0, area) - 2.0 * v).abs() < 1e-9);
        prop_assert!((depth_to_volume_m3(depth, area * 2.0) - 2.0 * v).abs() < 1e-9);
    }
}
