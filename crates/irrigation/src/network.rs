//! Canal water-distribution network (CBEC pilot).
//!
//! The Consorzio di Bonifica Emilia Centrale's primary goal is "optimizing
//! water distribution to the farms": a shared canal tree with finite segment
//! capacities must be divided among farms whose demands exceed supply in a
//! dry week. This module models the canal tree and implements two
//! allocation policies compared in experiment E10:
//!
//! - **Greedy upstream-first** — what an uncoordinated canal does
//!   physically: upstream offtakes fill first, tail-enders starve.
//! - **Max–min fairness** (progressive filling) — what the SWAMP platform
//!   computes centrally from telemetered demands, maximizing the minimum
//!   satisfaction ratio subject to capacities.

use std::collections::BTreeMap;

/// Identifies a junction in the canal tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JunctionId(pub usize);

/// Identifies a farm offtake.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FarmId(pub usize);

#[derive(Clone, Debug)]
struct Junction {
    parent: Option<JunctionId>,
    /// Capacity of the segment from the parent, m³/day.
    capacity_m3: f64,
}

#[derive(Clone, Debug)]
struct Farm {
    junction: JunctionId,
    demand_m3: f64,
    /// Gate state: a closed gate receives nothing (maintenance or attack).
    gate_open: bool,
}

/// Result of one allocation round.
#[derive(Clone, Debug, PartialEq)]
pub struct Allocation {
    /// Water allocated to each farm, m³/day (indexed by `FarmId.0`).
    pub per_farm_m3: Vec<f64>,
}

impl Allocation {
    /// Total water delivered, m³/day.
    pub fn total_m3(&self) -> f64 {
        self.per_farm_m3.iter().sum()
    }

    /// Jain's fairness index over per-farm *satisfaction ratios*.
    ///
    /// 1.0 = perfectly equal satisfaction; 1/n = one farm takes all.
    /// Farms with zero demand are excluded.
    pub fn jain_fairness(&self, demands: &[f64]) -> f64 {
        let ratios: Vec<f64> = self
            .per_farm_m3
            .iter()
            .zip(demands)
            .filter(|(_, &d)| d > 0.0)
            .map(|(&a, &d)| a / d)
            .collect();
        if ratios.is_empty() {
            return 1.0;
        }
        let sum: f64 = ratios.iter().sum();
        let sum_sq: f64 = ratios.iter().map(|r| r * r).sum();
        if sum_sq == 0.0 {
            return 1.0;
        }
        sum * sum / (ratios.len() as f64 * sum_sq)
    }
}

/// The canal tree: junctions with capacitated parent segments, farms at
/// junctions.
///
/// # Example
/// ```
/// use swamp_irrigation::network::DistributionNetwork;
/// let mut net = DistributionNetwork::new(1000.0);
/// let j = net.add_junction(net.root(), 400.0);
/// let f1 = net.add_farm(j, 300.0);
/// let f2 = net.add_farm(j, 300.0);
/// let alloc = net.allocate_max_min();
/// // The 400 m³ segment is shared equally.
/// assert!((alloc.per_farm_m3[f1.0] - 200.0).abs() < 1e-6);
/// assert!((alloc.per_farm_m3[f2.0] - 200.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct DistributionNetwork {
    junctions: Vec<Junction>,
    farms: Vec<Farm>,
}

impl DistributionNetwork {
    /// Creates a network with a root junction fed at `source_capacity_m3`
    /// per day.
    pub fn new(source_capacity_m3: f64) -> Self {
        assert!(source_capacity_m3 >= 0.0);
        DistributionNetwork {
            junctions: vec![Junction {
                parent: None,
                capacity_m3: source_capacity_m3,
            }],
            farms: Vec::new(),
        }
    }

    /// The root junction (the source headworks).
    pub fn root(&self) -> JunctionId {
        JunctionId(0)
    }

    /// Adds a junction fed from `parent` through a segment of the given
    /// capacity. Returns its id.
    ///
    /// # Panics
    /// Panics if `parent` does not exist or capacity is negative.
    pub fn add_junction(&mut self, parent: JunctionId, capacity_m3: f64) -> JunctionId {
        assert!(parent.0 < self.junctions.len(), "unknown junction");
        assert!(capacity_m3 >= 0.0);
        self.junctions.push(Junction {
            parent: Some(parent),
            capacity_m3,
        });
        JunctionId(self.junctions.len() - 1)
    }

    /// Adds a farm offtake at a junction with a daily demand. Returns its id.
    ///
    /// # Panics
    /// Panics if the junction does not exist or demand is negative.
    pub fn add_farm(&mut self, junction: JunctionId, demand_m3: f64) -> FarmId {
        assert!(junction.0 < self.junctions.len(), "unknown junction");
        assert!(demand_m3 >= 0.0);
        self.farms.push(Farm {
            junction,
            demand_m3,
            gate_open: true,
        });
        FarmId(self.farms.len() - 1)
    }

    /// Number of farms.
    pub fn farm_count(&self) -> usize {
        self.farms.len()
    }

    /// Updates a farm's demand (telemetered daily from the pilot).
    pub fn set_demand(&mut self, farm: FarmId, demand_m3: f64) {
        assert!(demand_m3 >= 0.0);
        self.farms[farm.0].demand_m3 = demand_m3;
    }

    /// All current demands, indexed by farm id.
    pub fn demands(&self) -> Vec<f64> {
        self.farms.iter().map(|f| f.demand_m3).collect()
    }

    /// Opens or closes a farm's gate.
    pub fn set_gate(&mut self, farm: FarmId, open: bool) {
        self.farms[farm.0].gate_open = open;
    }

    /// The chain of segment indices (junction ids) from a junction to root,
    /// including the junction itself.
    fn path_to_root(&self, mut j: JunctionId) -> Vec<usize> {
        let mut path = vec![j.0];
        while let Some(p) = self.junctions[j.0].parent {
            path.push(p.0);
            j = p;
        }
        path
    }

    fn effective_demand(&self, farm: &Farm) -> f64 {
        if farm.gate_open {
            farm.demand_m3
        } else {
            0.0
        }
    }

    /// Greedy upstream-first allocation: farms are served in id order (which
    /// pilots construct upstream-to-downstream), each taking as much of its
    /// demand as residual capacities on its path allow.
    pub fn allocate_greedy_upstream(&self) -> Allocation {
        let mut residual: Vec<f64> = self.junctions.iter().map(|j| j.capacity_m3).collect();
        let mut per_farm = vec![0.0; self.farms.len()];
        for (i, farm) in self.farms.iter().enumerate() {
            let path = self.path_to_root(farm.junction);
            let available = path
                .iter()
                .map(|&seg| residual[seg])
                .fold(f64::INFINITY, f64::min);
            let take = self.effective_demand(farm).min(available).max(0.0);
            for &seg in &path {
                residual[seg] -= take;
            }
            per_farm[i] = take;
        }
        Allocation {
            per_farm_m3: per_farm,
        }
    }

    /// Max–min fair allocation by progressive filling: all unfrozen farms'
    /// allocations rise together until a segment saturates (freezing every
    /// farm through it) or a farm reaches its demand.
    pub fn allocate_max_min(&self) -> Allocation {
        let n = self.farms.len();
        let mut alloc = vec![0.0; n];
        let mut frozen = vec![false; n];
        let mut residual: Vec<f64> = self.junctions.iter().map(|j| j.capacity_m3).collect();
        let paths: Vec<Vec<usize>> = self
            .farms
            .iter()
            .map(|f| self.path_to_root(f.junction))
            .collect();
        // Farms with zero effective demand are frozen from the start.
        for (i, f) in self.farms.iter().enumerate() {
            if self.effective_demand(f) <= 0.0 {
                frozen[i] = true;
            }
        }

        for _ in 0..n + self.junctions.len() + 1 {
            let active: Vec<usize> = (0..n).filter(|&i| !frozen[i]).collect();
            if active.is_empty() {
                break;
            }
            // Count active farms through each segment.
            let mut through: BTreeMap<usize, usize> = BTreeMap::new();
            for &i in &active {
                for &seg in &paths[i] {
                    *through.entry(seg).or_insert(0) += 1;
                }
            }
            // Largest equal increment every active farm can take.
            let mut step = f64::INFINITY;
            for (&seg, &count) in &through {
                step = step.min(residual[seg] / count as f64);
            }
            for &i in &active {
                let remaining = self.effective_demand(&self.farms[i]) - alloc[i];
                step = step.min(remaining);
            }
            if step <= 1e-12 {
                // A segment is exactly saturated: freeze its farms.
                for &seg in through.keys() {
                    if residual[seg] <= 1e-9 {
                        for &i in &active {
                            if paths[i].contains(&seg) {
                                frozen[i] = true;
                            }
                        }
                    }
                }
                // Or a farm is exactly satisfied.
                for &i in &active {
                    if self.effective_demand(&self.farms[i]) - alloc[i] <= 1e-9 {
                        frozen[i] = true;
                    }
                }
                continue;
            }
            for &i in &active {
                alloc[i] += step;
                for &seg in &paths[i] {
                    residual[seg] -= step;
                }
            }
            // Freeze saturated farms/segments for the next round.
            for &i in &active {
                if self.effective_demand(&self.farms[i]) - alloc[i] <= 1e-9 {
                    frozen[i] = true;
                }
            }
            for &seg in through.keys() {
                if residual[seg] <= 1e-9 {
                    for i in 0..n {
                        if !frozen[i] && paths[i].contains(&seg) {
                            frozen[i] = true;
                        }
                    }
                }
            }
        }
        Allocation { per_farm_m3: alloc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Source(1000) → trunk(600) → {farmA(400), branch(300) → {farmB(400),
    /// farmC(200)}}; plus farmD(300) directly at the source.
    fn cbec_like() -> (DistributionNetwork, [FarmId; 4]) {
        let mut net = DistributionNetwork::new(1000.0);
        let trunk = net.add_junction(net.root(), 600.0);
        let branch = net.add_junction(trunk, 300.0);
        let a = net.add_farm(trunk, 400.0);
        let b = net.add_farm(branch, 400.0);
        let c = net.add_farm(branch, 200.0);
        let d = net.add_farm(net.root(), 300.0);
        (net, [a, b, c, d])
    }

    #[test]
    fn greedy_starves_tail_enders() {
        let (net, [a, b, c, d]) = cbec_like();
        let alloc = net.allocate_greedy_upstream();
        // A takes its full 400 from the 600 trunk; branch limited to 200
        // left; B takes it all; C gets nothing.
        assert_eq!(alloc.per_farm_m3[a.0], 400.0);
        assert_eq!(alloc.per_farm_m3[b.0], 200.0);
        assert_eq!(alloc.per_farm_m3[c.0], 0.0);
        assert_eq!(alloc.per_farm_m3[d.0], 300.0);
    }

    #[test]
    fn max_min_shares_bottlenecks() {
        let (net, [a, b, c, d]) = cbec_like();
        let alloc = net.allocate_max_min();
        // Branch (300) shared: B and C rise together; C freezes at... both
        // rise to 150 each (segment saturates at 150+150=300).
        assert!((alloc.per_farm_m3[b.0] - 150.0).abs() < 1e-6);
        assert!((alloc.per_farm_m3[c.0] - 150.0).abs() < 1e-6);
        // Trunk 600 minus branch 300 leaves A 300.
        assert!((alloc.per_farm_m3[a.0] - 300.0).abs() < 1e-6);
        assert!((alloc.per_farm_m3[d.0] - 300.0).abs() < 1e-6);
    }

    #[test]
    fn max_min_is_fairer_than_greedy() {
        let (net, _) = cbec_like();
        let demands = net.demands();
        let fair = net.allocate_max_min().jain_fairness(&demands);
        let greedy = net.allocate_greedy_upstream().jain_fairness(&demands);
        assert!(fair > greedy, "fair {fair:.3} vs greedy {greedy:.3}");
    }

    #[test]
    fn abundant_supply_satisfies_everyone() {
        let mut net = DistributionNetwork::new(10_000.0);
        let j = net.add_junction(net.root(), 5_000.0);
        let f1 = net.add_farm(j, 100.0);
        let f2 = net.add_farm(j, 250.0);
        for alloc in [net.allocate_max_min(), net.allocate_greedy_upstream()] {
            assert!((alloc.per_farm_m3[f1.0] - 100.0).abs() < 1e-6);
            assert!((alloc.per_farm_m3[f2.0] - 250.0).abs() < 1e-6);
            assert!((alloc.jain_fairness(&net.demands()) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let (net, _) = cbec_like();
        for alloc in [net.allocate_max_min(), net.allocate_greedy_upstream()] {
            assert!(alloc.total_m3() <= 1000.0 + 1e-6);
            // Branch constraint: farms B and C together ≤ 300.
            assert!(alloc.per_farm_m3[1] + alloc.per_farm_m3[2] <= 300.0 + 1e-6);
            // Trunk constraint: A+B+C ≤ 600.
            assert!(
                alloc.per_farm_m3[0] + alloc.per_farm_m3[1] + alloc.per_farm_m3[2] <= 600.0 + 1e-6
            );
        }
    }

    #[test]
    fn closed_gate_excluded_and_water_redistributed() {
        let (mut net, [a, b, c, _d]) = cbec_like();
        net.set_gate(a, false);
        let alloc = net.allocate_max_min();
        assert_eq!(alloc.per_farm_m3[a.0], 0.0);
        // The 300-capacity branch still binds B and C, but they now share
        // the whole branch without competing with A for the trunk.
        assert!((alloc.per_farm_m3[b.0] - 150.0).abs() < 1e-6);
        assert!((alloc.per_farm_m3[c.0] - 150.0).abs() < 1e-6);
    }

    #[test]
    fn demand_update_changes_allocation() {
        let (mut net, [_, b, c, _]) = cbec_like();
        net.set_demand(c, 50.0);
        let alloc = net.allocate_max_min();
        // C freezes at 50, B gets the rest of the 300 branch up to demand.
        assert!((alloc.per_farm_m3[c.0] - 50.0).abs() < 1e-6);
        assert!((alloc.per_farm_m3[b.0] - 250.0).abs() < 1e-6);
    }

    #[test]
    fn allocation_never_exceeds_demand() {
        let (net, _) = cbec_like();
        for alloc in [net.allocate_max_min(), net.allocate_greedy_upstream()] {
            for (got, want) in alloc.per_farm_m3.iter().zip(net.demands()) {
                assert!(*got <= want + 1e-9);
            }
        }
    }

    #[test]
    fn zero_demand_farm_is_ignored() {
        let mut net = DistributionNetwork::new(100.0);
        let f0 = net.add_farm(net.root(), 0.0);
        let f1 = net.add_farm(net.root(), 80.0);
        let alloc = net.allocate_max_min();
        assert_eq!(alloc.per_farm_m3[f0.0], 0.0);
        assert!((alloc.per_farm_m3[f1.0] - 80.0).abs() < 1e-6);
    }

    #[test]
    fn jain_fairness_extremes() {
        let demands = vec![100.0, 100.0];
        let equal = Allocation {
            per_farm_m3: vec![50.0, 50.0],
        };
        assert!((equal.jain_fairness(&demands) - 1.0).abs() < 1e-9);
        let skewed = Allocation {
            per_farm_m3: vec![100.0, 0.0],
        };
        assert!((skewed.jain_fairness(&demands) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deep_chain_bottleneck() {
        // Source → j1(100) → j2(50) → farm(80): limited by the 50 segment.
        let mut net = DistributionNetwork::new(1000.0);
        let j1 = net.add_junction(net.root(), 100.0);
        let j2 = net.add_junction(j1, 50.0);
        let f = net.add_farm(j2, 80.0);
        for alloc in [net.allocate_max_min(), net.allocate_greedy_upstream()] {
            assert!((alloc.per_farm_m3[f.0] - 50.0).abs() < 1e-6);
        }
    }
}
