//! Water sources and the cost/energy of delivering a cubic meter.
//!
//! The pilots differ exactly here: CBEC draws from consortium canals,
//! MATOPIBA pumps from wells/rivers into center pivots (energy is the pilot
//! goal), and Intercrop buys desalinated water (cost is the pilot goal).

/// A source of irrigation water with unit cost and energy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WaterSource {
    /// Gravity-fed consortium canal: cheap, low energy, but capped.
    Canal {
        /// Consortium tariff, €/m³.
        tariff_per_m3: f64,
    },
    /// Pumped well: energy scales with total dynamic head.
    Well {
        /// Total dynamic head (depth + friction + pressure), m.
        head_m: f64,
        /// Pump efficiency, 0–1.
        efficiency: f64,
        /// Electricity price, €/kWh.
        electricity_per_kwh: f64,
    },
    /// Desalinated supply: energy embedded in the price; very expensive.
    Desalination {
        /// Delivered price, €/m³ (Spanish SWRO ≈ 0.6–1.2 €/m³).
        price_per_m3: f64,
        /// Embedded plant energy, kWh/m³ (SWRO ≈ 3–4 kWh/m³).
        embedded_kwh_per_m3: f64,
    },
}

/// Cost and energy of one delivery.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeliveryCost {
    /// Monetary cost, €.
    pub cost_eur: f64,
    /// Electrical energy, kWh (on-farm pumping or embedded).
    pub energy_kwh: f64,
}

impl WaterSource {
    /// A typical CBEC canal offtake.
    pub fn cbec_canal() -> Self {
        WaterSource::Canal {
            tariff_per_m3: 0.08,
        }
    }

    /// A MATOPIBA well feeding a center pivot (60 m head, 75% wire-to-water).
    pub fn matopiba_well() -> Self {
        WaterSource::Well {
            head_m: 60.0,
            efficiency: 0.75,
            electricity_per_kwh: 0.12,
        }
    }

    /// Intercrop's desalinated supply.
    pub fn intercrop_desal() -> Self {
        WaterSource::Desalination {
            price_per_m3: 0.85,
            embedded_kwh_per_m3: 3.5,
        }
    }

    /// Cost and energy of delivering `volume_m3`.
    ///
    /// Pumping energy: `E = ρ·g·H·V / (3.6e6 · η)` kWh.
    ///
    /// # Panics
    /// Panics if `volume_m3` is negative.
    pub fn deliver(&self, volume_m3: f64) -> DeliveryCost {
        assert!(volume_m3 >= 0.0, "volume must be non-negative");
        match *self {
            WaterSource::Canal { tariff_per_m3 } => DeliveryCost {
                cost_eur: tariff_per_m3 * volume_m3,
                energy_kwh: 0.0,
            },
            WaterSource::Well {
                head_m,
                efficiency,
                electricity_per_kwh,
            } => {
                let kwh = 1000.0 * 9.81 * head_m * volume_m3 / (3.6e6 * efficiency);
                DeliveryCost {
                    cost_eur: kwh * electricity_per_kwh,
                    energy_kwh: kwh,
                }
            }
            WaterSource::Desalination {
                price_per_m3,
                embedded_kwh_per_m3,
            } => DeliveryCost {
                cost_eur: price_per_m3 * volume_m3,
                energy_kwh: embedded_kwh_per_m3 * volume_m3,
            },
        }
    }
}

/// Converts an irrigation depth over an area into volume.
///
/// 1 mm over 1 ha = 10 m³.
pub fn depth_to_volume_m3(depth_mm: f64, area_ha: f64) -> f64 {
    depth_mm * area_ha * 10.0
}

/// Running account of water, cost and energy for a farm or pilot season.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WaterAccount {
    /// Total water delivered, m³.
    pub volume_m3: f64,
    /// Total cost, €.
    pub cost_eur: f64,
    /// Total energy, kWh.
    pub energy_kwh: f64,
    /// Number of irrigation events.
    pub events: u64,
}

impl WaterAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        WaterAccount::default()
    }

    /// Records a delivery from a source.
    pub fn record(&mut self, source: &WaterSource, volume_m3: f64) {
        if volume_m3 <= 0.0 {
            return;
        }
        let cost = source.deliver(volume_m3);
        self.volume_m3 += volume_m3;
        self.cost_eur += cost.cost_eur;
        self.energy_kwh += cost.energy_kwh;
        self.events += 1;
    }

    /// Merges another account (e.g. per-zone accounts into a farm total).
    pub fn merge(&mut self, other: &WaterAccount) {
        self.volume_m3 += other.volume_m3;
        self.cost_eur += other.cost_eur;
        self.energy_kwh += other.energy_kwh;
        self.events += other.events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canal_costs_tariff_only() {
        let c = WaterSource::cbec_canal().deliver(100.0);
        assert!((c.cost_eur - 8.0).abs() < 1e-9);
        assert_eq!(c.energy_kwh, 0.0);
    }

    #[test]
    fn well_pumping_energy_physics() {
        // 60 m head, 75% efficiency, 1000 m³:
        // E = 1000·9.81·60·1000/(3.6e6·0.75) ≈ 218 kWh.
        let c = WaterSource::matopiba_well().deliver(1000.0);
        assert!((c.energy_kwh - 218.0).abs() < 1.0, "kwh {}", c.energy_kwh);
        assert!((c.cost_eur - c.energy_kwh * 0.12).abs() < 1e-9);
    }

    #[test]
    fn desalination_dominates_cost() {
        let desal = WaterSource::intercrop_desal().deliver(100.0);
        let canal = WaterSource::cbec_canal().deliver(100.0);
        assert!(desal.cost_eur > 10.0 * canal.cost_eur);
        assert!((desal.energy_kwh - 350.0).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_head() {
        let shallow = WaterSource::Well {
            head_m: 20.0,
            efficiency: 0.75,
            electricity_per_kwh: 0.12,
        }
        .deliver(100.0);
        let deep = WaterSource::Well {
            head_m: 80.0,
            efficiency: 0.75,
            electricity_per_kwh: 0.12,
        }
        .deliver(100.0);
        assert!((deep.energy_kwh / shallow.energy_kwh - 4.0).abs() < 1e-9);
    }

    #[test]
    fn depth_volume_conversion() {
        assert!((depth_to_volume_m3(1.0, 1.0) - 10.0).abs() < 1e-12);
        // 25 mm over a 50-ha pivot circle = 12,500 m³.
        assert!((depth_to_volume_m3(25.0, 50.0) - 12_500.0).abs() < 1e-9);
    }

    #[test]
    fn account_accumulates_and_merges() {
        let mut a = WaterAccount::new();
        let src = WaterSource::cbec_canal();
        a.record(&src, 50.0);
        a.record(&src, 0.0); // ignored
        a.record(&src, 150.0);
        assert_eq!(a.events, 2);
        assert!((a.volume_m3 - 200.0).abs() < 1e-9);
        assert!((a.cost_eur - 16.0).abs() < 1e-9);

        let mut b = WaterAccount::new();
        b.record(&WaterSource::intercrop_desal(), 10.0);
        a.merge(&b);
        assert_eq!(a.events, 3);
        assert!((a.volume_m3 - 210.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_volume_panics() {
        WaterSource::cbec_canal().deliver(-1.0);
    }
}
