//! Variable Rate Irrigation planning for center pivots (MATOPIBA pilot).
//!
//! The planner turns per-zone water prescriptions (mm) into a per-sector
//! speed plan for [`swamp_sensors::CenterPivot`]: the machine applies
//! `base_depth / speed` mm per pass, so the speed for a prescribed depth is
//! `base_depth / depth`, clamped to the machine's envelope. Sectors whose
//! prescription is zero run at full speed with (idealized) nozzles off.

use swamp_sensors::actuators::CenterPivot;

/// A per-sector water prescription, mm per pass.
#[derive(Clone, Debug, PartialEq)]
pub struct Prescription {
    depths_mm: Vec<f64>,
}

impl Prescription {
    /// Creates a prescription from per-sector depths.
    ///
    /// # Panics
    /// Panics if empty or any depth is negative/not finite.
    pub fn new(depths_mm: Vec<f64>) -> Self {
        assert!(
            !depths_mm.is_empty(),
            "prescription needs at least one sector"
        );
        assert!(
            depths_mm.iter().all(|d| d.is_finite() && *d >= 0.0),
            "depths must be finite and non-negative"
        );
        Prescription { depths_mm }
    }

    /// Uniform prescription (the non-VRI baseline).
    pub fn uniform(sectors: usize, depth_mm: f64) -> Self {
        Prescription::new(vec![depth_mm; sectors])
    }

    /// Per-sector depths, mm.
    pub fn depths_mm(&self) -> &[f64] {
        &self.depths_mm
    }

    /// Number of sectors.
    pub fn sectors(&self) -> usize {
        self.depths_mm.len()
    }

    /// Total water over the field if each sector has equal area, expressed
    /// as the mean depth, mm.
    pub fn mean_depth_mm(&self) -> f64 {
        self.depths_mm.iter().sum::<f64>() / self.depths_mm.len() as f64
    }
}

/// The compiled machine plan.
#[derive(Clone, Debug, PartialEq)]
pub struct VriPlan {
    /// Speed fraction per sector for the pivot controller.
    pub sector_speeds: Vec<f64>,
    /// Sectors whose nozzles are shut entirely (prescription 0).
    pub nozzles_off: Vec<bool>,
    /// Depth actually achievable per sector, mm (after clamping).
    pub achieved_mm: Vec<f64>,
}

/// Compiles a prescription into a speed plan for the given pivot.
///
/// Depths below the machine's full-speed depth are delivered as
/// full-speed passes (slightly over-applying); depths above the slowest
/// achievable application are clamped to it.
///
/// # Panics
/// Panics if the prescription's sector count differs from the pivot's.
pub fn compile_plan(pivot: &CenterPivot, rx: &Prescription, base_depth_mm: f64) -> VriPlan {
    assert_eq!(
        rx.sectors(),
        pivot.sectors(),
        "prescription sectors {} != pivot sectors {}",
        rx.sectors(),
        pivot.sectors()
    );
    const MIN_SPEED: f64 = 0.05;
    let mut sector_speeds = Vec::with_capacity(rx.sectors());
    let mut nozzles_off = Vec::with_capacity(rx.sectors());
    let mut achieved = Vec::with_capacity(rx.sectors());
    for &depth in rx.depths_mm() {
        if depth <= 0.0 {
            sector_speeds.push(1.0);
            nozzles_off.push(true);
            achieved.push(0.0);
        } else {
            let speed = (base_depth_mm / depth).clamp(MIN_SPEED, 1.0);
            sector_speeds.push(speed);
            nozzles_off.push(false);
            achieved.push(base_depth_mm / speed);
        }
    }
    VriPlan {
        sector_speeds,
        nozzles_off,
        achieved_mm: achieved,
    }
}

/// Maps management-zone prescriptions onto pivot sectors when the counts
/// differ (zones may be coarser than sectors). Sector *i* takes the depth of
/// the zone covering its angular midpoint.
pub fn zones_to_sectors(zone_depths_mm: &[f64], sectors: usize) -> Prescription {
    assert!(!zone_depths_mm.is_empty() && sectors > 0);
    let depths = (0..sectors)
        .map(|s| {
            let midpoint = (s as f64 + 0.5) / sectors as f64;
            let zone =
                ((midpoint * zone_depths_mm.len() as f64) as usize).min(zone_depths_mm.len() - 1);
            zone_depths_mm[zone]
        })
        .collect();
    Prescription::new(depths)
}

/// Water saved by a variable prescription relative to applying its maximum
/// uniformly (what a non-VRI pivot must do to avoid under-watering any
/// zone): returns (vri_mean_mm, uniform_mm, saving_fraction).
pub fn water_saving_vs_uniform(rx: &Prescription) -> (f64, f64, f64) {
    let uniform = rx
        .depths_mm()
        .iter()
        .fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let vri = rx.mean_depth_mm();
    let saving = if uniform > 0.0 {
        1.0 - vri / uniform
    } else {
        0.0
    };
    (vri, uniform, saving)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sensors::actuators::CenterPivot;
    use swamp_sim::SimTime;

    fn pivot(sectors: usize) -> CenterPivot {
        CenterPivot::new("pivot", sectors, 12.0, 10.0)
    }

    #[test]
    fn exact_depths_compile_to_inverse_speeds() {
        let p = pivot(4);
        let rx = Prescription::new(vec![10.0, 20.0, 40.0, 10.0]);
        let plan = compile_plan(&p, &rx, 10.0);
        assert_eq!(plan.sector_speeds, vec![1.0, 0.5, 0.25, 1.0]);
        assert_eq!(plan.achieved_mm, vec![10.0, 20.0, 40.0, 10.0]);
        assert!(plan.nozzles_off.iter().all(|&off| !off));
    }

    #[test]
    fn zero_prescription_shuts_nozzles() {
        let p = pivot(3);
        let rx = Prescription::new(vec![0.0, 15.0, 0.0]);
        let plan = compile_plan(&p, &rx, 10.0);
        assert_eq!(plan.nozzles_off, vec![true, false, true]);
        assert_eq!(plan.sector_speeds[0], 1.0);
        assert_eq!(plan.achieved_mm[0], 0.0);
    }

    #[test]
    fn clamping_at_machine_limits() {
        let p = pivot(2);
        // 1 mm wanted but machine applies ≥ 10 mm at full speed.
        let rx = Prescription::new(vec![1.0, 500.0]);
        let plan = compile_plan(&p, &rx, 10.0);
        assert_eq!(plan.sector_speeds[0], 1.0);
        assert_eq!(plan.achieved_mm[0], 10.0); // over-applies
        assert_eq!(plan.sector_speeds[1], 0.05);
        assert!((plan.achieved_mm[1] - 200.0).abs() < 1e-9); // clamped
    }

    #[test]
    fn plan_is_accepted_by_machine() {
        let mut p = pivot(4);
        let rx = Prescription::new(vec![10.0, 25.0, 0.0, 14.0]);
        let plan = compile_plan(&p, &rx, 10.0);
        p.set_sector_speeds(plan.sector_speeds).unwrap();
        p.start(SimTime::ZERO);
    }

    #[test]
    fn zones_map_to_sectors() {
        // 2 zones onto 4 sectors: first half zone 0, second half zone 1.
        let rx = zones_to_sectors(&[10.0, 30.0], 4);
        assert_eq!(rx.depths_mm(), &[10.0, 10.0, 30.0, 30.0]);
        // Equal counts: identity.
        let rx = zones_to_sectors(&[1.0, 2.0, 3.0], 3);
        assert_eq!(rx.depths_mm(), &[1.0, 2.0, 3.0]);
        // More zones than sectors: sector takes covering zone.
        let rx = zones_to_sectors(&[1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(rx.depths_mm(), &[2.0, 4.0]);
    }

    #[test]
    fn saving_computation() {
        let rx = Prescription::new(vec![10.0, 20.0, 30.0, 20.0]);
        let (vri, uniform, saving) = water_saving_vs_uniform(&rx);
        assert!((vri - 20.0).abs() < 1e-9);
        assert!((uniform - 30.0).abs() < 1e-9);
        assert!((saving - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_prescription_saves_nothing() {
        let rx = Prescription::uniform(8, 25.0);
        let (_, _, saving) = water_saving_vs_uniform(&rx);
        assert!(saving.abs() < 1e-12);
        assert_eq!(rx.mean_depth_mm(), 25.0);
    }

    #[test]
    #[should_panic(expected = "sectors")]
    fn sector_mismatch_panics() {
        let p = pivot(4);
        let rx = Prescription::new(vec![1.0; 3]);
        let _ = compile_plan(&p, &rx, 10.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_depth_rejected() {
        let _ = Prescription::new(vec![-1.0]);
    }
}
