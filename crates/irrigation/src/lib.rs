//! # swamp-irrigation — irrigation control for the SWAMP platform
//!
//! The decision layer between the platform's context data and the field
//! actuators:
//!
//! - [`schedule`] — irrigation policies: the over-watering
//!   [`schedule::FixedCalendar`] baseline the paper's introduction motivates
//!   against, threshold refill, ET replacement (with regulated-deficit
//!   fractions for the Guaspari pilot), and rainfed.
//! - [`vri`] — Variable Rate Irrigation planning: per-zone prescriptions
//!   compiled into center-pivot sector speed plans (MATOPIBA pilot).
//! - [`source`] — water sources (canal, pumped well, desalination) with the
//!   cost and pumping-energy physics behind the pilots' goals.
//! - [`network`] — the CBEC canal distribution tree with greedy vs
//!   max–min-fair allocation.
//!
//! ## Example: one smart irrigation decision
//!
//! ```
//! use swamp_irrigation::schedule::{IrrigationPolicy, ThresholdRefill, ZoneView};
//!
//! let mut policy = ThresholdRefill::new(1.0);
//! let view = ZoneView {
//!     depletion_mm: 48.0, taw_mm: 90.0, raw_mm: 45.0,
//!     etc_mm: 6.2, forecast_rain_mm: 0.0, das: 40,
//! };
//! let depth = policy.decide(&view);
//! assert_eq!(depth, 48.0); // refill to field capacity
//! ```

pub mod network;
pub mod schedule;
pub mod source;
pub mod vri;

pub use network::{Allocation, DistributionNetwork, FarmId};
pub use schedule::{
    DeficitMaintain, EtReplacement, FixedCalendar, IrrigationPolicy, Rainfed, ThresholdRefill,
    ZoneView,
};
pub use source::{DeliveryCost, WaterAccount, WaterSource};
pub use vri::{compile_plan, Prescription, VriPlan};
