//! Irrigation scheduling policies.
//!
//! The paper's motivation: "In an attempt to avoid loss of productivity by
//! under-irrigation, farmers feed more water than is needed" — that is
//! [`FixedCalendar`], the baseline every smart policy is compared against in
//! experiment E1. The smart policies use the soil/ET state the SWAMP
//! platform assembles from sensor data.

use swamp_agro::soil::SoilWaterBalance;

/// What a policy can see when deciding: the platform's *estimate* of the
/// zone state (possibly from noisy or tampered sensors — deliberately not
/// the ground truth).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZoneView {
    /// Estimated root-zone depletion, mm.
    pub depletion_mm: f64,
    /// Total available water for the zone, mm.
    pub taw_mm: f64,
    /// Readily available water threshold, mm.
    pub raw_mm: f64,
    /// Today's crop demand estimate `ETc`, mm.
    pub etc_mm: f64,
    /// Rain forecast for today, mm (0 when no forecast integration).
    pub forecast_rain_mm: f64,
    /// Day after sowing.
    pub das: u32,
}

impl ZoneView {
    /// Builds the view a *perfectly informed* platform would have, straight
    /// from the true water balance. Tests and upper-bound baselines use it.
    pub fn from_truth(swb: &SoilWaterBalance, etc_mm: f64, das: u32) -> Self {
        ZoneView {
            depletion_mm: swb.depletion_mm(),
            taw_mm: swb.taw_mm(),
            raw_mm: swb.raw_mm(),
            etc_mm,
            forecast_rain_mm: 0.0,
            das,
        }
    }
}

/// An irrigation decision: depth to apply today, mm (0 = skip).
pub type DepthMm = f64;

/// A scheduling policy. Object-safe so pilots can mix policies per zone.
///
/// `Send + Sync` is a supertrait: boxed policies live inside
/// `swamp_core::service::IrrigationService`, which the scale-out worker
/// pool moves across threads. Every policy is plain owned data, so the
/// bound costs implementors nothing — it exists so the compile-time
/// Send/Sync audit (`crates/shard/tests/send_sync.rs`) holds for the whole
/// platform stack.
pub trait IrrigationPolicy: Send + Sync {
    /// Decides today's application depth for a zone.
    fn decide(&mut self, view: &ZoneView) -> DepthMm;

    /// Short policy name for reports.
    fn name(&self) -> &str;
}

/// The conventional baseline: irrigate every `interval_days` with a fixed
/// depth, regardless of soil state (over-irrigation by design).
#[derive(Clone, Debug)]
pub struct FixedCalendar {
    interval_days: u32,
    depth_mm: f64,
}

impl FixedCalendar {
    /// Creates a calendar policy.
    ///
    /// # Panics
    /// Panics if `interval_days == 0` or `depth_mm < 0`.
    pub fn new(interval_days: u32, depth_mm: f64) -> Self {
        assert!(interval_days > 0, "interval must be at least one day");
        assert!(depth_mm >= 0.0);
        FixedCalendar {
            interval_days,
            depth_mm,
        }
    }
}

impl IrrigationPolicy for FixedCalendar {
    fn decide(&mut self, view: &ZoneView) -> DepthMm {
        if view.das.is_multiple_of(self.interval_days) {
            self.depth_mm
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "fixed-calendar"
    }
}

/// Threshold ("management allowed depletion") policy: refill to field
/// capacity when depletion crosses `trigger_fraction` of RAW.
#[derive(Clone, Debug)]
pub struct ThresholdRefill {
    trigger_fraction: f64,
}

impl ThresholdRefill {
    /// Creates a threshold policy; `trigger_fraction` is relative to RAW
    /// (1.0 = classic "irrigate at RAW" rule).
    ///
    /// # Panics
    /// Panics if `trigger_fraction <= 0`.
    pub fn new(trigger_fraction: f64) -> Self {
        assert!(trigger_fraction > 0.0);
        ThresholdRefill { trigger_fraction }
    }
}

impl IrrigationPolicy for ThresholdRefill {
    fn decide(&mut self, view: &ZoneView) -> DepthMm {
        if view.depletion_mm >= self.trigger_fraction * view.raw_mm {
            // Refill to field capacity, discounted by forecast rain.
            (view.depletion_mm - view.forecast_rain_mm).max(0.0)
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "threshold-refill"
    }
}

/// ET-replacement policy: apply yesterday-accumulated crop demand daily,
/// skipping when rain covers it. `fraction` < 1 implements regulated
/// deficit irrigation (Guaspari).
#[derive(Clone, Debug)]
pub struct EtReplacement {
    fraction: f64,
    carry_mm: f64,
    /// Do not bother the system for applications smaller than this.
    min_application_mm: f64,
}

impl EtReplacement {
    /// Creates an ET-replacement policy applying `fraction` of demand.
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1.5]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.5,
            "fraction {fraction} outside (0, 1.5]"
        );
        EtReplacement {
            fraction,
            carry_mm: 0.0,
            min_application_mm: 3.0,
        }
    }
}

impl IrrigationPolicy for EtReplacement {
    fn decide(&mut self, view: &ZoneView) -> DepthMm {
        self.carry_mm += view.etc_mm * self.fraction - view.forecast_rain_mm;
        self.carry_mm = self.carry_mm.max(0.0);
        if self.carry_mm >= self.min_application_mm {
            let apply = self.carry_mm;
            self.carry_mm = 0.0;
            apply
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "et-replacement"
    }
}

/// Regulated deficit irrigation: holds the root zone at a target stress
/// coefficient `Ks` instead of at field capacity.
///
/// The policy withholds water until depletion passes the point where
/// `Ks = target_ks`, then tops up only back to that point — the viticulture
/// practice behind the Guaspari pilot's quality goal. Rain can temporarily
/// relieve the stress (as in the field); the policy simply waits for the
/// profile to dry back down.
#[derive(Clone, Debug)]
pub struct DeficitMaintain {
    target_ks: f64,
    min_application_mm: f64,
}

impl DeficitMaintain {
    /// Creates a policy holding `Ks ≈ target_ks`.
    ///
    /// # Panics
    /// Panics unless `0 < target_ks <= 1`.
    pub fn new(target_ks: f64) -> Self {
        assert!(
            target_ks > 0.0 && target_ks <= 1.0,
            "target Ks {target_ks} outside (0,1]"
        );
        DeficitMaintain {
            target_ks,
            min_application_mm: 2.0,
        }
    }
}

impl IrrigationPolicy for DeficitMaintain {
    fn decide(&mut self, view: &ZoneView) -> DepthMm {
        // Depletion at which Ks equals the target (FAO-56 stress line).
        let d_target = view.taw_mm - self.target_ks * (view.taw_mm - view.raw_mm);
        let excess = view.depletion_mm + view.etc_mm - d_target - view.forecast_rain_mm;
        if excess >= self.min_application_mm {
            excess
        } else {
            0.0
        }
    }

    fn name(&self) -> &str {
        "deficit-maintain"
    }
}

/// No irrigation at all (rainfed lower bound).
#[derive(Clone, Copy, Debug, Default)]
pub struct Rainfed;

impl IrrigationPolicy for Rainfed {
    fn decide(&mut self, _view: &ZoneView) -> DepthMm {
        0.0
    }

    fn name(&self) -> &str {
        "rainfed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_agro::soil::{SoilProperties, SoilWaterBalance};

    fn view(depletion: f64, etc: f64, das: u32) -> ZoneView {
        ZoneView {
            depletion_mm: depletion,
            taw_mm: 90.0,
            raw_mm: 45.0,
            etc_mm: etc,
            forecast_rain_mm: 0.0,
            das,
        }
    }

    #[test]
    fn fixed_calendar_fires_on_interval() {
        let mut p = FixedCalendar::new(3, 25.0);
        assert_eq!(p.decide(&view(0.0, 5.0, 0)), 25.0);
        assert_eq!(p.decide(&view(0.0, 5.0, 1)), 0.0);
        assert_eq!(p.decide(&view(0.0, 5.0, 2)), 0.0);
        assert_eq!(p.decide(&view(0.0, 5.0, 3)), 25.0);
        // Ignores soil state entirely — that is the point of the baseline.
        assert_eq!(p.decide(&view(0.0, 0.0, 6)), 25.0);
    }

    #[test]
    fn threshold_waits_then_refills() {
        let mut p = ThresholdRefill::new(1.0);
        assert_eq!(p.decide(&view(30.0, 5.0, 10)), 0.0); // below RAW
        assert_eq!(p.decide(&view(45.0, 5.0, 11)), 45.0); // at RAW: refill
        assert_eq!(p.decide(&view(60.0, 5.0, 12)), 60.0);
    }

    #[test]
    fn threshold_discounts_forecast_rain() {
        let mut p = ThresholdRefill::new(1.0);
        let mut v = view(50.0, 5.0, 10);
        v.forecast_rain_mm = 20.0;
        assert_eq!(p.decide(&v), 30.0);
        v.forecast_rain_mm = 100.0;
        assert_eq!(p.decide(&v), 0.0);
    }

    #[test]
    fn et_replacement_accumulates_until_threshold() {
        let mut p = EtReplacement::new(1.0);
        assert_eq!(p.decide(&view(0.0, 2.0, 0)), 0.0); // 2 mm carried
        let applied = p.decide(&view(0.0, 2.0, 1)); // 4 mm ≥ 3 mm min
        assert!((applied - 4.0).abs() < 1e-9);
        assert_eq!(p.decide(&view(0.0, 1.0, 2)), 0.0); // reset, carries 1
    }

    #[test]
    fn deficit_fraction_applies_less() {
        let mut full = EtReplacement::new(1.0);
        let mut deficit = EtReplacement::new(0.6);
        let mut sum_full = 0.0;
        let mut sum_deficit = 0.0;
        for das in 0..30 {
            sum_full += full.decide(&view(0.0, 5.0, das));
            sum_deficit += deficit.decide(&view(0.0, 5.0, das));
        }
        assert!((sum_deficit / sum_full - 0.6).abs() < 0.05);
    }

    #[test]
    fn rain_suppresses_et_replacement() {
        let mut p = EtReplacement::new(1.0);
        let mut v = view(0.0, 5.0, 0);
        v.forecast_rain_mm = 10.0;
        assert_eq!(p.decide(&v), 0.0);
        // The surplus rain does not go negative into future days.
        let applied = p.decide(&view(0.0, 5.0, 1));
        assert_eq!(applied, 5.0);
    }

    #[test]
    fn rainfed_never_irrigates() {
        let mut p = Rainfed;
        assert_eq!(p.decide(&view(89.0, 9.0, 50)), 0.0);
        assert_eq!(p.name(), "rainfed");
    }

    #[test]
    fn zone_view_from_truth() {
        let swb = SoilWaterBalance::new(SoilProperties::loam(), 0.6, 0.5);
        let v = ZoneView::from_truth(&swb, 5.5, 12);
        assert_eq!(v.depletion_mm, 0.0);
        assert!((v.taw_mm - 90.0).abs() < 1e-9);
        assert!((v.raw_mm - 45.0).abs() < 1e-9);
        assert_eq!(v.etc_mm, 5.5);
        assert_eq!(v.das, 12);
    }

    #[test]
    fn policies_are_object_safe() {
        let mut policies: Vec<Box<dyn IrrigationPolicy>> = vec![
            Box::new(FixedCalendar::new(2, 20.0)),
            Box::new(ThresholdRefill::new(1.0)),
            Box::new(EtReplacement::new(1.0)),
            Box::new(Rainfed),
        ];
        for p in &mut policies {
            let _ = p.decide(&view(50.0, 5.0, 4));
            assert!(!p.name().is_empty());
        }
    }
}
