//! Snapshot export: sorted maps, loud unknown-key reads, merging across
//! components, a byte-stable JSON form and the read-compat
//! [`Metrics`] view.
//!
//! Determinism contract: for a fixed sequence of [`crate::Obs`] operations,
//! [`ObsSnapshot::to_json_string`] (and therefore
//! [`ObsReport::to_json_string`]) is byte-identical across runs and
//! platforms. Everything is held in `BTreeMap`s (lexicographic key order),
//! events are exported in sequence order, and floats are formatted with
//! Rust's shortest-roundtrip `Display`, which is a pure function of the bit
//! pattern. No wall-clock anywhere.

use std::collections::BTreeMap;
use std::fmt;

use swamp_sim::metrics::Metrics;
use swamp_sim::stats::{Histogram, OnlineStats};

use crate::Level;

/// Error for snapshot reads of names that were never registered.
///
/// This is the fix for the old `Metrics::counter` footgun, where a typo'd
/// key silently read as 0 and an experiment assertion could pass vacuously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsError {
    /// No counter with this name was ever registered.
    UnknownCounter(String),
    /// No gauge with this name was ever registered.
    UnknownGauge(String),
    /// No histogram with this name was ever registered.
    UnknownSummary(String),
    /// No span with this name was ever registered.
    UnknownSpan(String),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::UnknownCounter(n) => write!(f, "unknown counter `{n}` (never registered)"),
            ObsError::UnknownGauge(n) => write!(f, "unknown gauge `{n}` (never registered)"),
            ObsError::UnknownSummary(n) => {
                write!(f, "unknown histogram `{n}` (never registered)")
            }
            ObsError::UnknownSpan(n) => write!(f, "unknown span `{n}` (never registered)"),
        }
    }
}

impl std::error::Error for ObsError {}

/// Exported view of one histogram: exact running moments plus quantile
/// estimates from the fixed buckets (`None` while empty).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistSnapshot {
    /// Exact count/mean/min/max/variance (mergeable).
    pub stats: OnlineStats,
    /// Estimated median (bucket-interpolated).
    pub p50: Option<f64>,
    /// Estimated 95th percentile.
    pub p95: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
    /// Samples below the bucket range (clamped into the first bucket).
    pub underflow: u64,
    /// Samples at or above the bucket range (clamped into the last bucket).
    pub overflow: u64,
}

impl HistSnapshot {
    pub(crate) fn from_cell(hist: &Histogram, stats: &OnlineStats) -> HistSnapshot {
        HistSnapshot {
            stats: *stats,
            p50: hist.quantile(0.5),
            p95: hist.quantile(0.95),
            p99: hist.quantile(0.99),
            underflow: hist.underflow(),
            overflow: hist.overflow(),
        }
    }

    /// Merges another histogram snapshot: exact moments merge exactly;
    /// quantiles cannot be merged without the buckets, so they become
    /// `None` whenever both sides carry samples.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.stats.count() == 0 {
            return;
        }
        if self.stats.count() == 0 {
            *self = other.clone();
            return;
        }
        self.stats.merge(&other.stats);
        self.p50 = None;
        self.p95 = None;
        self.p99 = None;
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }
}

/// Exported view of one span: how often it closed, its tick-duration
/// distribution and which child spans it directly enclosed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanSnapshot {
    /// Completed (entered and exited) scopes.
    pub count: u64,
    /// Duration distribution in ticks (exact moments).
    pub ticks: OnlineStats,
    /// Estimated median duration in ticks.
    pub p50: Option<f64>,
    /// Estimated 95th-percentile duration in ticks.
    pub p95: Option<f64>,
    /// Estimated 99th-percentile duration in ticks.
    pub p99: Option<f64>,
    /// child span name → times entered directly under this span.
    pub children: BTreeMap<String, u64>,
}

/// One exported event from the bounded ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Global sequence number (gaps reveal ring overwrites).
    pub seq: u64,
    /// Tick at which the event was logged.
    pub tick: u64,
    /// Severity.
    pub level: Level,
    /// Stable machine-readable code, e.g. `"sync.mode"`.
    pub code: String,
    /// Human-readable detail.
    pub detail: String,
}

/// A point-in-time export of an [`Obs`](crate::Obs) registry (or a merge of
/// several). All maps are sorted; see the module docs for the determinism
/// contract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Option<f64>>,
    summaries: BTreeMap<String, HistSnapshot>,
    spans: BTreeMap<String, SpanSnapshot>,
    events: Vec<EventRecord>,
    events_dropped: u64,
    ticks: u64,
}

impl ObsSnapshot {
    // ---- assembly (used by Obs::snapshot and component merge code) -----

    /// Inserts (or adds to) a counter entry.
    pub fn put_counter(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Inserts a gauge entry (overwrites).
    pub fn put_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), Some(value));
    }

    /// Inserts a registered-but-possibly-unset gauge entry.
    pub(crate) fn put_gauge_opt(&mut self, name: &str, value: Option<f64>) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Inserts (or merges into) a histogram entry.
    pub fn put_summary(&mut self, name: &str, snap: HistSnapshot) {
        match self.summaries.get_mut(name) {
            Some(existing) => existing.merge(&snap),
            None => {
                self.summaries.insert(name.to_owned(), snap);
            }
        }
    }

    pub(crate) fn put_span(&mut self, name: &str, snap: SpanSnapshot) {
        self.spans.insert(name.to_owned(), snap);
    }

    pub(crate) fn push_event(&mut self, ev: EventRecord) {
        self.events.push(ev);
    }

    pub(crate) fn add_events_dropped(&mut self, n: u64) {
        self.events_dropped += n;
    }

    pub(crate) fn add_ticks(&mut self, n: u64) {
        self.ticks += n;
    }

    /// Merges another snapshot into this one: counters add, gauges take the
    /// other's value, histograms merge, spans take the other's entry on
    /// collision, events concatenate with a source-order-stable sort by
    /// `(tick, seq)`.
    ///
    /// Component metric names are prefixed (`net.`, `sync.`, `cloud.`…) so
    /// collisions only occur when merging snapshots of the *same*
    /// component, where additive counters are the right semantics.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, snap) in &other.summaries {
            self.put_summary(name, snap.clone());
        }
        for (name, snap) in &other.spans {
            self.spans.insert(name.clone(), snap.clone());
        }
        self.events.extend(other.events.iter().cloned());
        self.events.sort_by_key(|e| (e.tick, e.seq));
        self.events_dropped += other.events_dropped;
        self.ticks += other.ticks;
    }

    // ---- reads ---------------------------------------------------------

    /// Reads a counter. Unlike `Metrics::counter`, an unregistered name is
    /// an [`Err`], not a silent 0.
    pub fn counter(&self, name: &str) -> Result<u64, ObsError> {
        self.counters
            .get(name)
            .copied()
            .ok_or_else(|| ObsError::UnknownCounter(name.to_owned()))
    }

    /// Reads a gauge (`Ok(None)` if registered but never set).
    pub fn gauge(&self, name: &str) -> Result<Option<f64>, ObsError> {
        self.gauges
            .get(name)
            .copied()
            .ok_or_else(|| ObsError::UnknownGauge(name.to_owned()))
    }

    /// Reads a histogram summary.
    pub fn summary(&self, name: &str) -> Result<&HistSnapshot, ObsError> {
        self.summaries
            .get(name)
            .ok_or_else(|| ObsError::UnknownSummary(name.to_owned()))
    }

    /// Reads a span summary.
    pub fn span(&self, name: &str) -> Result<&SpanSnapshot, ObsError> {
        self.spans
            .get(name)
            .ok_or_else(|| ObsError::UnknownSpan(name.to_owned()))
    }

    /// Exported events, oldest first.
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Events lost to ring overwrites.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Total instrumented operations across the merged registries.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Iterates counters in lexicographic order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    // ---- compat + JSON export ------------------------------------------

    /// Builds the read-compat [`Metrics`] view: counters, set gauges and
    /// histogram summaries land under the same names the pre-`swamp-obs`
    /// code used, so existing `metrics().counter(…)` / `summary(…)` readers
    /// (and the report tables built from them) see identical values.
    pub fn to_metrics(&self) -> Metrics {
        let mut m = Metrics::new();
        for (name, value) in &self.counters {
            m.set_counter(name, *value);
        }
        for (name, value) in &self.gauges {
            if let Some(v) = value {
                m.set_gauge(name, *v);
            }
        }
        for (name, snap) in &self.summaries {
            m.set_summary(name, snap.stats);
        }
        m
    }

    /// Renders the snapshot as pretty-printed JSON with a byte-stable
    /// layout: object keys sorted, events in order, floats via shortest
    /// roundtrip formatting, non-finite floats as `null`.
    pub fn to_json_string(&self) -> String {
        let mut w = JsonWriter::new();
        w.open('{');
        w.key("counters");
        w.open('{');
        for (name, value) in &self.counters {
            w.key(name);
            w.raw(&value.to_string());
        }
        w.close('}');
        w.key("events");
        w.open('[');
        for ev in &self.events {
            w.item();
            w.open('{');
            w.key("code");
            w.string(&ev.code);
            w.key("detail");
            w.string(&ev.detail);
            w.key("level");
            w.string(ev.level.as_str());
            w.key("seq");
            w.raw(&ev.seq.to_string());
            w.key("tick");
            w.raw(&ev.tick.to_string());
            w.close('}');
        }
        w.close(']');
        w.key("events_dropped");
        w.raw(&self.events_dropped.to_string());
        w.key("gauges");
        w.open('{');
        for (name, value) in &self.gauges {
            w.key(name);
            match value {
                Some(v) => w.float(*v),
                None => w.raw("null"),
            }
        }
        w.close('}');
        w.key("spans");
        w.open('{');
        for (name, s) in &self.spans {
            w.key(name);
            w.open('{');
            w.key("children");
            w.open('{');
            for (child, count) in &s.children {
                w.key(child);
                w.raw(&count.to_string());
            }
            w.close('}');
            w.key("count");
            w.raw(&s.count.to_string());
            w.key("max_ticks");
            w.float_or_null(s.ticks.count() > 0, s.ticks.max());
            w.key("mean_ticks");
            w.float(s.ticks.mean());
            w.key("p50");
            w.opt_float(s.p50);
            w.key("p95");
            w.opt_float(s.p95);
            w.key("p99");
            w.opt_float(s.p99);
            w.close('}');
        }
        w.close('}');
        w.key("summaries");
        w.open('{');
        for (name, s) in &self.summaries {
            w.key(name);
            w.open('{');
            w.key("count");
            w.raw(&s.stats.count().to_string());
            w.key("max");
            w.float_or_null(s.stats.count() > 0, s.stats.max());
            w.key("mean");
            w.float(s.stats.mean());
            w.key("min");
            w.float_or_null(s.stats.count() > 0, s.stats.min());
            w.key("overflow");
            w.raw(&s.overflow.to_string());
            w.key("p50");
            w.opt_float(s.p50);
            w.key("p95");
            w.opt_float(s.p95);
            w.key("p99");
            w.opt_float(s.p99);
            w.key("sd");
            w.float(s.stats.sample_std_dev());
            w.key("underflow");
            w.raw(&s.underflow.to_string());
            w.close('}');
        }
        w.close('}');
        w.key("ticks");
        w.raw(&self.ticks.to_string());
        w.close('}');
        w.finish()
    }
}

/// A labelled snapshot the pilots harness writes next to `BENCH_*.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// What produced the snapshot, e.g. `"e13/FarmFog/loss10"`.
    pub label: String,
    /// Seed of the run (reports from the same seed must be byte-identical).
    pub seed: u64,
    /// The merged snapshot.
    pub snapshot: ObsSnapshot,
}

impl ObsReport {
    /// Creates a report.
    pub fn new(label: &str, seed: u64, snapshot: ObsSnapshot) -> ObsReport {
        ObsReport {
            label: label.to_owned(),
            seed,
            snapshot,
        }
    }

    /// Byte-stable pretty JSON: `{"label": …, "seed": …, "snapshot": {…}}`.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"label\": ");
        let mut esc = String::new();
        escape_into(&self.label, &mut esc);
        out.push_str(&esc);
        out.push_str(",\n  \"seed\": ");
        out.push_str(&self.seed.to_string());
        out.push_str(",\n  \"snapshot\": ");
        // Indent the nested snapshot body by one level.
        let body = self.snapshot.to_json_string();
        for (i, line) in body.lines().enumerate() {
            if i > 0 {
                out.push_str("\n  ");
            }
            out.push_str(line);
        }
        out.push_str("\n}");
        out
    }

    /// Byte-stable JSON array over several reports (e.g. one per
    /// experiment cell), newline-terminated for clean file export.
    pub fn array_to_json_string(reports: &[ObsReport]) -> String {
        let mut out = String::from("[\n");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&r.to_json_string());
        }
        out.push_str("\n]\n");
        out
    }
}

/// Minimal pretty-printing JSON writer. Local to this crate (the
/// observability substrate stays zero-dependency below `swamp-sim`); the
/// richer `swamp-codec` JSON tree is not needed for write-only export.
struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current container already has a member (comma control).
    has_member: Vec<bool>,
}

impl JsonWriter {
    fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_member: Vec::new(),
        }
    }

    fn newline_for_member(&mut self) {
        if let Some(has) = self.has_member.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn open(&mut self, bracket: char) {
        self.out.push(bracket);
        self.indent += 1;
        self.has_member.push(false);
    }

    fn close(&mut self, bracket: char) {
        let had = self.has_member.pop().unwrap_or(false);
        self.indent -= 1;
        if had {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push(bracket);
    }

    fn key(&mut self, name: &str) {
        self.newline_for_member();
        escape_into(name, &mut self.out);
        self.out.push_str(": ");
        // The value that follows must not re-trigger comma handling.
        if let Some(has) = self.has_member.last_mut() {
            *has = true;
        }
    }

    /// Starts an array element (arrays have no keys).
    fn item(&mut self) {
        self.newline_for_member();
    }

    fn raw(&mut self, text: &str) {
        self.out.push_str(text);
    }

    fn string(&mut self, s: &str) {
        escape_into(s, &mut self.out);
    }

    fn float(&mut self, v: f64) {
        if v.is_finite() {
            // Shortest-roundtrip Display: deterministic per bit pattern.
            let s = v.to_string();
            self.out.push_str(&s);
        } else {
            self.out.push_str("null");
        }
    }

    fn opt_float(&mut self, v: Option<f64>) {
        match v {
            Some(x) => self.float(x),
            None => self.raw("null"),
        }
    }

    fn float_or_null(&mut self, present: bool, v: f64) {
        if present {
            self.float(v);
        } else {
            self.raw("null");
        }
    }

    fn finish(self) -> String {
        self.out
    }
}

/// JSON string escaping (quotes included).
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Level, Obs};

    fn sample_obs() -> Obs {
        let mut obs = Obs::new();
        let c = obs.counter("net.sent");
        let g = obs.gauge("sync.pending");
        let h = obs.hist("net.latency_ms", 0.0, 100.0, 10);
        let s = obs.span("platform.pump");
        obs.inc(c);
        obs.add(c, 4);
        obs.set(g, 2.0);
        obs.record(h, 12.5);
        obs.record(h, 37.5);
        let t = obs.enter(s);
        obs.inc(c);
        obs.exit(t);
        obs.event(Level::Warn, "sync.mode", "Connected -> Degraded");
        obs
    }

    /// Regression test for the `Metrics::counter` silent-zero bug: a typo'd
    /// key must be an error, while a registered-but-zero key reads Ok(0).
    #[test]
    fn unknown_key_reads_are_errors_not_zero() {
        let mut obs = Obs::new();
        let _ = obs.counter("ingest.accepted");
        let snap = obs.snapshot();
        assert_eq!(snap.counter("ingest.accepted"), Ok(0));
        assert_eq!(
            snap.counter("ingest.acepted"),
            Err(ObsError::UnknownCounter("ingest.acepted".to_owned()))
        );
        assert!(snap.gauge("nope").is_err());
        assert!(snap.summary("nope").is_err());
        assert!(snap.span("nope").is_err());
    }

    #[test]
    fn snapshot_reads_match_recorded_values() {
        let snap = sample_obs().snapshot();
        assert_eq!(snap.counter("net.sent").unwrap(), 6);
        assert_eq!(snap.gauge("sync.pending").unwrap(), Some(2.0));
        let lat = snap.summary("net.latency_ms").unwrap();
        assert_eq!(lat.stats.count(), 2);
        assert_eq!(lat.stats.mean(), 25.0);
        let pump = snap.span("platform.pump").unwrap();
        assert_eq!(pump.count, 1);
        assert_eq!(snap.events().len(), 1);
        assert_eq!(snap.events()[0].code, "sync.mode");
    }

    #[test]
    fn merge_adds_counters_and_merges_summaries() {
        let a = sample_obs().snapshot();
        let b = sample_obs().snapshot();
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("net.sent").unwrap(), 12);
        let lat = merged.summary("net.latency_ms").unwrap();
        assert_eq!(lat.stats.count(), 4);
        assert_eq!(lat.stats.mean(), 25.0);
        assert_eq!(lat.p50, None, "bucket-free merge cannot keep quantiles");
        assert_eq!(merged.events().len(), 2);
        assert_eq!(merged.ticks(), a.ticks() * 2);
    }

    #[test]
    fn to_metrics_matches_old_dialect() {
        let snap = sample_obs().snapshot();
        let m = snap.to_metrics();
        assert_eq!(m.counter("net.sent"), 6);
        assert_eq!(m.gauge("sync.pending"), Some(2.0));
        let s = m.summary("net.latency_ms").unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 25.0);
    }

    #[test]
    fn json_is_byte_identical_for_identical_op_sequences() {
        let a = sample_obs().snapshot().to_json_string();
        let b = sample_obs().snapshot().to_json_string();
        assert_eq!(a, b);
        assert!(a.contains("\"net.sent\": 6"), "{a}");
    }

    #[test]
    fn json_shape_is_sorted_and_escaped() {
        let mut obs = Obs::new();
        let _ = obs.counter("z.last");
        let _ = obs.counter("a.first");
        obs.event(Level::Info, "quote", "say \"hi\"\n");
        let json = obs.snapshot().to_json_string();
        let a_pos = json.find("a.first").expect("a.first exported");
        let z_pos = json.find("z.last").expect("z.last exported");
        assert!(a_pos < z_pos, "keys must sort");
        assert!(json.contains("say \\\"hi\\\"\\n"), "{json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_summary_exports_nulls_not_infinities() {
        let mut obs = Obs::new();
        let _ = obs.hist("quiet", 0.0, 1.0, 4);
        let json = obs.snapshot().to_json_string();
        assert!(!json.contains("inf"), "{json}");
        assert!(json.contains("\"min\": null"), "{json}");
    }

    #[test]
    fn report_wraps_label_and_seed() {
        let report = ObsReport::new("e13/FarmFog", 42, sample_obs().snapshot());
        let json = report.to_json_string();
        assert!(json.contains("\"label\": \"e13/FarmFog\""));
        assert!(json.contains("\"seed\": 42"));
        let again = ObsReport::new("e13/FarmFog", 42, sample_obs().snapshot());
        assert_eq!(json, again.to_json_string());
    }
}
