//! SWAMP observability substrate: one instrumentation API for the whole
//! platform.
//!
//! Before this crate the workspace spoke three instrumentation dialects:
//! the string-keyed [`swamp_sim::metrics::Metrics`] registry (a
//! `BTreeMap<String, _>` lookup — and an allocation on every miss — per
//! increment), ad-hoc struct counters (`CloudStore::acks_refused`,
//! `SyncStats`), and the bespoke `SyncHealth` snapshot. [`Obs`] replaces
//! all three:
//!
//! - **Typed handles** ([`Counter`], [`Gauge`], [`Hist`], [`Span`]) are
//!   registered once at construction time into dense slabs; every hot-path
//!   update is an indexed add with no hashing, no string comparison and no
//!   allocation.
//! - **Deterministic spans** measure *instrumented work*, not wall time:
//!   [`Obs`] keeps a monotone tick counter advanced by every recorded
//!   operation (and explicitly via [`Obs::advance`]), so span durations —
//!   including parent/child nesting counts — are bit-identical across runs
//!   of a seeded simulation. No `Instant` anywhere.
//! - A bounded **ring-buffer event log** ([`Obs::event`]) captures rare,
//!   high-value facts (degradation transitions, quarantine decisions,
//!   partition start/end) with a severity [`Level`], dropping the oldest
//!   entries once full.
//! - **Snapshots** ([`Obs::snapshot`] → [`ObsSnapshot`]) export everything
//!   as sorted maps with a stable JSON form ([`ObsSnapshot::to_json_string`],
//!   [`ObsReport`]) and a read-compat [`swamp_sim::metrics::Metrics`] view
//!   ([`ObsSnapshot::to_metrics`]) so pre-migration report tables stay
//!   bit-identical.
//!
//! Unlike `Metrics::counter`, which silently returns 0 for a typo'd name,
//! snapshot reads return [`Err`] for keys that were never registered —
//! misspelled metric names in experiment harnesses fail loudly instead of
//! reporting zeros.
//!
//! # Example
//! ```
//! use swamp_obs::{Level, Obs};
//!
//! let mut obs = Obs::new();
//! let sent = obs.counter("net.sent");
//! let latency = obs.hist("net.latency_ms", 0.0, 1000.0, 50);
//! let pump = obs.span("platform.pump");
//!
//! let t = obs.enter(pump);
//! obs.inc(sent);
//! obs.record(latency, 12.5);
//! obs.exit(t);
//! obs.event(Level::Warn, "link.partition", "gw-1 -> cloud partition start");
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("net.sent").unwrap(), 1);
//! assert!(snap.counter("net.snet").is_err(), "typos are loud");
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

use std::collections::BTreeMap;

use swamp_sim::stats::{Histogram, OnlineStats};

pub mod report;

pub use report::{EventRecord, HistSnapshot, ObsError, ObsReport, ObsSnapshot, SpanSnapshot};

/// Handle to a registered counter: an index into the counter slab.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counter(u32);

/// Handle to a registered gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gauge(u32);

/// Handle to a registered fixed-bucket histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hist(u32);

/// Handle to a registered span (a named scope with a duration histogram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span(u32);

/// Severity of a logged [`Obs::event`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Expected lifecycle fact (mode recovered, partition healed).
    Info,
    /// Degraded but operating (fallback engaged, device watched).
    Warn,
    /// Data-affecting condition (quarantine, offline, refused writes).
    Error,
}

impl Level {
    /// Stable lowercase name used in JSON exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Token returned by [`Obs::enter`]; pass it back to [`Obs::exit`] to close
/// the scope. Tokens are plain values (no RAII) so the `&mut Obs` stays
/// free for increments inside the span.
#[derive(Clone, Copy, Debug)]
#[must_use = "pass the token back to Obs::exit to close the span"]
pub struct SpanToken {
    span: u32,
    start: u64,
    live: bool,
}

/// What kind of instrument a name was registered as (for collision checks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Hist,
    Span,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Hist => "histogram",
            Kind::Span => "span",
        }
    }
}

/// A histogram slab cell: fixed buckets plus exact running moments, so
/// snapshots report both quantile estimates and an exact mergeable mean.
#[derive(Clone, Debug)]
struct HistCell {
    hist: Histogram,
    stats: OnlineStats,
}

/// A span slab cell: durations in ticks, both exact moments and a
/// fixed-bucket distribution (layout: [`span_hist_layout`]).
#[derive(Clone, Debug)]
struct SpanCell {
    count: u64,
    ticks: OnlineStats,
    hist: Histogram,
}

/// One logged event (internal form; exported as [`EventRecord`]).
#[derive(Clone, Debug)]
struct Event {
    seq: u64,
    tick: u64,
    level: Level,
    code: String,
    detail: String,
}

/// Span durations land in a shared fixed-bucket layout: `[0, 4096)` ticks,
/// 64 buckets. Longer spans clamp into the top bucket (counted as
/// overflow); the exact mean/max come from the parallel [`OnlineStats`].
const SPAN_HIST_LO: f64 = 0.0;
const SPAN_HIST_HI: f64 = 4096.0;
const SPAN_HIST_BINS: usize = 64;

/// Default bound on the event ring buffer.
const DEFAULT_EVENT_CAPACITY: usize = 256;

/// The observability registry: dense slabs of typed instruments, a tick
/// clock, a span stack and a bounded event ring. See the crate docs for
/// the model; see [`ObsSnapshot`] for the export side.
#[derive(Clone, Debug)]
pub struct Obs {
    enabled: bool,
    /// Registration index: name → (kind, slab index). Cold path only.
    index: BTreeMap<String, (Kind, u32)>,
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<Option<f64>>,
    hist_names: Vec<String>,
    hists: Vec<HistCell>,
    span_names: Vec<String>,
    spans: Vec<SpanCell>,
    /// Active span frames: (span index, start tick).
    stack: Vec<(u32, u64)>,
    /// (parent span index, child span index) → times entered while parent
    /// was the innermost active span.
    nest: BTreeMap<(u32, u32), u64>,
    /// Monotone operation counter: advanced by every recorded operation.
    tick: u64,
    events: Vec<Event>,
    event_capacity: usize,
    next_event_seq: u64,
    events_dropped: u64,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Creates an enabled registry with the default event capacity.
    pub fn new() -> Self {
        Obs {
            enabled: true,
            index: BTreeMap::new(),
            counter_names: Vec::new(),
            counters: Vec::new(),
            gauge_names: Vec::new(),
            gauges: Vec::new(),
            hist_names: Vec::new(),
            hists: Vec::new(),
            span_names: Vec::new(),
            spans: Vec::new(),
            stack: Vec::new(),
            nest: BTreeMap::new(),
            tick: 0,
            events: Vec::new(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
            next_event_seq: 0,
            events_dropped: 0,
        }
    }

    /// Creates a muted registry: registration works (handles stay valid)
    /// but every update is a no-op behind a single branch. Used to measure
    /// the uninstrumented baseline in `BENCH_obs.json`.
    pub fn muted() -> Self {
        let mut obs = Obs::new();
        obs.enabled = false;
        obs
    }

    /// Whether updates are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables recording (registration is unaffected).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Caps the event ring buffer (existing overflow entries are kept).
    pub fn set_event_capacity(&mut self, capacity: usize) {
        self.event_capacity = capacity.max(1);
    }

    // ---- registration (cold path) -------------------------------------

    /// Registers (or re-fetches) a counter by name.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&mut self, name: &str) -> Counter {
        let idx = self.register(name, Kind::Counter, |o| {
            o.counter_names.push(name.to_owned());
            o.counters.push(0);
            o.counters.len() as u32 - 1
        });
        Counter(idx)
    }

    /// Registers (or re-fetches) a gauge by name.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        let idx = self.register(name, Kind::Gauge, |o| {
            o.gauge_names.push(name.to_owned());
            o.gauges.push(None);
            o.gauges.len() as u32 - 1
        });
        Gauge(idx)
    }

    /// Registers (or re-fetches) a fixed-bucket histogram over `[lo, hi)`
    /// with `bins` equal-width buckets. Out-of-range samples clamp into the
    /// edge buckets and are counted as under/overflow.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind, if
    /// `bins == 0`, or if `[lo, hi)` is not a finite non-empty range.
    pub fn hist(&mut self, name: &str, lo: f64, hi: f64, bins: usize) -> Hist {
        let idx = self.register(name, Kind::Hist, |o| {
            o.hist_names.push(name.to_owned());
            o.hists.push(HistCell {
                hist: Histogram::new(lo, hi, bins),
                stats: OnlineStats::new(),
            });
            o.hists.len() as u32 - 1
        });
        Hist(idx)
    }

    /// Registers (or re-fetches) a span by name.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn span(&mut self, name: &str) -> Span {
        let idx = self.register(name, Kind::Span, |o| {
            o.span_names.push(name.to_owned());
            o.spans.push(SpanCell {
                count: 0,
                ticks: OnlineStats::new(),
                hist: Histogram::new(SPAN_HIST_LO, SPAN_HIST_HI, SPAN_HIST_BINS),
            });
            o.spans.len() as u32 - 1
        });
        Span(idx)
    }

    /// Shared registration: idempotent per (name, kind), loud on a kind
    /// collision — a name can only ever mean one thing.
    ///
    /// # Panics
    /// Panics if `name` is already registered under a different kind.
    fn register(&mut self, name: &str, kind: Kind, alloc: impl FnOnce(&mut Self) -> u32) -> u32 {
        if let Some(&(existing, idx)) = self.index.get(name) {
            assert!(
                existing == kind,
                "instrument `{name}` already registered as a {} (requested {})",
                existing.as_str(),
                kind.as_str(),
            );
            return idx;
        }
        let idx = alloc(self);
        self.index.insert(name.to_owned(), (kind, idx));
        idx
    }

    // ---- hot path ------------------------------------------------------

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        if let Some(v) = self.counters.get_mut(c.0 as usize) {
            *v += n;
        }
    }

    /// Sets a gauge to an absolute value.
    #[inline]
    pub fn set(&mut self, g: Gauge, value: f64) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        if let Some(v) = self.gauges.get_mut(g.0 as usize) {
            *v = Some(value);
        }
    }

    /// Records one sample into a histogram.
    #[inline]
    pub fn record(&mut self, h: Hist, value: f64) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        if let Some(cell) = self.hists.get_mut(h.0 as usize) {
            cell.hist.push(value);
            cell.stats.push(value);
        }
    }

    /// Advances the tick clock by `n` without touching any instrument:
    /// lets a component charge explicit work units (messages drained,
    /// records flushed) so enclosing span durations reflect batch size.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        if self.enabled {
            self.tick += n;
        }
    }

    /// Current tick (operation count so far).
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Opens a span scope. If another span is currently innermost, the
    /// (parent, child) nesting edge is counted. Close with [`Obs::exit`].
    #[inline]
    pub fn enter(&mut self, s: Span) -> SpanToken {
        if !self.enabled {
            return SpanToken {
                span: s.0,
                start: 0,
                live: false,
            };
        }
        self.tick += 1;
        if let Some(&(parent, _)) = self.stack.last() {
            *self.nest.entry((parent, s.0)).or_insert(0) += 1;
        }
        self.stack.push((s.0, self.tick));
        SpanToken {
            span: s.0,
            start: self.tick,
            live: true,
        }
    }

    /// Closes a span scope, recording `now_ticks - start_ticks` into the
    /// span's duration distribution. Frames opened after `token` and never
    /// closed are discarded (a missed `exit` cannot wedge the stack).
    #[inline]
    pub fn exit(&mut self, token: SpanToken) {
        if !self.enabled || !token.live {
            return;
        }
        self.tick += 1;
        while let Some((span, start)) = self.stack.pop() {
            if span == token.span && start == token.start {
                let dur = (self.tick - start) as f64;
                if let Some(cell) = self.spans.get_mut(span as usize) {
                    cell.count += 1;
                    cell.ticks.push(dur);
                    cell.hist.push(dur);
                }
                return;
            }
        }
    }

    // ---- events (rare path; allocation is fine here) -------------------

    /// Appends an event to the bounded ring. Once the ring is full the
    /// oldest entry is overwritten and counted as dropped.
    pub fn event(&mut self, level: Level, code: &str, detail: &str) {
        if !self.enabled {
            return;
        }
        self.tick += 1;
        let ev = Event {
            seq: self.next_event_seq,
            tick: self.tick,
            level,
            code: code.to_owned(),
            detail: detail.to_owned(),
        };
        self.next_event_seq += 1;
        if self.events.len() < self.event_capacity {
            self.events.push(ev);
        } else {
            let slot = (ev.seq % self.event_capacity as u64) as usize;
            if let Some(old) = self.events.get_mut(slot) {
                *old = ev;
                self.events_dropped += 1;
            }
        }
    }

    // ---- typed reads (cheap, for internal state machines) --------------

    /// Current value of a counter (0 for a foreign handle).
    pub fn value(&self, c: Counter) -> u64 {
        self.counters.get(c.0 as usize).copied().unwrap_or(0)
    }

    /// Current value of a gauge (`None` until first set).
    pub fn gauge_value(&self, g: Gauge) -> Option<f64> {
        self.gauges.get(g.0 as usize).copied().flatten()
    }

    /// Exact running stats of a histogram (empty for a foreign handle).
    pub fn hist_stats(&self, h: Hist) -> OnlineStats {
        self.hists
            .get(h.0 as usize)
            .map(|c| c.stats)
            .unwrap_or_default()
    }

    /// Times a span has been closed.
    pub fn span_count(&self, s: Span) -> u64 {
        self.spans.get(s.0 as usize).map(|c| c.count).unwrap_or(0)
    }

    // ---- export --------------------------------------------------------

    /// Snapshots every instrument into sorted maps. Registered-but-silent
    /// instruments are included (counter 0, empty histogram), which is what
    /// makes unknown-name snapshot reads distinguishable errors.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut snap = ObsSnapshot::default();
        for (name, value) in self.counter_names.iter().zip(&self.counters) {
            snap.put_counter(name, *value);
        }
        for (name, value) in self.gauge_names.iter().zip(&self.gauges) {
            snap.put_gauge_opt(name, *value);
        }
        for (name, cell) in self.hist_names.iter().zip(&self.hists) {
            snap.put_summary(name, HistSnapshot::from_cell(&cell.hist, &cell.stats));
        }
        for (idx, (name, cell)) in self.span_names.iter().zip(&self.spans).enumerate() {
            let mut children = BTreeMap::new();
            for (&(parent, child), &count) in &self.nest {
                if parent as usize == idx {
                    if let Some(child_name) = self.span_names.get(child as usize) {
                        children.insert(child_name.clone(), count);
                    }
                }
            }
            snap.put_span(
                name,
                SpanSnapshot {
                    count: cell.count,
                    ticks: cell.ticks,
                    p50: cell.hist.quantile(0.5),
                    p95: cell.hist.quantile(0.95),
                    p99: cell.hist.quantile(0.99),
                    children,
                },
            );
        }
        let mut events: Vec<&Event> = self.events.iter().collect();
        events.sort_by_key(|e| e.seq);
        for ev in events {
            snap.push_event(EventRecord {
                seq: ev.seq,
                tick: ev.tick,
                level: ev.level,
                code: ev.code.clone(),
                detail: ev.detail.clone(),
            });
        }
        snap.add_events_dropped(self.events_dropped);
        snap.add_ticks(self.tick);
        snap
    }
}

/// The span histogram layout shared by all spans (documented constant, used
/// by [`HistSnapshot`] consumers that want bucket geometry).
pub fn span_hist_layout() -> (f64, f64, usize) {
    (SPAN_HIST_LO, SPAN_HIST_HI, SPAN_HIST_BINS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_dense() {
        let mut obs = Obs::new();
        let a = obs.counter("a");
        let b = obs.counter("b");
        let a2 = obs.counter("a");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        obs.inc(a);
        obs.add(a2, 2);
        assert_eq!(obs.value(a), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_is_loud() {
        let mut obs = Obs::new();
        let _ = obs.counter("x");
        let _ = obs.gauge("x");
    }

    #[test]
    fn gauges_and_hists_update() {
        let mut obs = Obs::new();
        let g = obs.gauge("g");
        let h = obs.hist("h", 0.0, 10.0, 10);
        assert_eq!(obs.gauge_value(g), None);
        obs.set(g, 4.5);
        obs.record(h, 3.0);
        obs.record(h, 5.0);
        assert_eq!(obs.gauge_value(g), Some(4.5));
        assert_eq!(obs.hist_stats(h).count(), 2);
        assert_eq!(obs.hist_stats(h).mean(), 4.0);
    }

    #[test]
    fn spans_nest_and_measure_ticks() {
        let mut obs = Obs::new();
        let c = obs.counter("work");
        let outer = obs.span("outer");
        let inner = obs.span("inner");

        let t_outer = obs.enter(outer);
        let t_inner = obs.enter(inner);
        obs.inc(c);
        obs.inc(c);
        obs.exit(t_inner);
        obs.exit(t_outer);

        assert_eq!(obs.span_count(outer), 1);
        assert_eq!(obs.span_count(inner), 1);
        // inner: enter(tick t), 2 incs, exit → duration 3 ticks.
        assert_eq!(obs.snapshot().span("inner").unwrap().ticks.mean(), 3.0);
        let snap = obs.snapshot();
        assert_eq!(snap.span("outer").unwrap().children.get("inner"), Some(&1));
    }

    #[test]
    fn missed_exit_does_not_wedge_the_stack() {
        let mut obs = Obs::new();
        let outer = obs.span("outer");
        let inner = obs.span("inner");
        let t_outer = obs.enter(outer);
        let _leaked = obs.enter(inner); // never exited
        obs.exit(t_outer);
        assert_eq!(obs.span_count(outer), 1);
        assert_eq!(obs.span_count(inner), 0);
        // The stack is clean: a fresh span works.
        let t = obs.enter(outer);
        obs.exit(t);
        assert_eq!(obs.span_count(outer), 2);
    }

    #[test]
    fn event_ring_is_bounded_and_counts_drops() {
        let mut obs = Obs::new();
        obs.set_event_capacity(4);
        for i in 0..10 {
            obs.event(Level::Info, "tick", &format!("e{i}"));
        }
        let snap = obs.snapshot();
        assert_eq!(snap.events().len(), 4);
        assert_eq!(snap.events_dropped(), 6);
        // The survivors are the newest four, in order.
        let seqs: Vec<u64> = snap.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn muted_obs_records_nothing() {
        let mut obs = Obs::muted();
        let c = obs.counter("c");
        let h = obs.hist("h", 0.0, 1.0, 4);
        let s = obs.span("s");
        obs.inc(c);
        obs.record(h, 0.5);
        let t = obs.enter(s);
        obs.exit(t);
        obs.event(Level::Error, "x", "y");
        assert_eq!(obs.value(c), 0);
        assert_eq!(obs.ticks(), 0);
        let snap = obs.snapshot();
        assert_eq!(snap.counter("c").unwrap(), 0);
        assert!(snap.events().is_empty());
    }

    #[test]
    fn advance_charges_work_to_open_spans() {
        let mut obs = Obs::new();
        let s = obs.span("batch");
        let t = obs.enter(s);
        obs.advance(100);
        obs.exit(t);
        assert_eq!(obs.snapshot().span("batch").unwrap().ticks.mean(), 101.0);
    }

    #[test]
    fn foreign_handles_are_harmless() {
        let mut a = Obs::new();
        let mut b = Obs::new();
        let c_b = b.counter("only-in-b");
        let g_b = b.gauge("g");
        a.inc(c_b); // index out of range in `a`
        a.set(g_b, 1.0);
        assert_eq!(a.value(c_b), 0);
        assert_eq!(a.gauge_value(g_b), None);
    }
}
