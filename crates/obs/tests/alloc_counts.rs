//! Allocation-count proof for the instrumented hot path.
//!
//! The whole point of typed handles over the string-keyed `Metrics`
//! registry is that a hot-path update is an indexed add: no `String`
//! allocation per `BTreeMap` miss, no key hashing, nothing on the heap.
//! A counting global allocator verifies that steady-state counter,
//! gauge, histogram and span updates allocate exactly zero times.
//!
//! Everything runs inside one `#[test]` so concurrent test threads cannot
//! pollute the shared counter (pattern from
//! `crates/core/tests/alloc_counts.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use swamp_obs::Obs;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_calls<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let r = f();
    (ALLOC_CALLS.load(Ordering::Relaxed) - before, r)
}

#[test]
fn steady_state_instrument_updates_are_zero_alloc() {
    let mut obs = Obs::new();
    let sent = obs.counter("net.sent");
    let pending = obs.gauge("sync.pending");
    let latency = obs.hist("net.latency_ms", 0.0, 1000.0, 64);
    let pump = obs.span("platform.pump");
    let ingest = obs.span("platform.ingest");

    // Warmup: settles the span stack Vec and the (pump → ingest) nesting
    // edge's BTreeMap node, the only lazily-allocated bookkeeping.
    for i in 0..64 {
        let t = obs.enter(pump);
        let ti = obs.enter(ingest);
        obs.inc(sent);
        obs.add(sent, 3);
        obs.set(pending, i as f64);
        obs.record(latency, 12.5 + i as f64);
        obs.exit(ti);
        obs.exit(t);
    }

    // The counter is process-wide, and the libtest harness runs on its own
    // threads that may allocate concurrently with the measured window, so a
    // single window can flakily read a handful of stray allocations under
    // load. Take the minimum over a few windows: a hot path that really
    // allocated would do so in *every* window (10k+ times), while harness
    // noise is transient.
    let mut min_calls = u64::MAX;
    let mut rounds_run = 0u64;
    for _ in 0..3 {
        let base = rounds_run;
        let (calls, ()) = alloc_calls(|| {
            for i in 0..10_000u64 {
                let t = obs.enter(pump);
                let ti = obs.enter(ingest);
                obs.inc(sent);
                obs.add(sent, 3);
                obs.set(pending, (base + i) as f64);
                obs.record(latency, 12.5 + (i % 100) as f64);
                obs.exit(ti);
                obs.exit(t);
            }
        });
        rounds_run += 10_000;
        min_calls = min_calls.min(calls);
        if min_calls == 0 {
            break;
        }
    }
    assert_eq!(
        min_calls, 0,
        "counter/gauge/histogram/span updates must be indexed adds — \
         {min_calls} allocations in the cleanest of 3 10k-round windows"
    );
    assert_eq!(obs.value(sent), 64 * 4 + rounds_run * 4);
}
