//! Property-based tests for the network substrate.

// Gated: proptest is not resolvable in the offline build environment.
// See the `proptest-tests` feature note in this crate's Cargo.toml.
#![cfg(feature = "proptest-tests")]

use proptest::prelude::*;
use swamp_net::broker::topic_matches;
use swamp_net::frag::{fragment, Reassembler};
use swamp_net::link::LinkSpec;
use swamp_net::lpwan::{LpwanConfig, LpwanRadio, TxDecision};
use swamp_net::message::Message;
use swamp_net::network::Network;
use swamp_sim::{SimDuration, SimRng, SimTime};

proptest! {
    /// Fragmentation followed by (in-order or shuffled) reassembly is the
    /// identity, for any payload and MTU.
    #[test]
    fn fragment_reassemble_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 0..2048),
        mtu in 1usize..256,
        tag in any::<u16>(),
        shuffle_seed in any::<u64>(),
    ) {
        let mut frags = fragment(tag, &payload, mtu);
        let mut rng = SimRng::seed_from(shuffle_seed);
        rng.shuffle(&mut frags);
        let mut r = Reassembler::new(SimDuration::from_secs(60));
        let mut out = None;
        for f in frags {
            if let Some(done) = r.push(SimTime::ZERO, f) {
                out = Some(done);
            }
        }
        prop_assert_eq!(out, Some(payload));
    }

    /// A concrete topic always matches itself, the `#` wildcard, and a
    /// per-level `+` expansion.
    #[test]
    fn topic_matching_identities(
        levels in prop::collection::vec("[a-z0-9]{1,6}", 1..5),
    ) {
        let topic = levels.join("/");
        prop_assert!(topic_matches(&topic, &topic));
        prop_assert!(topic_matches("#", &topic));
        for i in 0..levels.len() {
            let mut pattern = levels.clone();
            pattern[i] = "+".to_owned();
            prop_assert!(topic_matches(&pattern.join("/"), &topic));
        }
        // A prefix pattern with trailing # matches.
        let mut prefix = levels.clone();
        let last = prefix.len() - 1;
        prefix[last] = "#".to_owned();
        prop_assert!(topic_matches(&prefix.join("/"), &topic));
    }

    /// Duty cycle is never exceeded: over any request pattern, granted
    /// airtime within the sliding hour stays within budget (+1 frame).
    #[test]
    fn duty_cycle_budget_respected(
        offsets_ms in prop::collection::vec(1u64..120_000, 1..300),
        duty_idx in 0usize..3,
    ) {
        let duty = [0.001, 0.01, 0.05][duty_idx];
        let mut radio = LpwanRadio::new(LpwanConfig {
            duty_cycle: duty,
            ..LpwanConfig::default()
        });
        let mut t = SimTime::ZERO;
        let budget = 3_600_000.0 * duty;
        let frame_airtime = LpwanConfig::default().airtime(48).as_millis() as f64;
        for off in offsets_ms {
            t += SimDuration::from_millis(off);
            let _ = radio.try_transmit(t, 48);
            let used = radio.airtime_in_window(t).as_millis() as f64;
            prop_assert!(
                used <= budget + frame_airtime,
                "airtime {used}ms exceeds budget {budget}ms (+1 frame)"
            );
        }
    }

    /// Every message offered to a lossless, up network is delivered exactly
    /// once, FIFO per link.
    #[test]
    fn lossless_network_delivers_everything(
        count in 1usize..100,
        seed in any::<u64>(),
    ) {
        let mut net = Network::new(seed);
        net.add_node("a");
        net.add_node("b");
        net.connect("a", "b", LinkSpec::new(
            SimDuration::from_millis(5), SimDuration::ZERO, 0.0, 1_000_000_000));
        for i in 0..count {
            net.send(
                SimTime::ZERO,
                "a",
                "b",
                Message::new("t", vec![(i % 256) as u8]),
            ).unwrap();
        }
        net.advance_to(SimTime::from_secs(10));
        let got = net.drain(&"b".into());
        prop_assert_eq!(got.len(), count);
        for (i, d) in got.iter().enumerate() {
            prop_assert_eq!(d.message.payload[0], (i % 256) as u8);
        }
    }

    /// Loss probability p delivers approximately (1-p) of offered traffic.
    #[test]
    fn lossy_network_delivery_rate(
        loss_pct in 0u32..90,
        seed in any::<u64>(),
    ) {
        let loss = loss_pct as f64 / 100.0;
        let mut net = Network::new(seed);
        net.add_node("a");
        net.add_node("b");
        net.connect("a", "b", LinkSpec::new(
            SimDuration::from_millis(5), SimDuration::ZERO, loss, 1_000_000_000));
        let n = 2000;
        for _ in 0..n {
            net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![0u8])).unwrap();
        }
        net.advance_to(SimTime::from_secs(10));
        let delivered = net.drain(&"b".into()).len() as f64;
        let expected = n as f64 * (1.0 - loss);
        prop_assert!(
            (delivered - expected).abs() < n as f64 * 0.06,
            "delivered {delivered} vs expected {expected}"
        );
    }

    /// Airtime is monotone in payload size for any configuration.
    #[test]
    fn airtime_monotone_in_size(
        small in 1usize..120,
        extra in 1usize..120,
    ) {
        let cfg = LpwanConfig::default();
        prop_assert!(cfg.airtime(small + extra) >= cfg.airtime(small));
    }

    /// try_transmit never grants two overlapping decisions that would sum
    /// beyond the hourly budget even at pathological duty cycles.
    #[test]
    fn deferral_time_is_future(
        duty_thousandths in 1u32..50,
        n in 1usize..100,
    ) {
        let mut radio = LpwanRadio::new(LpwanConfig {
            duty_cycle: duty_thousandths as f64 / 1000.0,
            ..LpwanConfig::default()
        });
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            match radio.try_transmit(t, 64) {
                TxDecision::Granted { .. } => {
                    t += SimDuration::from_millis(50);
                }
                TxDecision::Deferred { until } => {
                    prop_assert!(until > t, "deferral must be in the future");
                    t = until;
                }
            }
        }
    }
}
