//! An MQTT-style publish/subscribe broker running on a network node.
//!
//! FIWARE platforms front their context broker with an IoT agent speaking
//! MQTT; SWAMP models that hop explicitly. The broker owns a node on the
//! [`Network`]: publishers send to the broker's node, [`Broker::process`]
//! drains its inbox and forwards each publication over the network to every
//! subscriber whose pattern matches (MQTT `+`/`#` wildcard semantics),
//! honoring retained messages for late subscribers.

use std::collections::BTreeMap;

use swamp_sim::SimTime;

use crate::message::{Message, NodeId};
use crate::network::{Network, SendError};

/// Returns whether an MQTT-style `pattern` matches a concrete `topic`.
///
/// `+` matches exactly one level; `#` (only valid as the final level)
/// matches the remainder, including zero levels.
///
/// # Example
/// ```
/// use swamp_net::broker::topic_matches;
/// assert!(topic_matches("farm/+/soil", "farm/plot3/soil"));
/// assert!(topic_matches("farm/#", "farm/plot3/soil/vwc"));
/// assert!(topic_matches("farm/#", "farm"));
/// assert!(!topic_matches("farm/+", "farm/plot3/soil"));
/// ```
pub fn topic_matches(pattern: &str, topic: &str) -> bool {
    let mut p = pattern.split('/');
    let mut t = topic.split('/');
    loop {
        match (p.next(), t.next()) {
            (Some("#"), _) => return true,
            (Some("+"), Some(_)) => continue,
            (Some(pl), Some(tl)) if pl == tl => continue,
            (None, None) => return true,
            _ => return false,
        }
    }
}

/// A subscription entry.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Subscription {
    pattern: String,
    subscriber: NodeId,
}

/// Counters the broker exposes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BrokerStats {
    /// Publications processed.
    pub published: u64,
    /// Notifications forwarded to subscribers.
    pub forwarded: u64,
    /// Forwards that failed synchronously (no route / SDN deny).
    pub forward_failures: u64,
}

/// The broker state machine. It does not own the [`Network`]; callers pass
/// it into [`Broker::process`] each scheduling round.
///
/// # Example
/// ```
/// use swamp_net::broker::Broker;
/// use swamp_net::link::LinkSpec;
/// use swamp_net::message::Message;
/// use swamp_net::network::Network;
/// use swamp_sim::SimTime;
///
/// let mut net = Network::new(1);
/// net.add_node("broker");
/// net.add_node("probe");
/// net.add_node("app");
/// net.connect("probe", "broker", LinkSpec::farm_lan());
/// net.connect("app", "broker", LinkSpec::farm_lan());
///
/// let mut broker = Broker::new("broker");
/// broker.subscribe("telemetry/#", "app");
///
/// net.send(SimTime::ZERO, "probe", "broker",
///     Message::new("telemetry/soil", b"0.23".to_vec())).unwrap();
/// net.advance_to(SimTime::from_secs(1));
/// broker.process(&mut net);
/// net.advance_to(SimTime::from_secs(2));
/// assert!(net.poll(&"app".into()).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Broker {
    node: NodeId,
    subscriptions: Vec<Subscription>,
    retained: BTreeMap<String, Vec<u8>>,
    stats: BrokerStats,
}

impl Broker {
    /// Creates a broker living at `node` (which must be registered and
    /// linked on the network by the caller).
    pub fn new(node: impl Into<NodeId>) -> Self {
        Broker {
            node: node.into(),
            subscriptions: Vec::new(),
            retained: BTreeMap::new(),
            stats: BrokerStats::default(),
        }
    }

    /// The broker's network node.
    pub fn node(&self) -> &NodeId {
        &self.node
    }

    /// Current counters.
    pub fn stats(&self) -> BrokerStats {
        self.stats
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Adds a subscription. Duplicate (pattern, subscriber) pairs are
    /// collapsed.
    pub fn subscribe(&mut self, pattern: impl Into<String>, subscriber: impl Into<NodeId>) {
        let sub = Subscription {
            pattern: pattern.into(),
            subscriber: subscriber.into(),
        };
        if !self.subscriptions.contains(&sub) {
            self.subscriptions.push(sub);
        }
    }

    /// Adds a subscription and immediately delivers any retained messages
    /// matching it (MQTT retained-message semantics).
    pub fn subscribe_with_retained(
        &mut self,
        pattern: impl Into<String>,
        subscriber: impl Into<NodeId>,
        net: &mut Network,
        now: SimTime,
    ) {
        let pattern = pattern.into();
        let subscriber = subscriber.into();
        for (topic, payload) in &self.retained {
            if topic_matches(&pattern, topic) {
                let res = net.send(
                    now,
                    self.node.clone(),
                    subscriber.clone(),
                    Message::new(topic.clone(), payload.clone()),
                );
                match res {
                    Ok(_) => self.stats.forwarded += 1,
                    Err(_) => self.stats.forward_failures += 1,
                }
            }
        }
        self.subscribe(pattern, subscriber);
    }

    /// Removes all subscriptions of `subscriber` matching `pattern` exactly.
    pub fn unsubscribe(&mut self, pattern: &str, subscriber: &NodeId) {
        self.subscriptions
            .retain(|s| !(s.pattern == pattern && &s.subscriber == subscriber));
    }

    /// Marks a topic's latest payload as retained for late subscribers.
    pub fn retain(&mut self, topic: impl Into<String>, payload: Vec<u8>) {
        self.retained.insert(topic.into(), payload);
    }

    /// Drains the broker's network inbox, forwarding each publication to all
    /// matching subscribers. Returns the number of publications processed.
    pub fn process(&mut self, net: &mut Network) -> usize {
        let node = self.node.clone();
        let deliveries = net.drain(&node);
        let mut processed = 0;
        for delivery in deliveries {
            processed += 1;
            self.stats.published += 1;
            let now = delivery.delivered_at;
            for sub in &self.subscriptions {
                if sub.subscriber == delivery.src {
                    // Never echo a publication back to its publisher.
                    continue;
                }
                if topic_matches(&sub.pattern, &delivery.message.topic) {
                    let res = net.send(
                        now,
                        node.clone(),
                        sub.subscriber.clone(),
                        delivery.message.clone(),
                    );
                    match res {
                        Ok(_) => self.stats.forwarded += 1,
                        Err(SendError::Denied)
                        | Err(SendError::NoRoute(_, _))
                        | Err(SendError::UnknownNode(_)) => {
                            self.stats.forward_failures += 1;
                        }
                    }
                }
            }
        }
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkSpec;
    use swamp_sim::SimDuration;

    fn n(s: &str) -> NodeId {
        NodeId::new(s)
    }

    fn setup() -> (Network, Broker) {
        let mut net = Network::new(3);
        for id in ["broker", "probe", "app1", "app2"] {
            net.add_node(id);
        }
        let fast = LinkSpec::new(
            SimDuration::from_millis(1),
            SimDuration::ZERO,
            0.0,
            1_000_000_000,
        );
        net.connect("probe", "broker", fast);
        net.connect("app1", "broker", fast);
        net.connect("app2", "broker", fast);
        (net, Broker::new("broker"))
    }

    #[test]
    fn topic_matching_semantics() {
        assert!(topic_matches("a/b", "a/b"));
        assert!(!topic_matches("a/b", "a/c"));
        assert!(!topic_matches("a/b", "a"));
        assert!(!topic_matches("a", "a/b"));
        assert!(topic_matches("a/+/c", "a/b/c"));
        assert!(!topic_matches("a/+/c", "a/b/d"));
        assert!(!topic_matches("a/+", "a/b/c"));
        assert!(topic_matches("#", "anything/at/all"));
        assert!(topic_matches("a/#", "a"));
        assert!(topic_matches("a/#", "a/b/c/d"));
        assert!(!topic_matches("a/#", "b/a"));
        assert!(topic_matches("+/+", "x/y"));
        assert!(topic_matches("", ""));
    }

    #[test]
    fn publish_reaches_matching_subscribers() {
        let (mut net, mut broker) = setup();
        broker.subscribe("telemetry/#", "app1");
        broker.subscribe("telemetry/weather", "app2");

        net.send(
            SimTime::ZERO,
            "probe",
            "broker",
            Message::new("telemetry/soil", b"0.2".to_vec()),
        )
        .unwrap();
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(broker.process(&mut net), 1);
        net.advance_to(SimTime::from_secs(2));

        assert_eq!(net.inbox_len(&n("app1")), 1);
        assert_eq!(net.inbox_len(&n("app2")), 0); // pattern doesn't match
        let d = net.poll(&n("app1")).unwrap();
        assert_eq!(d.message.topic, "telemetry/soil");
        assert_eq!(d.src, n("broker"));
    }

    #[test]
    fn no_echo_to_publisher() {
        let (mut net, mut broker) = setup();
        broker.subscribe("#", "probe");
        broker.subscribe("#", "app1");
        net.send(SimTime::ZERO, "probe", "broker", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        broker.process(&mut net);
        net.advance_to(SimTime::from_secs(2));
        assert_eq!(net.inbox_len(&n("probe")), 0);
        assert_eq!(net.inbox_len(&n("app1")), 1);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let (mut net, mut broker) = setup();
        broker.subscribe("t", "app1");
        broker.unsubscribe("t", &n("app1"));
        assert_eq!(broker.subscription_count(), 0);
        net.send(SimTime::ZERO, "probe", "broker", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        broker.process(&mut net);
        net.advance_to(SimTime::from_secs(2));
        assert_eq!(net.inbox_len(&n("app1")), 0);
    }

    #[test]
    fn duplicate_subscriptions_collapse() {
        let (_, mut broker) = setup();
        broker.subscribe("t", "app1");
        broker.subscribe("t", "app1");
        assert_eq!(broker.subscription_count(), 1);
    }

    #[test]
    fn retained_messages_delivered_on_subscribe() {
        let (mut net, mut broker) = setup();
        broker.retain("status/pivot", b"running".to_vec());
        broker.retain("status/pump", b"off".to_vec());
        broker.subscribe_with_retained("status/#", "app1", &mut net, SimTime::ZERO);
        net.advance_to(SimTime::from_secs(1));
        let msgs = net.drain(&n("app1"));
        assert_eq!(msgs.len(), 2);
        let topics: Vec<_> = msgs.iter().map(|d| d.message.topic.as_str()).collect();
        assert!(topics.contains(&"status/pivot"));
        assert!(topics.contains(&"status/pump"));
    }

    #[test]
    fn forward_failure_counted() {
        let (mut net, mut broker) = setup();
        broker.subscribe("#", "disconnected-app");
        // Node exists but has no link to broker? Add node with no link:
        net.add_node("disconnected-app");
        net.send(SimTime::ZERO, "probe", "broker", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        broker.process(&mut net);
        assert_eq!(broker.stats().forward_failures, 1);
        assert_eq!(broker.stats().published, 1);
    }

    #[test]
    fn fan_out_counts() {
        let (mut net, mut broker) = setup();
        broker.subscribe("#", "app1");
        broker.subscribe("#", "app2");
        for _ in 0..3 {
            net.send(SimTime::ZERO, "probe", "broker", Message::new("t", vec![]))
                .unwrap();
        }
        net.advance_to(SimTime::from_secs(1));
        broker.process(&mut net);
        assert_eq!(broker.stats().published, 3);
        assert_eq!(broker.stats().forwarded, 6);
    }
}
