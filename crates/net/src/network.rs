//! The discrete-event network: nodes, directed links, in-flight messages,
//! inboxes, SDN classification and wire taps.
//!
//! All SWAMP traffic — telemetry, broker notifications, fog/cloud sync,
//! attacker floods — flows through one [`Network`] instance, so the SDN
//! flow table really does see everything (the "centralized view" of the
//! paper) and an eavesdropping tap really does see exactly what crossed a
//! link.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use swamp_obs::{Counter, Hist, Level, Obs, ObsSnapshot, Span};
use swamp_sim::{EventQueue, SimDuration, SimRng, SimTime};

use crate::fault::{FaultOutcome, FaultPlan};
use crate::link::{Link, LinkSpec, TxOutcome};
use crate::message::{Delivery, Message, MsgId, NodeId};
use crate::sdn::{FlowTable, Verdict};

/// Identifier of an installed wire tap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TapId(usize);

/// Why a send was refused synchronously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Source or destination node is not registered.
    UnknownNode(NodeId),
    /// No link connects source to destination.
    NoRoute(NodeId, NodeId),
    /// The SDN flow table dropped the packet.
    Denied,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SendError::NoRoute(a, b) => write!(f, "no route {a} -> {b}"),
            SendError::Denied => f.write_str("denied by flow table"),
        }
    }
}
impl std::error::Error for SendError {}

/// The simulated network fabric.
///
/// # Example
/// ```
/// use swamp_net::network::Network;
/// use swamp_net::link::LinkSpec;
/// use swamp_net::message::Message;
/// use swamp_sim::SimTime;
///
/// let mut net = Network::new(42);
/// net.add_node("probe");
/// net.add_node("gateway");
/// net.connect("probe", "gateway", LinkSpec::farm_lan());
///
/// net.send(SimTime::ZERO, "probe", "gateway", Message::new("t/soil", b"m".to_vec()))
///     .unwrap();
/// net.advance_to(SimTime::from_secs(1));
/// let d = net.poll(&"gateway".into()).expect("delivered");
/// assert_eq!(d.message.topic, "t/soil");
/// ```
pub struct Network {
    nodes: BTreeSet<NodeId>,
    links: BTreeMap<(NodeId, NodeId), Link>,
    queue: EventQueue<Delivery>,
    inboxes: BTreeMap<NodeId, VecDeque<Delivery>>,
    taps: Vec<((NodeId, NodeId), Vec<Delivery>)>,
    flow_table: FlowTable,
    fault_plan: Option<FaultPlan>,
    rng: SimRng,
    obs: Obs,
    ins: NetInstruments,
    /// Directed links currently observed inside a partition window, for
    /// partition start/end event edges.
    partitioned: BTreeSet<(NodeId, NodeId)>,
    /// Optional fabric label (see [`Network::set_namespace`]).
    namespace: Option<String>,
    next_id: u64,
}

/// Pre-registered typed handles for the network's instruments: every
/// hot-path update in [`Network::send`]/[`Network::advance_to`] is an
/// indexed add, never a string lookup.
struct NetInstruments {
    offered: Counter,
    sdn_dropped: Counter,
    fault_partitioned: Counter,
    fault_dropped: Counter,
    fault_duplicated: Counter,
    lost: Counter,
    sent: Counter,
    delivered: Counter,
    latency_ms: Hist,
    send_span: Span,
}

impl NetInstruments {
    fn register(obs: &mut Obs) -> NetInstruments {
        NetInstruments {
            offered: obs.counter("net.offered"),
            sdn_dropped: obs.counter("net.sdn_dropped"),
            fault_partitioned: obs.counter("net.fault.partitioned"),
            fault_dropped: obs.counter("net.fault.dropped"),
            fault_duplicated: obs.counter("net.fault.duplicated"),
            lost: obs.counter("net.lost"),
            sent: obs.counter("net.sent"),
            delivered: obs.counter("net.delivered"),
            latency_ms: obs.hist("net.latency_ms", 0.0, 10_000.0, 100),
            send_span: obs.span("net.send"),
        }
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("namespace", &self.namespace)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("in_flight", &self.queue.len())
            .finish()
    }
}

impl Network {
    /// Creates an empty network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        let mut obs = Obs::new();
        let ins = NetInstruments::register(&mut obs);
        Network {
            nodes: BTreeSet::new(),
            links: BTreeMap::new(),
            queue: EventQueue::new(),
            inboxes: BTreeMap::new(),
            taps: Vec::new(),
            flow_table: FlowTable::new(),
            fault_plan: None,
            rng: SimRng::seed_from(seed ^ 0x6e65745f73696d), // "net_sim"
            obs,
            ins,
            partitioned: BTreeSet::new(),
            namespace: None,
            next_id: 0,
        }
    }

    /// Labels this fabric with a namespace. A sharded deployment runs one
    /// `Network` per shard, each with the same node names (`farm-fog`,
    /// `cloud`, …); the namespace keeps the fabrics distinguishable in
    /// diagnostics and lets [`Network::scoped`] mint globally unique node
    /// ids for cross-fabric wiring (e.g. the aggregation tier's
    /// `shard0:farm-fog`). Purely a label: routing, faults and instruments
    /// are unaffected, so an unlabelled fabric behaves byte-identically.
    pub fn set_namespace(&mut self, namespace: impl Into<String>) {
        self.namespace = Some(namespace.into());
    }

    /// The fabric's namespace label, if one was set.
    pub fn namespace(&self) -> Option<&str> {
        self.namespace.as_deref()
    }

    /// A node id qualified by this fabric's namespace
    /// (`<namespace>:<id>`), or the bare id on an unlabelled fabric.
    pub fn scoped(&self, id: &str) -> NodeId {
        match &self.namespace {
            Some(ns) => NodeId::from(format!("{ns}:{id}").as_str()),
            None => NodeId::from(id),
        }
    }

    /// Registers a node. Idempotent.
    pub fn add_node(&mut self, id: impl Into<NodeId>) -> NodeId {
        let id = id.into();
        self.nodes.insert(id.clone());
        self.inboxes.entry(id.clone()).or_default();
        id
    }

    /// Whether a node is registered.
    pub fn has_node(&self, id: &NodeId) -> bool {
        self.nodes.contains(id)
    }

    /// Connects two nodes bidirectionally with the same spec.
    ///
    /// # Panics
    /// Panics if either node is unregistered.
    pub fn connect(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>, spec: LinkSpec) {
        let a = a.into();
        let b = b.into();
        self.connect_directed(a.clone(), b.clone(), spec);
        self.connect_directed(b, a, spec);
    }

    /// Installs a directed link `a → b`.
    ///
    /// # Panics
    /// Panics if either node is unregistered.
    pub fn connect_directed(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>, spec: LinkSpec) {
        let a = a.into();
        let b = b.into();
        assert!(self.nodes.contains(&a), "unknown node {a}");
        assert!(self.nodes.contains(&b), "unknown node {b}");
        self.links.insert((a, b), Link::new(spec));
    }

    /// Sets both directions of the `a ↔ b` link up or down.
    ///
    /// Used for the Internet-disconnection scenarios of experiment E5.
    pub fn set_link_up(&mut self, a: &NodeId, b: &NodeId, up: bool) {
        if let Some(l) = self.links.get_mut(&(a.clone(), b.clone())) {
            l.set_up(up);
        }
        if let Some(l) = self.links.get_mut(&(b.clone(), a.clone())) {
            l.set_up(up);
        }
    }

    /// Whether the directed link `a → b` exists and is up.
    pub fn link_up(&self, a: &NodeId, b: &NodeId) -> bool {
        self.links
            .get(&(a.clone(), b.clone()))
            .is_some_and(Link::is_up)
    }

    /// Installs a fault plan; every subsequent [`Network::send`] consults
    /// it. Replaces any previously installed plan.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Removes the installed fault plan, returning it (with its stats).
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault_plan.take()
    }

    /// Read access to the installed fault plan.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Mutable access to the installed fault plan (to add partitions or
    /// change specs mid-scenario).
    pub fn fault_plan_mut(&mut self) -> Option<&mut FaultPlan> {
        self.fault_plan.as_mut()
    }

    /// Mutable access to the SDN flow table (the controller's handle).
    pub fn flow_table_mut(&mut self) -> &mut FlowTable {
        &mut self.flow_table
    }

    /// Read access to the SDN flow table.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flow_table
    }

    /// Installs a passive tap on the directed link `a → b`. The tap captures
    /// every transmission *offered* to the link (an eavesdropper by the
    /// fence hears the radio whether or not the gateway decodes it).
    pub fn add_tap(&mut self, a: impl Into<NodeId>, b: impl Into<NodeId>) -> TapId {
        let id = TapId(self.taps.len());
        self.taps.push(((a.into(), b.into()), Vec::new()));
        id
    }

    /// Everything a tap has captured so far.
    pub fn tap_captures(&self, tap: TapId) -> &[Delivery] {
        &self.taps[tap.0].1
    }

    /// Offers a message for transmission at virtual time `now`.
    ///
    /// `now` must be at or after the network clock (the time of the last
    /// processed delivery). Returns the message id if the packet entered the
    /// network — which still does not guarantee delivery (loss, down links).
    ///
    /// # Errors
    /// [`SendError`] if a node is unknown, there is no link, or the SDN
    /// table denies the packet.
    ///
    /// # Panics
    /// Panics if `now` is before the network clock.
    pub fn send(
        &mut self,
        now: SimTime,
        src: impl Into<NodeId>,
        dst: impl Into<NodeId>,
        message: Message,
    ) -> Result<MsgId, SendError> {
        let token = self.obs.enter(self.ins.send_span);
        let result = self.send_inner(now, src.into(), dst.into(), message);
        self.obs.exit(token);
        result
    }

    fn send_inner(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        message: Message,
    ) -> Result<MsgId, SendError> {
        if !self.nodes.contains(&src) {
            return Err(SendError::UnknownNode(src));
        }
        if !self.nodes.contains(&dst) {
            return Err(SendError::UnknownNode(dst));
        }
        let size = message.wire_size();
        self.obs.inc(self.ins.offered);

        let verdict = self
            .flow_table
            .classify(now, &src, &dst, &message.topic, size);
        if let Verdict::Drop(_) = verdict {
            self.obs.inc(self.ins.sdn_dropped);
            return Err(SendError::Denied);
        }

        if !self.links.contains_key(&(src.clone(), dst.clone())) {
            return Err(SendError::NoRoute(src, dst));
        }

        let id = MsgId(self.next_id);
        self.next_id += 1;

        // Taps see the transmission regardless of its fate.
        for ((ta, tb), captured) in &mut self.taps {
            if *ta == src && *tb == dst {
                captured.push(Delivery {
                    id,
                    src: src.clone(),
                    dst: dst.clone(),
                    message: message.clone(),
                    sent_at: now,
                    delivered_at: now,
                });
            }
        }

        // Fault injection: the plan rules first (partitions are absolute;
        // injected loss is on top of the link's own loss process), then the
        // link model decides the fate of whatever the plan let through.
        let extra_delays = match &mut self.fault_plan {
            Some(plan) => match plan.sample(now, &src, &dst) {
                FaultOutcome::Partitioned => {
                    self.obs.inc(self.ins.fault_partitioned);
                    self.obs.inc(self.ins.lost);
                    if self.partitioned.insert((src.clone(), dst.clone())) {
                        self.obs.event(
                            Level::Warn,
                            "net.partition.start",
                            &format!("{src}->{dst}"),
                        );
                    }
                    return Ok(id);
                }
                FaultOutcome::Dropped => {
                    self.obs.inc(self.ins.fault_dropped);
                    self.obs.inc(self.ins.lost);
                    self.note_partition_healed(&src, &dst);
                    return Ok(id);
                }
                FaultOutcome::Deliver(delays) => {
                    self.note_partition_healed(&src, &dst);
                    delays
                }
            },
            None => vec![SimDuration::ZERO],
        };

        // Re-borrow the link (checked before fault sampling; the fault arm
        // above needed `&mut self`, so the borrow could not be held across).
        let Some(link) = self.links.get(&(src.clone(), dst.clone())) else {
            return Err(SendError::NoRoute(src, dst));
        };
        match link.offer(size, &mut self.rng) {
            TxOutcome::Lost => {
                self.obs.inc(self.ins.lost);
                Ok(id)
            }
            TxOutcome::Delivered(delay) => {
                self.obs.inc(self.ins.sent);
                self.obs.record(
                    self.ins.latency_ms,
                    (delay + extra_delays[0]).as_millis() as f64,
                );
                // One scheduled copy per fault-plan delay entry: the first is
                // the primary copy, the rest are injected wire duplicates
                // (same MsgId — they are echoes of one transmission).
                for (i, extra) in extra_delays.iter().enumerate() {
                    if i > 0 {
                        self.obs.inc(self.ins.fault_duplicated);
                    }
                    let total = delay + *extra;
                    self.queue.schedule(
                        now + total,
                        Delivery {
                            id,
                            src: src.clone(),
                            dst: dst.clone(),
                            message: message.clone(),
                            sent_at: now,
                            delivered_at: now + total,
                        },
                    );
                }
                Ok(id)
            }
        }
    }

    /// Marks a (src → dst) link healed if it was inside a partition window,
    /// emitting the partition-end event edge.
    fn note_partition_healed(&mut self, src: &NodeId, dst: &NodeId) {
        if self.partitioned.remove(&(src.clone(), dst.clone())) {
            self.obs
                .event(Level::Info, "net.partition.end", &format!("{src}->{dst}"));
        }
    }

    /// Processes all deliveries up to and including `horizon`, moving them
    /// into the destination inboxes.
    pub fn advance_to(&mut self, horizon: SimTime) {
        while let Some((_, delivery)) = self.queue.pop_until(horizon) {
            self.obs.inc(self.ins.delivered);
            self.inboxes
                .entry(delivery.dst.clone())
                .or_default()
                .push_back(delivery);
        }
    }

    /// Pops the oldest delivered message for a node, if any.
    pub fn poll(&mut self, node: &NodeId) -> Option<Delivery> {
        self.inboxes.get_mut(node)?.pop_front()
    }

    /// Drains every delivered message for a node.
    pub fn drain(&mut self, node: &NodeId) -> Vec<Delivery> {
        match self.inboxes.get_mut(node) {
            Some(q) => q.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Number of messages waiting in a node's inbox.
    pub fn inbox_len(&self, node: &NodeId) -> usize {
        self.inboxes.get(node).map_or(0, VecDeque::len)
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// The network clock (time of the last processed delivery).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Typed snapshot of the network's instruments (`net.offered`,
    /// `net.sent`, `net.lost`, `net.delivered`, `net.sdn_dropped`,
    /// `net.fault.*` counters, the `net.latency_ms` histogram, the
    /// `net.send` span and `net.partition.*` events).
    pub fn observe(&self) -> ObsSnapshot {
        self.obs.snapshot()
    }

    /// Enables or disables instrumentation (disabled = uninstrumented
    /// baseline for overhead benchmarks). Handles stay valid; updates
    /// become no-ops.
    pub fn set_obs_enabled(&mut self, enabled: bool) {
        self.obs.set_enabled(enabled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sdn::{FlowAction, FlowMatch};
    use swamp_sim::SimDuration;

    fn n(s: &str) -> NodeId {
        NodeId::new(s)
    }

    fn lossless() -> LinkSpec {
        LinkSpec::new(
            SimDuration::from_millis(10),
            SimDuration::ZERO,
            0.0,
            1_000_000,
        )
    }

    fn basic_net() -> Network {
        let mut net = Network::new(1);
        net.add_node("a");
        net.add_node("b");
        net.connect("a", "b", lossless());
        net
    }

    #[test]
    fn send_and_deliver() {
        let mut net = basic_net();
        let id = net
            .send(
                SimTime::ZERO,
                "a",
                "b",
                Message::new("t", b"hello".to_vec()),
            )
            .unwrap();
        assert_eq!(net.in_flight(), 1);
        net.advance_to(SimTime::from_secs(1));
        let d = net.poll(&n("b")).unwrap();
        assert_eq!(d.id, id);
        assert_eq!(d.message.payload, b"hello");
        assert!(d.latency() >= SimDuration::from_millis(10));
        assert!(net.poll(&n("b")).is_none());
    }

    #[test]
    fn horizon_respected() {
        let mut net = basic_net();
        net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_millis(5)); // before the 10ms latency
        assert_eq!(net.inbox_len(&n("b")), 0);
        net.advance_to(SimTime::from_millis(50));
        assert_eq!(net.inbox_len(&n("b")), 1);
    }

    #[test]
    fn unknown_node_and_no_route() {
        let mut net = basic_net();
        net.add_node("island");
        assert!(matches!(
            net.send(SimTime::ZERO, "ghost", "b", Message::new("t", vec![])),
            Err(SendError::UnknownNode(_))
        ));
        assert!(matches!(
            net.send(SimTime::ZERO, "a", "island", Message::new("t", vec![])),
            Err(SendError::NoRoute(_, _))
        ));
    }

    #[test]
    fn bidirectional_connect() {
        let mut net = basic_net();
        net.send(SimTime::ZERO, "b", "a", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(1));
        assert_eq!(net.inbox_len(&n("a")), 1);
    }

    #[test]
    fn down_link_loses_messages() {
        let mut net = basic_net();
        net.set_link_up(&n("a"), &n("b"), false);
        assert!(!net.link_up(&n("a"), &n("b")));
        net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(10));
        assert_eq!(net.inbox_len(&n("b")), 0);
        assert_eq!(net.observe().counter("net.lost").unwrap(), 1);

        net.set_link_up(&n("a"), &n("b"), true);
        net.send(net.now(), "a", "b", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(20));
        assert_eq!(net.inbox_len(&n("b")), 1);
    }

    #[test]
    fn sdn_denies_attacker() {
        let mut net = basic_net();
        net.flow_table_mut()
            .install(10, FlowMatch::from_src("a"), FlowAction::Deny);
        assert_eq!(
            net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![])),
            Err(SendError::Denied)
        );
        assert_eq!(net.observe().counter("net.sdn_dropped").unwrap(), 1);
    }

    #[test]
    fn tap_captures_transmissions() {
        let mut net = basic_net();
        let tap = net.add_tap("a", "b");
        net.send(
            SimTime::ZERO,
            "a",
            "b",
            Message::new("secret", b"yield=9t".to_vec()),
        )
        .unwrap();
        // Reverse direction is not captured by this tap.
        net.send(SimTime::ZERO, "b", "a", Message::new("other", vec![]))
            .unwrap();
        let captured = net.tap_captures(tap);
        assert_eq!(captured.len(), 1);
        assert_eq!(captured[0].message.topic, "secret");
        assert_eq!(captured[0].message.payload, b"yield=9t");
    }

    #[test]
    fn fifo_delivery_per_link() {
        let mut net = basic_net();
        for i in 0..10u8 {
            net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![i]))
                .unwrap();
        }
        net.advance_to(SimTime::from_secs(1));
        let payloads: Vec<u8> = net
            .drain(&n("b"))
            .iter()
            .map(|d| d.message.payload[0])
            .collect();
        assert_eq!(payloads, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn metrics_track_traffic() {
        let mut net = basic_net();
        for _ in 0..5 {
            net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![]))
                .unwrap();
        }
        net.advance_to(SimTime::from_secs(1));
        let snap = net.observe();
        assert_eq!(snap.counter("net.offered").unwrap(), 5);
        assert_eq!(snap.counter("net.sent").unwrap(), 5);
        assert_eq!(snap.counter("net.delivered").unwrap(), 5);
        assert_eq!(snap.summary("net.latency_ms").unwrap().stats.count(), 5);
        // Every send is one span entry/exit.
        assert_eq!(snap.span("net.send").unwrap().count, 5);
    }

    #[test]
    fn unknown_instrument_name_is_an_error() {
        let net = basic_net();
        assert!(net.observe().counter("net.typo").is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = Network::new(seed);
            net.add_node("a");
            net.add_node("b");
            net.connect(
                "a",
                "b",
                LinkSpec::new(
                    SimDuration::from_millis(10),
                    SimDuration::from_millis(50),
                    0.3,
                    10_000,
                ),
            );
            for _ in 0..100 {
                net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![0; 32]))
                    .unwrap();
            }
            net.advance_to(SimTime::from_secs(60));
            let snap = net.observe();
            (
                snap.counter("net.delivered").unwrap(),
                snap.summary("net.latency_ms").unwrap().stats.mean(),
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn fault_plan_partition_loses_messages_then_heals() {
        use crate::fault::FaultPlan;
        let mut net = basic_net();
        let mut plan = FaultPlan::new(1);
        plan.add_partition("a", "b", SimTime::ZERO, SimTime::from_secs(10))
            .unwrap();
        net.install_fault_plan(plan);

        net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(5));
        assert_eq!(net.inbox_len(&n("b")), 0);
        assert_eq!(net.observe().counter("net.fault.partitioned").unwrap(), 1);

        // After the window closes the same link delivers again.
        net.send(SimTime::from_secs(10), "a", "b", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(20));
        assert_eq!(net.inbox_len(&n("b")), 1);

        // The partition window shows up as a start/end event pair.
        let snap = net.observe();
        let codes: Vec<&str> = snap.events().iter().map(|e| e.code.as_str()).collect();
        assert_eq!(codes, ["net.partition.start", "net.partition.end"]);
        assert_eq!(snap.events()[0].detail, "a->b");
    }

    #[test]
    fn fault_plan_injects_drops_and_duplicates() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut net = basic_net();
        let mut plan = FaultPlan::new(2);
        plan.set_link_faults(
            "a",
            "b",
            FaultSpec {
                drop_prob: 0.5,
                duplicate_prob: 0.5,
                ..FaultSpec::default()
            },
        )
        .unwrap();
        net.install_fault_plan(plan);

        for _ in 0..400 {
            net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![]))
                .unwrap();
        }
        net.advance_to(SimTime::from_secs(30));
        let snap = net.observe();
        let dropped = snap.counter("net.fault.dropped").unwrap();
        let duplicated = snap.counter("net.fault.duplicated").unwrap();
        assert!((130..270).contains(&dropped), "dropped {dropped}");
        assert!(duplicated > 50, "duplicated {duplicated}");
        // Every injected duplicate is one extra delivery on the same MsgId.
        assert_eq!(
            net.observe().counter("net.delivered").unwrap(),
            400 - dropped + duplicated
        );
    }

    #[test]
    fn fault_plan_extra_delay_inflates_latency() {
        use crate::fault::{FaultPlan, FaultSpec};
        let mut net = basic_net();
        let mut plan = FaultPlan::new(3);
        plan.set_link_faults(
            "a",
            "b",
            FaultSpec {
                extra_delay: SimDuration::from_secs(2),
                ..FaultSpec::default()
            },
        )
        .unwrap();
        net.install_fault_plan(plan);
        net.send(SimTime::ZERO, "a", "b", Message::new("t", vec![]))
            .unwrap();
        net.advance_to(SimTime::from_secs(10));
        let d = net.poll(&n("b")).unwrap();
        assert!(d.latency() >= SimDuration::from_secs(2));
        // The plan (with its stats) can be reclaimed for reporting.
        let plan = net.clear_fault_plan().unwrap();
        assert_eq!(plan.stats().dropped, 0);
        assert!(net.fault_plan().is_none());
    }

    #[test]
    fn drain_unknown_node_empty() {
        let mut net = basic_net();
        assert!(net.drain(&n("ghost")).is_empty());
        assert_eq!(net.inbox_len(&n("ghost")), 0);
    }
}
