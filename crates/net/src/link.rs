//! Point-to-point link models: latency, jitter, loss and bandwidth.
//!
//! Rural agricultural connectivity — the paper's "communication constraints
//! in rural areas" — is modeled as explicit per-link parameters. Pilots
//! compose links such as `LinkSpec::lpwan_field()` (slow, lossy, shared) for
//! the sensor backhaul and `LinkSpec::rural_internet()` for the farm-to-cloud
//! uplink that fog computing must tolerate losing.

use swamp_sim::{SimDuration, SimRng};

/// Static description of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkSpec {
    /// Fixed propagation + processing delay.
    pub base_latency: SimDuration,
    /// Extra random delay, exponentially distributed with this mean.
    pub jitter_mean: SimDuration,
    /// Independent per-message loss probability in `[0,1]`.
    pub loss_prob: f64,
    /// Serialization bandwidth in bits per second.
    pub bandwidth_bps: u64,
}

impl LinkSpec {
    /// Validates and creates a spec.
    ///
    /// # Panics
    /// Panics if `loss_prob` is outside `[0,1]` or bandwidth is zero.
    pub fn new(
        base_latency: SimDuration,
        jitter_mean: SimDuration,
        loss_prob: f64,
        bandwidth_bps: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability {loss_prob} outside [0,1]"
        );
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        LinkSpec {
            base_latency,
            jitter_mean,
            loss_prob,
            bandwidth_bps,
        }
    }

    /// A LoRa-class field link: seconds of latency, kbps bandwidth, real loss.
    pub fn lpwan_field() -> Self {
        LinkSpec::new(
            SimDuration::from_millis(300),
            SimDuration::from_millis(200),
            0.02,
            5_000, // ~SF9 LoRa effective throughput
        )
    }

    /// A rural DSL/4G uplink from farm to cloud.
    pub fn rural_internet() -> Self {
        LinkSpec::new(
            SimDuration::from_millis(60),
            SimDuration::from_millis(20),
            0.005,
            2_000_000,
        )
    }

    /// A local farm LAN (fog node to gateways).
    pub fn farm_lan() -> Self {
        LinkSpec::new(
            SimDuration::from_millis(2),
            SimDuration::from_millis(1),
            0.0001,
            100_000_000,
        )
    }

    /// A datacenter-grade cloud-internal link.
    pub fn cloud_backbone() -> Self {
        LinkSpec::new(
            SimDuration::from_millis(1),
            SimDuration::ZERO,
            0.0,
            1_000_000_000,
        )
    }

    /// Serialization delay for a message of `bytes` bytes.
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        let secs = (bytes as f64 * 8.0) / self.bandwidth_bps as f64;
        SimDuration::from_secs_f64(secs)
    }
}

/// The outcome of offering one message to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxOutcome {
    /// Delivered after the contained one-way delay.
    Delivered(SimDuration),
    /// Dropped by the loss process.
    Lost,
}

/// Runtime state of a directed link: spec plus up/down status.
#[derive(Clone, Debug)]
pub struct Link {
    spec: LinkSpec,
    up: bool,
}

impl Link {
    /// Creates an up link from a spec.
    pub fn new(spec: LinkSpec) -> Self {
        Link { spec, up: true }
    }

    /// The static spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Whether the link is currently up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Brings the link up or down (Internet disconnection scenarios).
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
    }

    /// Samples the fate of one `bytes`-sized message.
    ///
    /// A down link loses everything. Otherwise the message is lost with the
    /// spec's probability, or delivered after base latency + exponential
    /// jitter + serialization delay.
    pub fn offer(&self, bytes: usize, rng: &mut SimRng) -> TxOutcome {
        if !self.up {
            return TxOutcome::Lost;
        }
        if self.spec.loss_prob > 0.0 && rng.chance(self.spec.loss_prob) {
            return TxOutcome::Lost;
        }
        let mut delay = self.spec.base_latency + self.spec.serialization_delay(bytes);
        if !self.spec.jitter_mean.is_zero() {
            let jitter_secs = rng.exponential(1.0 / self.spec.jitter_mean.as_secs_f64());
            delay += SimDuration::from_secs_f64(jitter_secs);
        }
        TxOutcome::Delivered(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_scales_with_size() {
        let spec = LinkSpec::new(SimDuration::ZERO, SimDuration::ZERO, 0.0, 8_000);
        assert_eq!(spec.serialization_delay(1_000).as_secs(), 1);
        assert_eq!(spec.serialization_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn lossless_link_always_delivers() {
        let link = Link::new(LinkSpec::cloud_backbone());
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            assert!(matches!(link.offer(100, &mut rng), TxOutcome::Delivered(_)));
        }
    }

    #[test]
    fn loss_rate_approximates_spec() {
        let link = Link::new(LinkSpec::new(
            SimDuration::from_millis(10),
            SimDuration::ZERO,
            0.2,
            1_000_000,
        ));
        let mut rng = SimRng::seed_from(2);
        let n = 50_000;
        let lost = (0..n)
            .filter(|_| matches!(link.offer(100, &mut rng), TxOutcome::Lost))
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "observed loss {rate}");
    }

    #[test]
    fn down_link_loses_everything() {
        let mut link = Link::new(LinkSpec::cloud_backbone());
        link.set_up(false);
        let mut rng = SimRng::seed_from(3);
        assert_eq!(link.offer(10, &mut rng), TxOutcome::Lost);
        link.set_up(true);
        assert!(matches!(link.offer(10, &mut rng), TxOutcome::Delivered(_)));
    }

    #[test]
    fn delay_includes_base_latency() {
        let link = Link::new(LinkSpec::new(
            SimDuration::from_millis(500),
            SimDuration::ZERO,
            0.0,
            1_000_000_000,
        ));
        let mut rng = SimRng::seed_from(4);
        match link.offer(10, &mut rng) {
            TxOutcome::Delivered(d) => assert!(d >= SimDuration::from_millis(500)),
            TxOutcome::Lost => panic!("lossless link lost a message"),
        }
    }

    #[test]
    fn jitter_varies_delay() {
        let link = Link::new(LinkSpec::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(100),
            0.0,
            1_000_000_000,
        ));
        let mut rng = SimRng::seed_from(5);
        let mut delays = std::collections::BTreeSet::new();
        for _ in 0..50 {
            if let TxOutcome::Delivered(d) = link.offer(10, &mut rng) {
                delays.insert(d.as_millis());
            }
        }
        assert!(delays.len() > 10, "jitter should spread delays");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn bad_loss_prob_rejected() {
        let _ = LinkSpec::new(SimDuration::ZERO, SimDuration::ZERO, 1.5, 1);
    }

    #[test]
    fn preset_specs_are_sane() {
        for spec in [
            LinkSpec::lpwan_field(),
            LinkSpec::rural_internet(),
            LinkSpec::farm_lan(),
            LinkSpec::cloud_backbone(),
        ] {
            assert!(spec.bandwidth_bps > 0);
            assert!((0.0..=1.0).contains(&spec.loss_prob));
        }
    }
}
