//! SDN-style flow control for the simulated network.
//!
//! The paper: "SDN architecture for IoT allows administrators to have a
//! centralized view of the IoT system and to implement security services."
//! [`FlowTable`] is that centralized view: priority-ordered rules matched on
//! (source, destination, topic prefix) with allow / deny / rate-limit
//! actions, plus per-rule counters the security layer reads to spot floods
//! and to surgically block attackers (experiment E2).

use std::fmt;

use swamp_sim::SimTime;

use crate::message::NodeId;

/// Identifier of an installed flow rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub u64);

/// What a matching rule does with a packet.
#[derive(Clone, Debug, PartialEq)]
pub enum FlowAction {
    /// Forward normally.
    Allow,
    /// Drop.
    Deny,
    /// Token-bucket rate limit: sustained `per_sec` packets/s with burst
    /// capacity `burst`.
    RateLimit {
        /// Sustained packets per second.
        per_sec: f64,
        /// Maximum burst size in packets.
        burst: f64,
    },
}

/// Match criteria; `None` fields are wildcards.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowMatch {
    /// Match on source node.
    pub src: Option<NodeId>,
    /// Match on destination node.
    pub dst: Option<NodeId>,
    /// Match on topic prefix.
    pub topic_prefix: Option<String>,
}

impl FlowMatch {
    /// Matches everything.
    pub fn any() -> Self {
        FlowMatch::default()
    }

    /// Matches a specific source node.
    pub fn from_src(src: impl Into<NodeId>) -> Self {
        FlowMatch {
            src: Some(src.into()),
            ..FlowMatch::default()
        }
    }

    fn matches(&self, src: &NodeId, dst: &NodeId, topic: &str) -> bool {
        if let Some(s) = &self.src {
            if s != src {
                return false;
            }
        }
        if let Some(d) = &self.dst {
            if d != dst {
                return false;
            }
        }
        if let Some(p) = &self.topic_prefix {
            if !topic.starts_with(p.as_str()) {
                return false;
            }
        }
        true
    }
}

/// Per-rule counters, part of the controller's centralized view.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Packets that matched and were allowed through.
    pub allowed: u64,
    /// Packets that matched and were dropped (deny or rate limit).
    pub dropped: u64,
    /// Bytes allowed through.
    pub bytes_allowed: u64,
}

#[derive(Clone, Debug)]
struct FlowRule {
    id: RuleId,
    priority: i32,
    matcher: FlowMatch,
    action: FlowAction,
    stats: FlowStats,
    /// Token bucket state for `RateLimit`.
    tokens: f64,
    last_refill: SimTime,
}

/// The verdict the network asks of the flow table for each packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Forward the packet.
    Forward,
    /// Drop it, attributing the drop to the given rule.
    Drop(RuleId),
}

/// A priority-ordered flow table with a default-allow policy.
///
/// # Example
/// ```
/// use swamp_net::sdn::{FlowAction, FlowMatch, FlowTable, Verdict};
/// use swamp_sim::SimTime;
///
/// let mut table = FlowTable::new();
/// let rule = table.install(10, FlowMatch::from_src("attacker"), FlowAction::Deny);
/// let v = table.classify(SimTime::ZERO, &"attacker".into(), &"broker".into(), "t", 64);
/// assert_eq!(v, Verdict::Drop(rule));
/// assert_eq!(table.stats(rule).unwrap().dropped, 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FlowTable {
    rules: Vec<FlowRule>,
    next_id: u64,
}

impl FlowTable {
    /// Creates an empty (allow-everything) table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Installs a rule; higher `priority` is consulted first. Returns its id.
    pub fn install(&mut self, priority: i32, matcher: FlowMatch, action: FlowAction) -> RuleId {
        let id = RuleId(self.next_id);
        self.next_id += 1;
        self.rules.push(FlowRule {
            id,
            priority,
            matcher,
            action,
            stats: FlowStats::default(),
            tokens: 0.0,
            last_refill: SimTime::ZERO,
        });
        // Stable sort keeps insertion order among equal priorities.
        self.rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
        // Initialize bucket full for rate limits.
        if let Some(r) = self.rules.iter_mut().find(|r| r.id == id) {
            if let FlowAction::RateLimit { burst, .. } = r.action {
                r.tokens = burst;
            }
        }
        id
    }

    /// Removes a rule. Returns whether it existed.
    pub fn remove(&mut self, id: RuleId) -> bool {
        let before = self.rules.len();
        self.rules.retain(|r| r.id != id);
        self.rules.len() != before
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Reads a rule's counters.
    pub fn stats(&self, id: RuleId) -> Option<FlowStats> {
        self.rules.iter().find(|r| r.id == id).map(|r| r.stats)
    }

    /// Iterates `(rule id, priority, stats)` for the controller dashboard.
    pub fn all_stats(&self) -> impl Iterator<Item = (RuleId, i32, FlowStats)> + '_ {
        self.rules.iter().map(|r| (r.id, r.priority, r.stats))
    }

    /// Classifies one packet, updating counters and token buckets.
    ///
    /// The first matching rule (highest priority) decides; no rule ⇒ forward.
    pub fn classify(
        &mut self,
        now: SimTime,
        src: &NodeId,
        dst: &NodeId,
        topic: &str,
        bytes: usize,
    ) -> Verdict {
        for rule in &mut self.rules {
            if !rule.matcher.matches(src, dst, topic) {
                continue;
            }
            match &rule.action {
                FlowAction::Allow => {
                    rule.stats.allowed += 1;
                    rule.stats.bytes_allowed += bytes as u64;
                    return Verdict::Forward;
                }
                FlowAction::Deny => {
                    rule.stats.dropped += 1;
                    return Verdict::Drop(rule.id);
                }
                FlowAction::RateLimit { per_sec, burst } => {
                    // Refill monotonically: callers may classify packets
                    // slightly out of timestamp order (batched sends), and a
                    // clock that moves backwards must not mint tokens.
                    if now > rule.last_refill {
                        let elapsed = now
                            .saturating_duration_since(rule.last_refill)
                            .as_secs_f64();
                        rule.tokens = (rule.tokens + elapsed * per_sec).min(*burst);
                        rule.last_refill = now;
                    }
                    if rule.tokens >= 1.0 {
                        rule.tokens -= 1.0;
                        rule.stats.allowed += 1;
                        rule.stats.bytes_allowed += bytes as u64;
                        return Verdict::Forward;
                    }
                    rule.stats.dropped += 1;
                    return Verdict::Drop(rule.id);
                }
            }
        }
        Verdict::Forward
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow table ({} rules):", self.rules.len())?;
        for r in &self.rules {
            writeln!(
                f,
                "  [{}] prio={} {:?} -> {:?} (allowed={} dropped={})",
                r.id.0, r.priority, r.matcher, r.action, r.stats.allowed, r.stats.dropped
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swamp_sim::SimDuration;

    fn n(s: &str) -> NodeId {
        NodeId::new(s)
    }

    #[test]
    fn default_allow() {
        let mut t = FlowTable::new();
        assert_eq!(
            t.classify(SimTime::ZERO, &n("a"), &n("b"), "x", 1),
            Verdict::Forward
        );
        assert!(t.is_empty());
    }

    #[test]
    fn deny_by_source() {
        let mut t = FlowTable::new();
        let r = t.install(0, FlowMatch::from_src("evil"), FlowAction::Deny);
        assert_eq!(
            t.classify(SimTime::ZERO, &n("evil"), &n("b"), "x", 1),
            Verdict::Drop(r)
        );
        assert_eq!(
            t.classify(SimTime::ZERO, &n("good"), &n("b"), "x", 1),
            Verdict::Forward
        );
        assert_eq!(t.stats(r).unwrap().dropped, 1);
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new();
        t.install(0, FlowMatch::any(), FlowAction::Deny);
        t.install(
            10,
            FlowMatch {
                src: Some(n("probe")),
                ..FlowMatch::default()
            },
            FlowAction::Allow,
        );
        assert_eq!(
            t.classify(SimTime::ZERO, &n("probe"), &n("b"), "x", 1),
            Verdict::Forward
        );
        assert!(matches!(
            t.classify(SimTime::ZERO, &n("other"), &n("b"), "x", 1),
            Verdict::Drop(_)
        ));
    }

    #[test]
    fn topic_prefix_match() {
        let mut t = FlowTable::new();
        let r = t.install(
            0,
            FlowMatch {
                topic_prefix: Some("cmd/".into()),
                ..FlowMatch::default()
            },
            FlowAction::Deny,
        );
        assert_eq!(
            t.classify(SimTime::ZERO, &n("a"), &n("b"), "cmd/valve", 1),
            Verdict::Drop(r)
        );
        assert_eq!(
            t.classify(SimTime::ZERO, &n("a"), &n("b"), "telemetry/soil", 1),
            Verdict::Forward
        );
    }

    #[test]
    fn dst_match() {
        let mut t = FlowTable::new();
        t.install(
            0,
            FlowMatch {
                dst: Some(n("broker")),
                ..FlowMatch::default()
            },
            FlowAction::Deny,
        );
        assert!(matches!(
            t.classify(SimTime::ZERO, &n("a"), &n("broker"), "x", 1),
            Verdict::Drop(_)
        ));
        assert_eq!(
            t.classify(SimTime::ZERO, &n("a"), &n("other"), "x", 1),
            Verdict::Forward
        );
    }

    #[test]
    fn rate_limit_token_bucket() {
        let mut t = FlowTable::new();
        let r = t.install(
            0,
            FlowMatch::from_src("probe"),
            FlowAction::RateLimit {
                per_sec: 1.0,
                burst: 3.0,
            },
        );
        let now = SimTime::ZERO;
        // Burst of 3 allowed.
        for _ in 0..3 {
            assert_eq!(
                t.classify(now, &n("probe"), &n("b"), "x", 10),
                Verdict::Forward
            );
        }
        // Fourth dropped.
        assert_eq!(
            t.classify(now, &n("probe"), &n("b"), "x", 10),
            Verdict::Drop(r)
        );
        // After 2 s, two tokens accrued.
        let later = now + SimDuration::from_secs(2);
        assert_eq!(
            t.classify(later, &n("probe"), &n("b"), "x", 10),
            Verdict::Forward
        );
        assert_eq!(
            t.classify(later, &n("probe"), &n("b"), "x", 10),
            Verdict::Forward
        );
        assert_eq!(
            t.classify(later, &n("probe"), &n("b"), "x", 10),
            Verdict::Drop(r)
        );
        let stats = t.stats(r).unwrap();
        assert_eq!(stats.allowed, 5);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.bytes_allowed, 50);
    }

    #[test]
    fn remove_rule() {
        let mut t = FlowTable::new();
        let r = t.install(0, FlowMatch::any(), FlowAction::Deny);
        assert!(t.remove(r));
        assert!(!t.remove(r));
        assert_eq!(
            t.classify(SimTime::ZERO, &n("a"), &n("b"), "x", 1),
            Verdict::Forward
        );
    }

    #[test]
    fn all_stats_view() {
        let mut t = FlowTable::new();
        let r1 = t.install(5, FlowMatch::any(), FlowAction::Allow);
        let r2 = t.install(1, FlowMatch::any(), FlowAction::Deny);
        t.classify(SimTime::ZERO, &n("a"), &n("b"), "x", 7);
        let view: Vec<_> = t.all_stats().collect();
        assert_eq!(view.len(), 2);
        // Higher priority rule listed first and absorbed the packet.
        assert_eq!(view[0].0, r1);
        assert_eq!(view[0].2.allowed, 1);
        assert_eq!(view[1].0, r2);
        assert_eq!(view[1].2.dropped, 0);
    }

    #[test]
    fn display_lists_rules() {
        let mut t = FlowTable::new();
        t.install(0, FlowMatch::from_src("evil"), FlowAction::Deny);
        let text = t.to_string();
        assert!(text.contains("evil"));
        assert!(text.contains("Deny"));
    }
}
