//! 6LoWPAN-style fragmentation and reassembly.
//!
//! Constrained field radios carry small frames (MTU ≈ 96–127 bytes), while
//! platform messages (sealed NGSI JSON) are larger. This module splits a
//! datagram into tagged fragments and reassembles them, discarding
//! incomplete datagrams after a timeout — losing *one* fragment loses the
//! whole datagram, which is why the loss numbers on LPWAN links hit large
//! messages disproportionately (exercised in experiment E11).

use std::collections::BTreeMap;

use swamp_sim::{SimDuration, SimTime};

/// Reassembly state for one datagram: first-seen time, declared fragment
/// count, and the fragments received so far by index.
type PendingDatagram = (SimTime, u16, BTreeMap<u16, Vec<u8>>);

/// A single fragment of a datagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fragment {
    /// Datagram tag (unique per source over the reassembly window).
    pub tag: u16,
    /// Index of this fragment.
    pub index: u16,
    /// Total number of fragments in the datagram.
    pub total: u16,
    /// Payload slice carried by this fragment.
    pub data: Vec<u8>,
}

impl Fragment {
    /// On-air size: payload plus the 5-byte fragmentation header.
    pub fn wire_size(&self) -> usize {
        self.data.len() + 5
    }
}

/// Splits `payload` into fragments of at most `mtu` payload bytes.
///
/// # Panics
/// Panics if `mtu == 0` or the payload needs more than `u16::MAX` fragments.
pub fn fragment(tag: u16, payload: &[u8], mtu: usize) -> Vec<Fragment> {
    assert!(mtu > 0, "mtu must be positive");
    if payload.is_empty() {
        return vec![Fragment {
            tag,
            index: 0,
            total: 1,
            data: Vec::new(),
        }];
    }
    let total = payload.len().div_ceil(mtu);
    assert!(total <= u16::MAX as usize, "payload too large to fragment");
    payload
        .chunks(mtu)
        .enumerate()
        .map(|(i, chunk)| Fragment {
            tag,
            index: i as u16,
            total: total as u16,
            data: chunk.to_vec(),
        })
        .collect()
}

/// Per-source reassembly buffer with timeout-based garbage collection.
#[derive(Debug)]
pub struct Reassembler {
    timeout: SimDuration,
    /// Keyed by datagram tag.
    pending: BTreeMap<u16, PendingDatagram>,
    completed: u64,
    expired: u64,
}

impl Reassembler {
    /// Creates a reassembler that abandons datagrams older than `timeout`.
    pub fn new(timeout: SimDuration) -> Self {
        Reassembler {
            timeout,
            pending: BTreeMap::new(),
            completed: 0,
            expired: 0,
        }
    }

    /// Datagrams fully reassembled so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Datagrams dropped by timeout so far.
    pub fn expired(&self) -> u64 {
        self.expired
    }

    /// Number of datagrams currently awaiting fragments.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Offers one fragment; returns the reassembled datagram when complete.
    ///
    /// Duplicate fragments are ignored. Fragments whose `total` disagrees
    /// with the first-seen `total` for the tag are treated as a new datagram
    /// generation (the old state is discarded).
    pub fn push(&mut self, now: SimTime, frag: Fragment) -> Option<Vec<u8>> {
        self.gc(now);
        let entry = self
            .pending
            .entry(frag.tag)
            .or_insert_with(|| (now, frag.total, BTreeMap::new()));
        if entry.1 != frag.total {
            // Tag reuse with a different geometry: restart.
            *entry = (now, frag.total, BTreeMap::new());
        }
        entry.2.entry(frag.index).or_insert(frag.data);
        if entry.2.len() == entry.1 as usize {
            // Move the parts out before dropping the table entry — no
            // second lookup, no unreachable-miss to panic on.
            let parts = std::mem::take(&mut entry.2);
            self.pending.remove(&frag.tag);
            self.completed += 1;
            let mut out = Vec::new();
            for (_, part) in parts {
                out.extend_from_slice(&part);
            }
            Some(out)
        } else {
            None
        }
    }

    /// Drops pending datagrams older than the timeout.
    pub fn gc(&mut self, now: SimTime) {
        let timeout = self.timeout;
        let before = self.pending.len();
        self.pending
            .retain(|_, (start, _, _)| now.saturating_duration_since(*start) <= timeout);
        self.expired += (before - self.pending.len()) as u64;
    }

    /// Total fragment payload bytes currently buffered — the resource a
    /// fragmentation-flood attacker tries to exhaust (a classic 6LoWPAN
    /// attack; the timeout GC is the defense).
    pub fn buffered_bytes(&self) -> usize {
        self.pending
            .values()
            .map(|(_, _, parts)| parts.values().map(Vec::len).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn fragment_and_reassemble() {
        let payload: Vec<u8> = (0..250u32).map(|i| i as u8).collect();
        let frags = fragment(7, &payload, 96);
        assert_eq!(frags.len(), 3);
        assert_eq!(frags[0].total, 3);
        let mut r = Reassembler::new(SimDuration::from_secs(60));
        assert_eq!(r.push(t(0), frags[0].clone()), None);
        assert_eq!(r.push(t(1), frags[1].clone()), None);
        assert_eq!(r.push(t(2), frags[2].clone()), Some(payload));
        assert_eq!(r.completed(), 1);
    }

    #[test]
    fn out_of_order_reassembly() {
        let payload: Vec<u8> = (0..300u32).map(|i| (i * 3) as u8).collect();
        let mut frags = fragment(1, &payload, 64);
        frags.reverse();
        let mut r = Reassembler::new(SimDuration::from_secs(60));
        let mut out = None;
        for f in frags {
            out = out.or(r.push(t(0), f));
        }
        assert_eq!(out, Some(payload));
    }

    #[test]
    fn exact_multiple_of_mtu() {
        let payload = vec![9u8; 192];
        let frags = fragment(2, &payload, 96);
        assert_eq!(frags.len(), 2);
        assert_eq!(frags[0].data.len(), 96);
        assert_eq!(frags[1].data.len(), 96);
    }

    #[test]
    fn small_payload_single_fragment() {
        let frags = fragment(3, b"hi", 96);
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].total, 1);
        let mut r = Reassembler::new(SimDuration::from_secs(1));
        assert_eq!(r.push(t(0), frags[0].clone()), Some(b"hi".to_vec()));
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frags = fragment(4, b"", 96);
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new(SimDuration::from_secs(1));
        assert_eq!(r.push(t(0), frags[0].clone()), Some(Vec::new()));
    }

    #[test]
    fn duplicates_ignored() {
        let payload = vec![1u8; 200];
        let frags = fragment(5, &payload, 96);
        let mut r = Reassembler::new(SimDuration::from_secs(60));
        assert_eq!(r.push(t(0), frags[0].clone()), None);
        assert_eq!(r.push(t(0), frags[0].clone()), None); // dup
        assert_eq!(r.push(t(0), frags[1].clone()), None);
        assert_eq!(r.push(t(0), frags[2].clone()), Some(payload));
    }

    #[test]
    fn missing_fragment_times_out() {
        let payload = vec![1u8; 200];
        let frags = fragment(6, &payload, 96);
        let mut r = Reassembler::new(SimDuration::from_secs(10));
        r.push(t(0), frags[0].clone());
        r.push(t(0), frags[1].clone());
        // Fragment 2 never arrives; time passes.
        r.gc(t(100));
        assert_eq!(r.pending(), 0);
        assert_eq!(r.expired(), 1);
        // Late fragment starts a fresh (incomplete) datagram.
        assert_eq!(r.push(t(100), frags[2].clone()), None);
        assert_eq!(r.pending(), 1);
    }

    #[test]
    fn tag_reuse_with_new_geometry_restarts() {
        let mut r = Reassembler::new(SimDuration::from_secs(60));
        let old = fragment(9, &[1u8; 100], 96); // 2 fragments
        r.push(t(0), old[0].clone());
        // Same tag, different total (3 fragments) ⇒ new datagram generation.
        let new = fragment(9, &[2u8; 288], 96);
        assert_eq!(new.len(), 3);
        assert_eq!(r.push(t(1), new[0].clone()), None);
        assert_eq!(r.push(t(1), new[1].clone()), None);
        let done = r.push(t(1), new[2].clone()).unwrap();
        assert_eq!(done, vec![2u8; 288]);
    }

    #[test]
    fn independent_tags_interleave() {
        let pa = vec![0xAA; 150];
        let pb = vec![0xBB; 150];
        let fa = fragment(1, &pa, 96);
        let fb = fragment(2, &pb, 96);
        let mut r = Reassembler::new(SimDuration::from_secs(60));
        assert_eq!(r.push(t(0), fa[0].clone()), None);
        assert_eq!(r.push(t(0), fb[0].clone()), None);
        assert_eq!(r.push(t(0), fb[1].clone()), Some(pb));
        assert_eq!(r.push(t(0), fa[1].clone()), Some(pa));
    }

    #[test]
    #[should_panic(expected = "mtu")]
    fn zero_mtu_panics() {
        let _ = fragment(0, b"x", 0);
    }

    #[test]
    fn fragment_flood_is_bounded_by_gc() {
        // A 6LoWPAN fragmentation flood: an attacker sends first fragments
        // of datagrams that never complete, trying to exhaust reassembly
        // memory. The timeout GC bounds the buffer to one window's worth.
        let mut r = Reassembler::new(SimDuration::from_secs(30));
        let frag_of = |tag: u16| Fragment {
            tag,
            index: 0,
            total: 4,
            data: vec![0xEE; 96],
        };
        // 10 minutes of flooding, one bogus datagram per second.
        let mut peak = 0usize;
        for s in 0..600u64 {
            let now = SimTime::from_secs(s);
            r.push(now, frag_of((s % u16::MAX as u64) as u16));
            peak = peak.max(r.buffered_bytes());
        }
        // Bounded: at most ~31 pending datagrams × 96 B, never 600 × 96 B.
        assert!(peak <= 32 * 96, "peak buffered {peak} bytes");
        assert!(r.expired() > 500, "expired {}", r.expired());
    }

    #[test]
    fn wire_size_has_header() {
        let f = fragment(1, b"abcd", 2);
        assert_eq!(f[0].wire_size(), 2 + 5);
    }
}
