//! # swamp-net — simulated network substrate for the SWAMP platform
//!
//! The paper's platform runs over constrained rural connectivity: LPWAN
//! radios in the field, a farm LAN around the fog node, and an unreliable
//! Internet uplink to the cloud. This crate is that substrate, as a
//! deterministic discrete-event simulation:
//!
//! - [`message`] — node ids and the message/delivery types.
//! - [`link`] — per-link latency/jitter/loss/bandwidth models with presets
//!   for the SWAMP deployment tiers.
//! - [`lpwan`] — LoRa-class airtime and regulatory duty-cycle limiting.
//! - [`frag`] — 6LoWPAN-style fragmentation/reassembly for small radio MTUs.
//! - [`network`] — the event-driven fabric: inboxes, taps (eavesdroppers),
//!   partitions (Internet disconnection), and metrics.
//! - [`fault`] — deterministic fault injection: seeded per-link
//!   drop/duplicate/reorder/delay processes and scheduled partitions.
//! - [`broker`] — an MQTT-style pub/sub broker with `+`/`#` wildcards and
//!   retained messages.
//! - [`sdn`] — an SDN flow table giving the security layer the paper's
//!   "centralized view": allow/deny/rate-limit rules with per-rule counters.
//!
//! Everything is seeded and virtual-time-driven; no wall clock, no threads.
//!
//! ## Example: field probe → broker → application
//!
//! ```
//! use swamp_net::broker::Broker;
//! use swamp_net::link::LinkSpec;
//! use swamp_net::message::Message;
//! use swamp_net::network::Network;
//! use swamp_sim::SimTime;
//!
//! let mut net = Network::new(7);
//! for node in ["probe", "broker", "app"] {
//!     net.add_node(node);
//! }
//! net.connect("probe", "broker", LinkSpec::lpwan_field());
//! net.connect("app", "broker", LinkSpec::farm_lan());
//!
//! let mut broker = Broker::new("broker");
//! broker.subscribe("telemetry/#", "app");
//!
//! net.send(SimTime::ZERO, "probe", "broker",
//!          Message::new("telemetry/soil/probe-1", b"vwc=0.23".to_vec())).unwrap();
//! net.advance_to(SimTime::from_secs(30));
//! broker.process(&mut net);
//! net.advance_to(SimTime::from_secs(60));
//! # let _ = net.poll(&"app".into());
//! ```

pub mod broker;
pub mod fault;
pub mod frag;
pub mod link;
pub mod lpwan;
pub mod message;
pub mod network;
pub mod sdn;

pub use broker::{topic_matches, Broker};
pub use fault::{FaultConfigError, FaultPlan, FaultSpec};
pub use link::LinkSpec;
pub use message::{Delivery, Message, MsgId, NodeId};
pub use network::{Network, SendError};
