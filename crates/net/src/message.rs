//! Node identifiers and the message/delivery types that travel through the
//! simulated network.

use std::fmt;
use std::sync::Arc;

use swamp_sim::SimTime;

/// Identifies a node in the simulated network (device, fog node, broker,
/// cloud endpoint, attacker…). Cheap to clone.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(Arc<str>);

impl NodeId {
    /// Creates a node id.
    ///
    /// # Panics
    /// Panics if `name` is empty.
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(!name.is_empty(), "node id must be non-empty");
        NodeId(Arc::from(name))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({:?})", &*self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for NodeId {
    fn from(s: &str) -> Self {
        NodeId::new(s)
    }
}

impl AsRef<str> for NodeId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// Unique, monotonically increasing message id assigned by the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "msg#{}", self.0)
    }
}

/// A message handed to the network for transmission.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Application topic (MQTT-style slash-separated path).
    pub topic: String,
    /// Opaque payload bytes (often sealed JSON).
    pub payload: Vec<u8>,
}

impl Message {
    /// Creates a message.
    pub fn new(topic: impl Into<String>, payload: impl Into<Vec<u8>>) -> Self {
        Message {
            topic: topic.into(),
            payload: payload.into(),
        }
    }

    /// Wire size used for serialization-delay and airtime computations:
    /// payload plus a small topic/framing overhead.
    pub fn wire_size(&self) -> usize {
        self.payload.len() + self.topic.len() + 16
    }
}

/// A message delivered into a node's inbox.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery {
    /// Network-assigned id of the underlying transmission.
    pub id: MsgId,
    /// Sender node.
    pub src: NodeId,
    /// Receiver node (the inbox owner).
    pub dst: NodeId,
    /// The message.
    pub message: Message,
    /// Virtual time the message entered the network.
    pub sent_at: SimTime,
    /// Virtual time it was delivered.
    pub delivered_at: SimTime,
}

impl Delivery {
    /// One-way latency experienced by this delivery.
    pub fn latency(&self) -> swamp_sim::SimDuration {
        self.delivered_at.saturating_duration_since(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_basics() {
        let a = NodeId::new("probe-1");
        let b: NodeId = "probe-1".into();
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "probe-1");
        assert_eq!(a.to_string(), "probe-1");
        assert!(format!("{a:?}").contains("probe-1"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_node_id_panics() {
        let _ = NodeId::new("");
    }

    #[test]
    fn wire_size_includes_overhead() {
        let m = Message::new("a/b", vec![0u8; 10]);
        assert_eq!(m.wire_size(), 10 + 3 + 16);
    }

    #[test]
    fn delivery_latency() {
        let d = Delivery {
            id: MsgId(1),
            src: "a".into(),
            dst: "b".into(),
            message: Message::new("t", b"x".to_vec()),
            sent_at: SimTime::from_secs(1),
            delivered_at: SimTime::from_secs(3),
        };
        assert_eq!(d.latency().as_secs(), 2);
    }
}
