//! LoRa-class LPWAN radio model: airtime computation and duty-cycle limiting.
//!
//! The paper's pilots use long-range, low-power radio in the field. The two
//! properties that matter to the platform are (1) airtime grows steeply with
//! spreading factor, bounding effective sample rates, and (2) regional
//! regulations cap duty cycle (1% in EU868), so a device — or a DoS attacker
//! sharing the band — cannot transmit arbitrarily often.

use swamp_sim::{SimDuration, SimTime};

/// LoRa spreading factor (SF7 fastest … SF12 longest range/slowest).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpreadingFactor {
    /// SF7 — shortest airtime, shortest range.
    Sf7,
    /// SF8.
    Sf8,
    /// SF9 — the SWAMP field default.
    Sf9,
    /// SF10.
    Sf10,
    /// SF11.
    Sf11,
    /// SF12 — longest airtime, longest range.
    Sf12,
}

impl SpreadingFactor {
    fn sf(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }
}

/// Radio parameters for one LPWAN device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LpwanConfig {
    /// Spreading factor.
    pub spreading_factor: SpreadingFactor,
    /// Channel bandwidth in Hz (125 kHz typical).
    pub bandwidth_hz: u32,
    /// Coding rate denominator: 4/`cr` (5 ⇒ 4/5).
    pub coding_rate: u32,
    /// Regulatory duty-cycle cap (0.01 = 1%), enforced over a sliding window.
    pub duty_cycle: f64,
    /// Preamble symbols (8 typical).
    pub preamble_symbols: u32,
}

impl Default for LpwanConfig {
    fn default() -> Self {
        LpwanConfig {
            spreading_factor: SpreadingFactor::Sf9,
            bandwidth_hz: 125_000,
            coding_rate: 5,
            duty_cycle: 0.01,
            preamble_symbols: 8,
        }
    }
}

impl LpwanConfig {
    /// Time-on-air for a `payload_len`-byte frame, per the Semtech LoRa
    /// airtime formula (explicit header, CRC on, no low-data-rate opt below
    /// SF11).
    pub fn airtime(&self, payload_len: usize) -> SimDuration {
        let sf = self.spreading_factor.sf();
        let t_sym = (1u64 << sf) as f64 / self.bandwidth_hz as f64; // seconds
        let t_preamble = (self.preamble_symbols as f64 + 4.25) * t_sym;
        let de = if sf >= 11 { 1.0 } else { 0.0 }; // low data-rate optimization
        let pl = payload_len as f64;
        let num = 8.0 * pl - 4.0 * sf as f64 + 28.0 + 16.0; // CRC on, explicit header
        let den = 4.0 * (sf as f64 - 2.0 * de);
        let n_payload = 8.0 + ((num / den).ceil().max(0.0)) * self.coding_rate as f64;
        let t_payload = n_payload * t_sym;
        SimDuration::from_secs_f64(t_preamble + t_payload)
    }
}

/// The decision returned by [`LpwanRadio::try_transmit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxDecision {
    /// Transmission may start now; the airtime it will occupy is included.
    Granted {
        /// Time the frame occupies the channel.
        airtime: SimDuration,
    },
    /// Duty-cycle budget exhausted; retry at the given time.
    Deferred {
        /// Earliest instant at which the budget allows this frame.
        until: SimTime,
    },
}

/// A duty-cycle-limited LPWAN radio.
///
/// Tracks transmissions in a sliding one-hour window and refuses frames that
/// would exceed `duty_cycle` of that window — the mechanism that caps both
/// legitimate over-sampling and radio-level flooding DoS.
///
/// # Example
/// ```
/// use swamp_net::lpwan::{LpwanConfig, LpwanRadio, TxDecision};
/// use swamp_sim::SimTime;
/// let mut radio = LpwanRadio::new(LpwanConfig::default());
/// match radio.try_transmit(SimTime::ZERO, 24) {
///     TxDecision::Granted { airtime } => assert!(airtime.as_millis() > 0),
///     TxDecision::Deferred { .. } => unreachable!("fresh radio has budget"),
/// }
/// ```
#[derive(Clone, Debug)]
pub struct LpwanRadio {
    config: LpwanConfig,
    /// (start, airtime) of transmissions inside the current window.
    history: std::collections::VecDeque<(SimTime, SimDuration)>,
    window: SimDuration,
    total_tx: u64,
    total_deferred: u64,
}

impl LpwanRadio {
    /// Creates a radio with an empty duty-cycle history.
    pub fn new(config: LpwanConfig) -> Self {
        LpwanRadio {
            config,
            history: std::collections::VecDeque::new(),
            window: SimDuration::from_hours(1),
            total_tx: 0,
            total_deferred: 0,
        }
    }

    /// The radio configuration.
    pub fn config(&self) -> &LpwanConfig {
        &self.config
    }

    /// Frames transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.total_tx
    }

    /// Transmission attempts deferred by duty cycling so far.
    pub fn deferred(&self) -> u64 {
        self.total_deferred
    }

    /// Airtime consumed inside the window ending at `now`.
    pub fn airtime_in_window(&self, now: SimTime) -> SimDuration {
        let window_start = now.saturating_duration_since(SimTime::ZERO);
        let cutoff = if window_start > self.window {
            now - self.window
        } else {
            SimTime::ZERO
        };
        self.history
            .iter()
            .filter(|(t, _)| *t >= cutoff)
            .map(|(_, a)| *a)
            .fold(SimDuration::ZERO, |acc, a| acc + a)
    }

    /// Requests to transmit a `payload_len`-byte frame at `now`.
    ///
    /// On success the airtime is recorded against the duty-cycle budget.
    pub fn try_transmit(&mut self, now: SimTime, payload_len: usize) -> TxDecision {
        self.expire(now);
        let airtime = self.config.airtime(payload_len);
        let budget = SimDuration::from_secs_f64(self.window.as_secs_f64() * self.config.duty_cycle);
        let used = self.airtime_in_window(now);
        if used + airtime <= budget {
            self.history.push_back((now, airtime));
            self.total_tx += 1;
            TxDecision::Granted { airtime }
        } else {
            self.total_deferred += 1;
            // Earliest time enough old airtime has slid out of the window.
            let mut freed = SimDuration::ZERO;
            let need = (used + airtime).saturating_sub(budget);
            let mut until = now + self.window; // pessimistic fallback
            for (t, a) in &self.history {
                freed += *a;
                if freed >= need {
                    // +1 ms so the entry at `t` has strictly left the window.
                    until = *t + self.window + SimDuration::from_millis(1);
                    break;
                }
            }
            TxDecision::Deferred { until }
        }
    }

    fn expire(&mut self, now: SimTime) {
        let cutoff = if now.saturating_duration_since(SimTime::ZERO) > self.window {
            now - self.window
        } else {
            SimTime::ZERO
        };
        while let Some((t, _)) = self.history.front() {
            if *t < cutoff {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_known_ballpark() {
        // SF7/125kHz, 20-byte payload is ~56.6 ms per the Semtech calculator.
        let cfg = LpwanConfig {
            spreading_factor: SpreadingFactor::Sf7,
            ..LpwanConfig::default()
        };
        let a = cfg.airtime(20).as_millis();
        assert!((50..65).contains(&a), "SF7 airtime {a}ms");

        // SF12 same payload is ~1.3-1.6 s.
        let cfg = LpwanConfig {
            spreading_factor: SpreadingFactor::Sf12,
            ..LpwanConfig::default()
        };
        let a = cfg.airtime(20).as_millis();
        assert!((1000..1900).contains(&a), "SF12 airtime {a}ms");
    }

    #[test]
    fn airtime_monotone_in_sf_and_size() {
        let sfs = [
            SpreadingFactor::Sf7,
            SpreadingFactor::Sf8,
            SpreadingFactor::Sf9,
            SpreadingFactor::Sf10,
            SpreadingFactor::Sf11,
            SpreadingFactor::Sf12,
        ];
        let mut last = SimDuration::ZERO;
        for sf in sfs {
            let cfg = LpwanConfig {
                spreading_factor: sf,
                ..LpwanConfig::default()
            };
            let a = cfg.airtime(24);
            assert!(a > last, "airtime must grow with SF");
            last = a;
        }
        let cfg = LpwanConfig::default();
        assert!(cfg.airtime(100) > cfg.airtime(10));
    }

    #[test]
    fn duty_cycle_defers_flooding() {
        let mut radio = LpwanRadio::new(LpwanConfig::default());
        let mut now = SimTime::ZERO;
        let mut granted = 0;
        let mut deferred_at = None;
        // Hammer the radio every 100 ms; 1% duty cycle must kick in.
        for _ in 0..10_000 {
            match radio.try_transmit(now, 48) {
                TxDecision::Granted { .. } => granted += 1,
                TxDecision::Deferred { until } => {
                    deferred_at = Some(until);
                    break;
                }
            }
            now += SimDuration::from_millis(100);
        }
        let until = deferred_at.expect("duty cycle should engage");
        assert!(granted > 10, "some frames granted before cap: {granted}");
        assert!(granted < 500, "cap engaged too late: {granted}");
        assert!(until > now, "deferral must be in the future");
        assert_eq!(radio.deferred(), 1);
        assert_eq!(radio.transmitted(), granted);
    }

    #[test]
    fn budget_recovers_after_window() {
        let mut radio = LpwanRadio::new(LpwanConfig::default());
        let mut now = SimTime::ZERO;
        // Exhaust the budget.
        loop {
            match radio.try_transmit(now, 48) {
                TxDecision::Granted { .. } => now += SimDuration::from_millis(10),
                TxDecision::Deferred { until } => {
                    now = until;
                    break;
                }
            }
        }
        // At the deferral time the radio must grant again.
        assert!(matches!(
            radio.try_transmit(now, 48),
            TxDecision::Granted { .. }
        ));
    }

    #[test]
    fn window_airtime_accounting() {
        let mut radio = LpwanRadio::new(LpwanConfig::default());
        let a1 = match radio.try_transmit(SimTime::ZERO, 24) {
            TxDecision::Granted { airtime } => airtime,
            other => panic!("{other:?}"),
        };
        assert_eq!(radio.airtime_in_window(SimTime::from_secs(10)), a1);
        // Two hours later the window is clear.
        assert_eq!(
            radio.airtime_in_window(SimTime::from_hours(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn deferral_time_is_usable() {
        let cfg = LpwanConfig {
            duty_cycle: 0.001, // very tight
            ..LpwanConfig::default()
        };
        let mut radio = LpwanRadio::new(cfg);
        let mut now = SimTime::ZERO;
        let mut rounds = 0;
        while rounds < 5 {
            match radio.try_transmit(now, 48) {
                TxDecision::Granted { .. } => {
                    now += SimDuration::from_millis(1);
                }
                TxDecision::Deferred { until } => {
                    now = until;
                    rounds += 1;
                }
            }
        }
        assert!(radio.transmitted() >= 5);
    }
}
