//! Deterministic fault injection for the simulated network.
//!
//! The paper's deployment modes — farm-premise fog nodes and *mobile* fog
//! nodes on drones and center pivots — exist because connectivity to the
//! cloud is intermittent, and its threat model leads with denial of service
//! against the sensing and distribution tiers. A [`FaultPlan`] makes that
//! adversity reproducible: per-link drop/duplicate/reorder/delay processes
//! (seeded from [`swamp_sim::SimRng`]) plus scheduled partitions, injected
//! into [`crate::network::Network::send`] so that every protocol built on
//! the fabric can be exercised under degraded links without touching the
//! protocol code.
//!
//! Faults compose with the link model: a message first survives the link's
//! own loss process, then the plan's. Partitions mirror the window
//! semantics of `swamp_fog::availability::OutageSchedule` (half-open
//! `[start, end)`, non-overlapping per link) so outage schedules written
//! for availability accounting can drive the fault plan directly.

use std::collections::BTreeMap;

use swamp_sim::{SimDuration, SimRng, SimTime};

use crate::message::NodeId;

/// Why a fault-plan configuration was rejected.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultConfigError {
    /// A probability was outside `[0, 1]` or not finite.
    InvalidProbability(f64),
    /// A partition window had `end <= start`.
    EmptyWindow(SimTime, SimTime),
    /// A partition window overlapped an existing one on the same link.
    OverlappingWindow(SimTime, SimTime),
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::InvalidProbability(p) => {
                write!(f, "fault probability {p} outside [0,1]")
            }
            FaultConfigError::EmptyWindow(s, e) => {
                write!(f, "partition window [{s}, {e}) has no duration")
            }
            FaultConfigError::OverlappingWindow(s, e) => {
                write!(f, "partition window [{s}, {e}) overlaps an existing window")
            }
        }
    }
}
impl std::error::Error for FaultConfigError {}

/// Stochastic fault processes applied to one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Extra per-message drop probability (on top of the link's own loss).
    pub drop_prob: f64,
    /// Probability that a delivered message is duplicated (a second copy
    /// arrives after an independent extra delay).
    pub duplicate_prob: f64,
    /// Probability that a delivered message is reordered: it receives an
    /// extra uniform delay in `[0, reorder_window]`, letting later sends
    /// overtake it.
    pub reorder_prob: f64,
    /// Maximum extra delay applied to reordered messages.
    pub reorder_window: SimDuration,
    /// Fixed extra one-way delay applied to every delivered message
    /// (degraded-path latency inflation).
    pub extra_delay: SimDuration,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            reorder_window: SimDuration::from_millis(500),
            extra_delay: SimDuration::ZERO,
        }
    }
}

impl FaultSpec {
    /// A spec that only drops (the classic lossy-uplink scenario).
    pub fn lossy(drop_prob: f64) -> Self {
        FaultSpec {
            drop_prob,
            ..FaultSpec::default()
        }
    }

    /// A "degraded WAN" preset: correlated loss, duplication and
    /// reordering at the given base rate.
    pub fn degraded(rate: f64) -> Self {
        FaultSpec {
            drop_prob: rate,
            duplicate_prob: rate / 3.0,
            reorder_prob: rate / 2.0,
            reorder_window: SimDuration::from_millis(750),
            extra_delay: SimDuration::from_millis(20),
        }
    }

    fn validate(&self) -> Result<(), FaultConfigError> {
        for p in [self.drop_prob, self.duplicate_prob, self.reorder_prob] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(FaultConfigError::InvalidProbability(p));
            }
        }
        Ok(())
    }
}

/// What the plan decided for one offered message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver: one scheduled copy per listed extra delay (the first entry
    /// is the primary copy; additional entries are injected duplicates).
    Deliver(Vec<SimDuration>),
    /// Drop by the stochastic loss process.
    Dropped,
    /// Drop because the link is inside a scheduled partition window.
    Partitioned,
}

/// Counters describing everything a plan has injected so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by `drop_prob`.
    pub dropped: u64,
    /// Extra copies injected by `duplicate_prob`.
    pub duplicated: u64,
    /// Messages given a reorder delay.
    pub reordered: u64,
    /// Messages dropped inside a partition window.
    pub partitioned: u64,
}

/// A deterministic, seeded schedule of link faults.
///
/// # Example
/// ```
/// use swamp_net::fault::{FaultPlan, FaultSpec};
/// use swamp_sim::SimTime;
///
/// let mut plan = FaultPlan::new(7);
/// plan.set_link_faults("fog", "cloud", FaultSpec::lossy(0.3)).unwrap();
/// plan.add_partition("fog", "cloud", SimTime::from_hours(2), SimTime::from_hours(4))
///     .unwrap();
/// assert!(plan.is_partitioned(SimTime::from_hours(3), &"fog".into(), &"cloud".into()));
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    rng: SimRng,
    /// Per-directed-link fault processes.
    link_faults: BTreeMap<(NodeId, NodeId), FaultSpec>,
    /// Fallback spec applied to links without an explicit entry.
    default_faults: Option<FaultSpec>,
    /// Sorted, non-overlapping partition windows per directed link.
    partitions: BTreeMap<(NodeId, NodeId), Vec<(SimTime, SimTime)>>,
    stats: FaultStats,
}

impl FaultPlan {
    /// Creates an empty plan with its own deterministic RNG stream.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            rng: SimRng::seed_from(seed ^ 0x6661756c745f706c), // "fault_pl"
            link_faults: BTreeMap::new(),
            default_faults: None,
            partitions: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// Injection counters.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Installs a fault spec on both directions of the `a ↔ b` link.
    ///
    /// # Errors
    /// [`FaultConfigError::InvalidProbability`] if any probability is
    /// outside `[0, 1]`.
    pub fn set_link_faults(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        spec: FaultSpec,
    ) -> Result<(), FaultConfigError> {
        spec.validate()?;
        let a = a.into();
        let b = b.into();
        self.link_faults.insert((a.clone(), b.clone()), spec);
        self.link_faults.insert((b, a), spec);
        Ok(())
    }

    /// Installs a fallback spec for every link without an explicit entry.
    ///
    /// # Errors
    /// [`FaultConfigError::InvalidProbability`] if any probability is
    /// outside `[0, 1]`.
    pub fn set_default_faults(&mut self, spec: FaultSpec) -> Result<(), FaultConfigError> {
        spec.validate()?;
        self.default_faults = Some(spec);
        Ok(())
    }

    /// Schedules a partition of both directions of `a ↔ b` over
    /// `[start, end)` — the same window semantics as
    /// `swamp_fog::availability::OutageSchedule::add_outage`, but as a
    /// typed error instead of a panic.
    ///
    /// # Errors
    /// [`FaultConfigError::EmptyWindow`] if `end <= start`;
    /// [`FaultConfigError::OverlappingWindow`] if the window overlaps an
    /// existing one on this link.
    pub fn add_partition(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        start: SimTime,
        end: SimTime,
    ) -> Result<(), FaultConfigError> {
        if end <= start {
            return Err(FaultConfigError::EmptyWindow(start, end));
        }
        let a = a.into();
        let b = b.into();
        for key in [(a.clone(), b.clone()), (b, a)] {
            let windows = self.partitions.entry(key).or_default();
            if windows.iter().any(|&(s, e)| start < e && s < end) {
                return Err(FaultConfigError::OverlappingWindow(start, end));
            }
            windows.push((start, end));
            windows.sort();
        }
        Ok(())
    }

    /// Copies every window of an outage schedule onto the `a ↔ b` link.
    /// The windows are expected to come from a well-formed schedule (e.g.
    /// `OutageSchedule::windows`), which already guarantees non-overlap.
    ///
    /// # Errors
    /// Propagates the first [`FaultConfigError`] for malformed windows.
    pub fn add_partitions_from(
        &mut self,
        a: impl Into<NodeId>,
        b: impl Into<NodeId>,
        windows: impl IntoIterator<Item = (SimTime, SimTime)>,
    ) -> Result<(), FaultConfigError> {
        let a = a.into();
        let b = b.into();
        for (start, end) in windows {
            self.add_partition(a.clone(), b.clone(), start, end)?;
        }
        Ok(())
    }

    /// Whether the directed link `src → dst` is inside a partition window.
    pub fn is_partitioned(&self, now: SimTime, src: &NodeId, dst: &NodeId) -> bool {
        self.partitions
            .get(&(src.clone(), dst.clone()))
            .is_some_and(|ws| ws.iter().any(|&(s, e)| now >= s && now < e))
    }

    /// The spec governing `src → dst`, if any.
    fn spec_for(&self, src: &NodeId, dst: &NodeId) -> Option<FaultSpec> {
        self.link_faults
            .get(&(src.clone(), dst.clone()))
            .copied()
            .or(self.default_faults)
    }

    /// Samples the fate of one message offered on `src → dst` at `now`.
    /// Advances the plan's RNG stream only when a stochastic spec governs
    /// the link, so unfaulted links stay bit-identical to a plan-free run.
    pub fn sample(&mut self, now: SimTime, src: &NodeId, dst: &NodeId) -> FaultOutcome {
        if self.is_partitioned(now, src, dst) {
            self.stats.partitioned += 1;
            return FaultOutcome::Partitioned;
        }
        let Some(spec) = self.spec_for(src, dst) else {
            return FaultOutcome::Deliver(vec![SimDuration::ZERO]);
        };
        if spec.drop_prob > 0.0 && self.rng.chance(spec.drop_prob) {
            self.stats.dropped += 1;
            return FaultOutcome::Dropped;
        }
        let mut primary = spec.extra_delay;
        if spec.reorder_prob > 0.0 && self.rng.chance(spec.reorder_prob) {
            self.stats.reordered += 1;
            let span_ms = spec.reorder_window.as_millis();
            if span_ms > 0 {
                primary += SimDuration::from_millis(self.rng.below(span_ms + 1));
            }
        }
        let mut delays = vec![primary];
        if spec.duplicate_prob > 0.0 && self.rng.chance(spec.duplicate_prob) {
            self.stats.duplicated += 1;
            let lag_ms = spec.reorder_window.as_millis().max(1);
            delays.push(primary + SimDuration::from_millis(self.rng.below(lag_ms) + 1));
        }
        FaultOutcome::Deliver(delays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> NodeId {
        NodeId::new(s)
    }

    #[test]
    fn empty_plan_forwards_everything() {
        let mut plan = FaultPlan::new(1);
        for _ in 0..100 {
            assert_eq!(
                plan.sample(SimTime::ZERO, &n("a"), &n("b")),
                FaultOutcome::Deliver(vec![SimDuration::ZERO])
            );
        }
        assert_eq!(plan.stats(), FaultStats::default());
    }

    #[test]
    fn drop_rate_approximates_spec() {
        let mut plan = FaultPlan::new(2);
        plan.set_link_faults("a", "b", FaultSpec::lossy(0.3))
            .unwrap();
        let trials = 20_000;
        let dropped = (0..trials)
            .filter(|_| plan.sample(SimTime::ZERO, &n("a"), &n("b")) == FaultOutcome::Dropped)
            .count();
        let rate = dropped as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn duplicates_and_reorders_fire() {
        let mut plan = FaultPlan::new(3);
        plan.set_link_faults(
            "a",
            "b",
            FaultSpec {
                drop_prob: 0.0,
                duplicate_prob: 0.5,
                reorder_prob: 0.5,
                reorder_window: SimDuration::from_millis(100),
                extra_delay: SimDuration::from_millis(10),
            },
        )
        .unwrap();
        let mut dup = 0;
        for _ in 0..1000 {
            match plan.sample(SimTime::ZERO, &n("a"), &n("b")) {
                FaultOutcome::Deliver(delays) => {
                    assert!(delays[0] >= SimDuration::from_millis(10), "extra delay");
                    if delays.len() == 2 {
                        dup += 1;
                        assert!(delays[1] > delays[0], "duplicate lags the primary");
                    }
                }
                other => panic!("lossless spec must deliver, got {other:?}"),
            }
        }
        assert!((400..600).contains(&dup), "duplicate count {dup}");
        assert!(plan.stats().reordered > 300);
    }

    #[test]
    fn partitions_are_half_open_and_bidirectional() {
        let mut plan = FaultPlan::new(4);
        plan.add_partition("a", "b", SimTime::from_hours(1), SimTime::from_hours(2))
            .unwrap();
        assert!(!plan.is_partitioned(SimTime::ZERO, &n("a"), &n("b")));
        assert!(plan.is_partitioned(SimTime::from_hours(1), &n("a"), &n("b")));
        assert!(plan.is_partitioned(SimTime::from_secs(5400), &n("b"), &n("a")));
        assert!(!plan.is_partitioned(SimTime::from_hours(2), &n("a"), &n("b")));
        assert_eq!(
            plan.sample(SimTime::from_secs(5400), &n("a"), &n("b")),
            FaultOutcome::Partitioned
        );
        assert_eq!(plan.stats().partitioned, 1);
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut plan = FaultPlan::new(5);
        assert_eq!(
            plan.set_link_faults("a", "b", FaultSpec::lossy(1.5)),
            Err(FaultConfigError::InvalidProbability(1.5))
        );
        assert_eq!(
            plan.add_partition("a", "b", SimTime::from_hours(2), SimTime::from_hours(2)),
            Err(FaultConfigError::EmptyWindow(
                SimTime::from_hours(2),
                SimTime::from_hours(2)
            ))
        );
        plan.add_partition("a", "b", SimTime::from_hours(1), SimTime::from_hours(3))
            .unwrap();
        assert_eq!(
            plan.add_partition("b", "a", SimTime::from_hours(2), SimTime::from_hours(4)),
            Err(FaultConfigError::OverlappingWindow(
                SimTime::from_hours(2),
                SimTime::from_hours(4)
            ))
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed);
            plan.set_link_faults("a", "b", FaultSpec::degraded(0.2))
                .unwrap();
            (0..500)
                .map(|_| plan.sample(SimTime::ZERO, &n("a"), &n("b")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn default_faults_cover_unlisted_links() {
        let mut plan = FaultPlan::new(6);
        plan.set_default_faults(FaultSpec::lossy(1.0)).unwrap();
        assert_eq!(
            plan.sample(SimTime::ZERO, &n("x"), &n("y")),
            FaultOutcome::Dropped
        );
    }

    #[test]
    fn windows_import_from_schedule_shape() {
        let mut plan = FaultPlan::new(7);
        plan.add_partitions_from(
            "a",
            "b",
            [
                (SimTime::from_hours(1), SimTime::from_hours(2)),
                (SimTime::from_hours(5), SimTime::from_hours(6)),
            ],
        )
        .unwrap();
        assert!(plan.is_partitioned(SimTime::from_secs(5400), &n("a"), &n("b")));
        assert!(plan.is_partitioned(SimTime::from_secs(19800), &n("a"), &n("b")));
        assert!(!plan.is_partitioned(SimTime::from_hours(3), &n("a"), &n("b")));
    }
}
