//! Item-level Rust parser: `fn` / `impl` / `trait` / `use` items with token
//! and line spans, built on the [`crate::lexer`] token stream.
//!
//! This is deliberately *not* a grammar-complete parser. The graph rules
//! need three structural facts the lexer alone cannot give:
//!
//! 1. which tokens belong to which function body (so call sites and alloc
//!    sites can be attributed to a symbol),
//! 2. the `Self` type context of each method (so `Type::method` names
//!    resolve), and
//! 3. `use … as …` renames (so an aliased type still resolves to its
//!    defining impl blocks).
//!
//! Known conservatism, by design (documented in DESIGN.md §15):
//!
//! - **Macro-generated items are skipped.** A `macro_rules!` body is
//!   consumed without interpretation; items a macro expands to do not
//!   exist for the analyzer. None of the checked invariants currently
//!   hides behind a macro (CI's `cargo clippy` would still compile them).
//! - **Nested `fn` items** are parsed as their own symbols, but their
//!   tokens also remain inside the enclosing body's range — call and alloc
//!   sites in a nested fn are attributed to *both*. Over-approximation is
//!   safe for every graph rule (they only ever deny).
//! - **Paths resolve by name, not by type.** `impl` blocks for the same
//!   type name in different crates are merged; method calls resolve to
//!   every workspace method of that name. Again: over-approximation.

use std::ops::Range;

use crate::lexer::{is_ident, is_punct, Tok, Token};

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's own name.
    pub name: String,
    /// `Some(Type)` for methods in `impl Type` / `impl Trait for Type`
    /// blocks and for trait default methods (the trait name); `None` for
    /// free functions.
    pub self_type: Option<String>,
    /// Token range of the body, `{` through matching `}` inclusive;
    /// `None` for bodiless declarations (trait method signatures).
    pub body: Option<Range<usize>>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based last line of the item (closing brace, or the `;`).
    pub end_line: u32,
}

impl FnItem {
    /// The qualified symbol name used in findings and allowlist `symbol =`
    /// scoping: `Type::name` for methods, bare `name` for free functions.
    pub fn qual(&self) -> String {
        match &self.self_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use … as …` rename: `alias` refers to `target`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseAlias {
    pub alias: String,
    pub target: String,
}

/// Parsed items of one source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub aliases: Vec<UseAlias>,
}

/// Parses the item structure of a token stream.
pub fn parse_items(tokens: &[Token]) -> ParsedFile {
    let mut out = ParsedFile::default();
    // Innermost-last stack of `(self_type, region_end_token)` contexts
    // opened by impl/trait blocks.
    let mut contexts: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        contexts.retain(|(_, end)| *end > i);
        match &tokens[i].tok {
            Tok::Ident(kw) if kw == "macro_rules" => {
                // `macro_rules ! name { … }`: skip the whole definition so
                // token shapes inside macro bodies never become items.
                i = skip_to_matching_brace(tokens, i);
                continue;
            }
            Tok::Ident(kw) if kw == "impl" => {
                if let Some((self_type, body_open)) = parse_impl_header(tokens, i) {
                    let end = match_brace(tokens, body_open);
                    contexts.push((self_type, end));
                    i = body_open + 1;
                    continue;
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "trait" => {
                // `trait Name … { … }`: default methods get the trait name
                // as their self type.
                if let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) {
                    let name = name.clone();
                    if let Some(open) = find_body_open(tokens, i + 2) {
                        let end = match_brace(tokens, open);
                        contexts.push((name, end));
                        i = open + 1;
                        continue;
                    }
                }
                i += 1;
            }
            Tok::Ident(kw) if kw == "use" => {
                i = parse_use(tokens, i + 1, &mut out.aliases);
            }
            Tok::Ident(kw) if kw == "fn" => {
                let line = tokens[i].line;
                let Some(Tok::Ident(name)) = tokens.get(i + 1).map(|t| &t.tok) else {
                    i += 1;
                    continue;
                };
                let name = name.clone();
                let self_type = contexts.last().map(|(t, _)| t.clone());
                let (body, end_line, next) = match find_body_open(tokens, i + 2) {
                    Some(open) => {
                        let close = match_brace(tokens, open);
                        (
                            Some(open..close + 1),
                            tokens.get(close).map(|t| t.line).unwrap_or(line),
                            // Continue just past the signature so nested
                            // fns inside the body are found too.
                            open + 1,
                        )
                    }
                    None => {
                        let semi = find_semi(tokens, i + 2);
                        (None, tokens.get(semi).map(|t| t.line).unwrap_or(line), semi)
                    }
                };
                out.fns.push(FnItem {
                    name,
                    self_type,
                    body,
                    line,
                    end_line,
                });
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}

/// From an `impl` keyword at `i`, returns the Self type name and the index
/// of the body `{`. Handles `impl<G> Type<G>`, `impl Trait for Type`, and
/// path-qualified names (`impl fmt::Display for Json` → `Json`).
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    j = skip_generics(tokens, j);
    let (first, mut j) = parse_type_path(tokens, j)?;
    let mut self_type = first;
    if is_ident(tokens, j, "for") {
        // Skip leading `&`/`mut`/`dyn` before the type path.
        j += 1;
        while is_punct(tokens, j, '&')
            || is_ident(tokens, j, "mut")
            || is_ident(tokens, j, "dyn")
            || matches!(tokens.get(j).map(|t| &t.tok), Some(Tok::Lifetime))
        {
            j += 1;
        }
        let (second, k) = parse_type_path(tokens, j)?;
        self_type = second;
        j = k;
    }
    let open = find_body_open(tokens, j)?;
    Some((self_type, open))
}

/// Parses a (possibly path-qualified, possibly generic) type path starting
/// at `j`; returns the **last** segment name and the index just past the
/// path.
fn parse_type_path(tokens: &[Token], mut j: usize) -> Option<(String, usize)> {
    let mut last = match tokens.get(j).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => s.clone(),
        _ => return None,
    };
    j += 1;
    loop {
        j = skip_generics(tokens, j);
        if is_punct(tokens, j, ':') && is_punct(tokens, j + 1, ':') {
            match tokens.get(j + 2).map(|t| &t.tok) {
                Some(Tok::Ident(s)) => {
                    last = s.clone();
                    j += 3;
                }
                _ => return Some((last, j)),
            }
        } else {
            return Some((last, j));
        }
    }
}

/// Skips a balanced `<…>` group at `j`, if one starts there.
fn skip_generics(tokens: &[Token], j: usize) -> usize {
    if !is_punct(tokens, j, '<') {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < tokens.len() {
        match tokens[k].tok {
            Tok::Punct('<') => depth += 1,
            Tok::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return k + 1;
                }
            }
            // A `{` before the generics close means we mis-lexed a
            // comparison; bail where we started.
            Tok::Punct('{') => return j,
            _ => {}
        }
        k += 1;
    }
    j
}

/// Finds the first `{` at paren/bracket depth 0 starting at `j`; `None` if
/// a `;` comes first (bodiless item).
fn find_body_open(tokens: &[Token], mut j: usize) -> Option<usize> {
    let mut depth = 0i32;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct(';') if depth == 0 => return None,
            Tok::Punct('{') if depth == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (or the last token).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// From a token at/inside an item, skips forward past the first top-level
/// `{…}` group (used for `macro_rules! name { … }`).
fn skip_to_matching_brace(tokens: &[Token], i: usize) -> usize {
    match find_body_open(tokens, i) {
        Some(open) => match_brace(tokens, open) + 1,
        None => i + 1,
    }
}

/// Index of the next `;` at any depth (use statements contain no nested
/// semicolons).
fn find_semi(tokens: &[Token], mut j: usize) -> usize {
    while j < tokens.len() {
        if matches!(tokens[j].tok, Tok::Punct(';')) {
            return j;
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Parses one `use` item starting just after the keyword, collecting
/// `x as y` renames (including inside `{…}` groups); returns the index
/// just past the terminating `;`.
fn parse_use(tokens: &[Token], mut j: usize, aliases: &mut Vec<UseAlias>) -> usize {
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct(';') => return j + 1,
            Tok::Ident(kw) if kw == "as" => {
                if let (Some(Tok::Ident(target)), Some(Tok::Ident(alias))) = (
                    tokens.get(j.wrapping_sub(1)).map(|t| &t.tok),
                    tokens.get(j + 1).map(|t| &t.tok),
                ) {
                    aliases.push(UseAlias {
                        alias: alias.clone(),
                        target: target.clone(),
                    });
                    j += 2;
                    continue;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src).tokens)
    }

    fn quals(p: &ParsedFile) -> Vec<String> {
        p.fns.iter().map(|f| f.qual()).collect()
    }

    #[test]
    fn free_and_impl_fns_get_quals() {
        let p = parse(
            "fn free() {}\n\
             impl Platform { pub fn pump(&mut self) -> usize { 0 } }\n\
             impl fmt::Display for Json { fn fmt(&self) {} }\n",
        );
        assert_eq!(quals(&p), ["free", "Platform::pump", "Json::fmt"]);
    }

    #[test]
    fn generic_impls_and_trait_impls_resolve_self_type() {
        let p = parse(
            "impl<T: Clone> Wheel<T> { fn schedule(&mut self) {} }\n\
             impl<T> Default for Wheel<T> { fn default() -> Self { loop {} } }\n",
        );
        assert_eq!(quals(&p), ["Wheel::schedule", "Wheel::default"]);
    }

    #[test]
    fn trait_default_methods_get_trait_context() {
        let p = parse(
            "pub trait Drive {\n\
                 fn round(&mut self) -> usize;\n\
                 fn drain(&mut self) -> usize { self.round() }\n\
             }\n",
        );
        assert_eq!(quals(&p), ["Drive::round", "Drive::drain"]);
        assert!(p.fns[0].body.is_none(), "signature only");
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn nested_mods_do_not_leak_contexts() {
        let p = parse(
            "mod outer {\n\
                 pub mod inner { pub fn helper() {} }\n\
                 impl Thing { fn m(&self) {} }\n\
             }\n\
             fn after() {}\n",
        );
        assert_eq!(quals(&p), ["helper", "Thing::m", "after"]);
    }

    #[test]
    fn use_renames_are_collected() {
        let p = parse(
            "use std::collections::BTreeMap as Map;\n\
             use swamp_fog::{FogSync as Engine, UpdateRecord};\n",
        );
        assert_eq!(
            p.aliases,
            [
                UseAlias {
                    alias: "Map".into(),
                    target: "BTreeMap".into()
                },
                UseAlias {
                    alias: "Engine".into(),
                    target: "FogSync".into()
                },
            ]
        );
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let p = parse(
            "macro_rules! make_fn {\n\
                 ($name:ident) => { fn $name() { format!(\"x\"); } };\n\
             }\n\
             fn real() {}\n",
        );
        assert_eq!(quals(&p), ["real"]);
    }

    #[test]
    fn body_token_ranges_cover_the_braces() {
        let src = "impl P { fn a(&self) { inner(); } fn b(&self) {} }";
        let lx = lex(src);
        let p = parse_items(&lx.tokens);
        let a = &p.fns[0];
        let body = a.body.clone().expect("has body");
        assert!(matches!(lx.tokens[body.start].tok, Tok::Punct('{')));
        assert!(matches!(lx.tokens[body.end - 1].tok, Tok::Punct('}')));
        let names: Vec<_> = lx.tokens[body.clone()]
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, ["inner"]);
    }

    #[test]
    fn nested_fns_are_their_own_items() {
        let p = parse("fn outer() { fn inner() {} inner(); }");
        assert_eq!(quals(&p), ["outer", "inner"]);
    }
}
