//! Workspace symbol table and conservative call graph.
//!
//! [`Workspace`] bundles every parsed source file; [`Graph`] indexes all
//! `fn` items by qualified name and resolves call sites **by name**, with
//! no type information:
//!
//! - `Type::method(…)` (and `Type::method` fn refs) resolve to the methods
//!   of every workspace `impl` block for a type named `Type` (`Self::…`
//!   uses the caller's impl context, `use … as …` renames are followed,
//!   and a lowercase qualifier falls back to free functions so module
//!   paths like `pool::pump_round(…)` resolve);
//! - `recv.method(…)` resolves to **every** workspace method of that name;
//! - `free(…)` resolves to every free function of that name.
//!
//! Unresolved names are external (std or dependency) calls — the graph
//! rules handle those with token-level ban lists inside each reachable
//! body, so nothing escapes by being out-of-workspace. The resolution is
//! an over-approximation: it may add edges that the type checker would
//! reject, never miss a real one (except through macros and dynamic
//! dispatch on external traits, documented in DESIGN.md §15). For deny
//! rules, extra edges only make the analyzer stricter.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::lexer::{is_punct, Tok, Token};
use crate::parser::{parse_items, FnItem, ParsedFile};
use crate::source::{SourceFile, TargetKind};

/// One source file plus its parsed item structure.
pub struct WorkspaceFile {
    pub source: SourceFile,
    pub items: ParsedFile,
}

/// Every parsed file of the workspace, in discovery order.
pub struct Workspace {
    pub files: Vec<WorkspaceFile>,
}

impl Workspace {
    pub fn from_sources(sources: Vec<SourceFile>) -> Workspace {
        Workspace {
            files: sources
                .into_iter()
                .map(|source| WorkspaceFile {
                    items: parse_items(&source.tokens),
                    source,
                })
                .collect(),
        }
    }
}

/// One `fn` item in the graph.
pub struct FnNode {
    /// Index into `Workspace::files`.
    pub file: usize,
    pub item: FnItem,
    /// `Type::name` or bare `name` (see [`FnItem::qual`]).
    pub qual: String,
    /// True when the `fn` keyword sits on a test line (`#[test]` fn or
    /// `#[cfg(test)]` module).
    pub is_test: bool,
}

/// One call site extracted from a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// `Some("Type")` for `Type::name(…)` paths and fn refs; `None` for
    /// method and free calls.
    pub qualifier: Option<String>,
    pub name: String,
    /// True for `recv.name(…)` shapes.
    pub is_method: bool,
    pub line: u32,
}

/// BFS result: reached node set with parent pointers for path
/// reconstruction, plus the cold symbols that actually cut an edge.
pub struct Reach {
    /// node index → parent node index (`None` for entry points), in BFS
    /// discovery order.
    pub parent: BTreeMap<usize, Option<usize>>,
    /// Cold symbols (allowlist `symbol =` scopes) encountered during the
    /// walk — the driver marks these entries as used.
    pub cold_cut: BTreeSet<String>,
}

pub struct Graph {
    pub nodes: Vec<FnNode>,
    calls: Vec<Vec<CallSite>>,
    by_qual: BTreeMap<String, Vec<usize>>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    /// `use X as Y` renames, workspace-wide: alias → target.
    aliases: BTreeMap<String, String>,
    /// Package index (into `packages`) of each workspace file.
    file_pkg: Vec<usize>,
    packages: Vec<String>,
    /// Per package (same index as `packages`): the set of package indices
    /// name resolution may land in, from the layering DAG's transitive
    /// closure. A package unknown to the DAG table (test fixtures)
    /// resolves only into itself.
    reachable_pkgs: Vec<BTreeSet<usize>>,
}

/// Identifiers that look like calls but are not (`return (x)`, `match (…)`).
const NOT_CALLS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "fn", "where", "impl",
];

impl Graph {
    pub fn build(ws: &Workspace) -> Graph {
        let mut g = Graph {
            nodes: Vec::new(),
            calls: Vec::new(),
            by_qual: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            aliases: BTreeMap::new(),
            file_pkg: Vec::new(),
            packages: Vec::new(),
            reachable_pkgs: Vec::new(),
        };
        for wf in &ws.files {
            let pkg = &wf.source.package;
            if !g.packages.iter().any(|p| p == pkg) {
                g.packages.push(pkg.clone());
            }
        }
        g.file_pkg = ws
            .files
            .iter()
            .map(|wf| {
                g.packages
                    .iter()
                    .position(|p| p == &wf.source.package)
                    .unwrap_or(0)
            })
            .collect();
        for (pi, pkg) in g.packages.iter().enumerate() {
            let closure = crate::rules::layering::dep_closure(pkg);
            let mut set: BTreeSet<usize> = g
                .packages
                .iter()
                .enumerate()
                .filter(|(_, other)| closure.contains(other.as_str()))
                .map(|(i, _)| i)
                .collect();
            set.insert(pi);
            g.reachable_pkgs.push(set);
        }
        for (fi, wf) in ws.files.iter().enumerate() {
            for a in &wf.items.aliases {
                g.aliases.insert(a.alias.clone(), a.target.clone());
            }
            for item in &wf.items.fns {
                let idx = g.nodes.len();
                let qual = item.qual();
                g.by_qual.entry(qual.clone()).or_default().push(idx);
                let name_map = if item.self_type.is_some() {
                    &mut g.methods_by_name
                } else {
                    &mut g.free_by_name
                };
                name_map.entry(item.name.clone()).or_default().push(idx);
                g.calls.push(match &item.body {
                    Some(body) => extract_calls(&wf.source, body.clone()),
                    None => Vec::new(),
                });
                g.nodes.push(FnNode {
                    file: fi,
                    qual,
                    is_test: wf.source.is_test_line(item.line),
                    item: item.clone(),
                });
            }
        }
        g
    }

    /// All nodes whose qualified name equals `qual`.
    pub fn by_qual(&self, qual: &str) -> &[usize] {
        self.by_qual.get(qual).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The call sites extracted from node `idx`'s body.
    pub fn calls_of(&self, idx: usize) -> &[CallSite] {
        &self.calls[idx]
    }

    /// Workspace nodes a call site may reach (see module docs for the
    /// resolution rules). `caller_self` is the calling fn's impl context,
    /// for `Self::…` paths; `caller_file` anchors the caller's package so
    /// candidates outside its layering-DAG dependency closure are
    /// rejected (a name collision cannot cross the architecture upward).
    pub fn resolve(
        &self,
        call: &CallSite,
        caller_self: Option<&str>,
        caller_file: usize,
    ) -> Vec<usize> {
        let candidates: Vec<usize> = match &call.qualifier {
            Some(q) => {
                let q = if q == "Self" {
                    match caller_self {
                        Some(t) => t,
                        None => return Vec::new(),
                    }
                } else {
                    q.as_str()
                };
                let q = self.aliases.get(q).map(String::as_str).unwrap_or(q);
                let hits = self.by_qual(&format!("{q}::{}", call.name));
                if !hits.is_empty() {
                    hits.to_vec()
                } else if q.starts_with(|c: char| c.is_lowercase()) {
                    // Module-qualified free fn: `pool::pump_round(…)`.
                    self.free_by_name
                        .get(&call.name)
                        .cloned()
                        .unwrap_or_default()
                } else {
                    Vec::new()
                }
            }
            None if call.is_method => self
                .methods_by_name
                .get(&call.name)
                .cloned()
                .unwrap_or_default(),
            None => self
                .free_by_name
                .get(&call.name)
                .cloned()
                .unwrap_or_default(),
        };
        let allowed = &self.reachable_pkgs[self.file_pkg[caller_file]];
        candidates
            .into_iter()
            .filter(|&c| allowed.contains(&self.file_pkg[self.nodes[c].file]))
            .collect()
    }

    /// BFS from `entries` over resolved edges, visiting only nodes that
    /// pass `node_ok`, and cutting (not descending into) nodes whose qual
    /// is in `cold` — those quals are recorded in [`Reach::cold_cut`].
    pub fn reach(
        &self,
        entries: &[usize],
        cold: &BTreeSet<String>,
        node_ok: &dyn Fn(&FnNode) -> bool,
    ) -> Reach {
        let mut reach = Reach {
            parent: BTreeMap::new(),
            cold_cut: BTreeSet::new(),
        };
        let mut queue: Vec<usize> = Vec::new();
        for &e in entries {
            if node_ok(&self.nodes[e]) && !reach.parent.contains_key(&e) {
                reach.parent.insert(e, None);
                queue.push(e);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            let caller_self = self.nodes[cur].item.self_type.clone();
            let caller_file = self.nodes[cur].file;
            for call in &self.calls[cur] {
                for next in self.resolve(call, caller_self.as_deref(), caller_file) {
                    let node = &self.nodes[next];
                    if reach.parent.contains_key(&next) || !node_ok(node) {
                        continue;
                    }
                    if cold.contains(&node.qual) {
                        reach.cold_cut.insert(node.qual.clone());
                        continue;
                    }
                    reach.parent.insert(next, Some(cur));
                    queue.push(next);
                }
            }
        }
        reach
    }

    /// Reconstructs the entry→…→`node` qual path from BFS parent pointers.
    pub fn path(&self, reach: &Reach, node: usize) -> Vec<String> {
        let mut rev = vec![self.nodes[node].qual.clone()];
        let mut cur = node;
        while let Some(Some(p)) = reach.parent.get(&cur) {
            rev.push(self.nodes[*p].qual.clone());
            cur = *p;
        }
        rev.reverse();
        rev
    }
}

/// Extracts call sites from a body token range, skipping test lines.
pub fn extract_calls(source: &SourceFile, body: Range<usize>) -> Vec<CallSite> {
    let tokens = &source.tokens;
    let mut out = Vec::new();
    for i in body {
        let Some(Tok::Ident(name)) = tokens.get(i).map(|t| &t.tok) else {
            continue;
        };
        if source.is_test_line(tokens[i].line) {
            continue;
        }
        let line = tokens[i].line;
        let qualified = i >= 2 && is_punct(tokens, i - 1, ':') && is_punct(tokens, i - 2, ':');
        let qualifier = if qualified {
            match tokens.get(i.wrapping_sub(3)).map(|t| &t.tok) {
                Some(Tok::Ident(q)) => Some(q.clone()),
                _ => None,
            }
        } else {
            None
        };
        if is_punct(tokens, i + 1, '(') {
            if qualified {
                out.push(CallSite {
                    qualifier,
                    name: name.clone(),
                    is_method: false,
                    line,
                });
            } else if is_punct(tokens, i.wrapping_sub(1), '.') {
                out.push(CallSite {
                    qualifier: None,
                    name: name.clone(),
                    is_method: true,
                    line,
                });
            } else if !NOT_CALLS.contains(&name.as_str()) && !is_prev_ident(tokens, i, "fn") {
                out.push(CallSite {
                    qualifier: None,
                    name: name.clone(),
                    is_method: false,
                    line,
                });
            }
        } else if qualified && qualifier.is_some() && !is_punct(tokens, i + 1, ':') {
            // Fn reference passed as a value: `.map(Self::decode)`.
            out.push(CallSite {
                qualifier,
                name: name.clone(),
                is_method: false,
                line,
            });
        }
    }
    out
}

fn is_prev_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    i >= 1 && matches!(&tokens[i - 1].tok, Tok::Ident(s) if s == name)
}

/// Convenience for tests and `analyze_str`: builds a workspace from
/// `(rel_path, package, kind, src)` tuples.
pub fn workspace_from(files: &[(&str, &str, TargetKind, &str)]) -> Workspace {
    Workspace::from_sources(
        files
            .iter()
            .map(|(rel, pkg, kind, src)| SourceFile::parse(rel, pkg, *kind, src))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> (Workspace, Graph) {
        let ws = workspace_from(&[("crates/x/src/lib.rs", "x", TargetKind::Lib, src)]);
        let g = Graph::build(&ws);
        (ws, g)
    }

    fn reach_quals(g: &Graph, entry_qual: &str) -> Vec<String> {
        let entries: Vec<usize> = g.by_qual(entry_qual).to_vec();
        let r = g.reach(&entries, &BTreeSet::new(), &|_| true);
        let mut quals: Vec<String> = r.parent.keys().map(|&i| g.nodes[i].qual.clone()).collect();
        quals.sort();
        quals
    }

    #[test]
    fn free_method_and_qualified_calls_resolve() {
        let (_, g) = ws("fn helper() {}\n\
             impl Platform {\n\
                 pub fn pump(&mut self) { helper(); self.step(); Other::go(); }\n\
                 fn step(&mut self) {}\n\
             }\n\
             impl Other { pub fn go() {} }\n");
        let got = reach_quals(&g, "Platform::pump");
        assert_eq!(
            got,
            ["Other::go", "Platform::pump", "Platform::step", "helper"]
        );
    }

    #[test]
    fn self_paths_and_aliases_resolve() {
        let (_, g) = ws("use crate::engine::FogSync as Engine;\n\
             impl FogSync {\n\
                 pub fn round(&mut self) { Self::tick(); }\n\
                 fn tick() {}\n\
             }\n\
             fn driver() { Engine::round_helper(); }\n\
             impl FogSync { fn round_helper() {} }\n");
        assert_eq!(
            reach_quals(&g, "FogSync::round"),
            ["FogSync::round", "FogSync::tick"]
        );
        assert_eq!(
            reach_quals(&g, "driver"),
            ["FogSync::round_helper", "driver"]
        );
    }

    #[test]
    fn module_qualified_free_fns_resolve() {
        let (_, g) = ws(
            "mod pool { pub fn pump_round() { spin(); } pub fn spin() {} }\n\
             impl Sharded { pub fn pump(&mut self) { pool::pump_round(); } }\n",
        );
        let got = reach_quals(&g, "Sharded::pump");
        assert_eq!(got, ["Sharded::pump", "pump_round", "spin"]);
    }

    #[test]
    fn fn_refs_count_as_edges() {
        let (_, g) = ws("impl Rec { fn decode(b: u8) -> Rec { loop {} } }\n\
             fn drain(bytes: &[u8]) { let _ = bytes.iter().map(|_| Rec::decode(0)); }\n\
             fn drain2(bytes: &[u8]) { let _ = bytes.first().map(Rec::decode2); }\n\
             impl Rec { fn decode2(b: &u8) -> Rec { loop {} } }\n");
        assert_eq!(reach_quals(&g, "drain"), ["Rec::decode", "drain"]);
        assert_eq!(reach_quals(&g, "drain2"), ["Rec::decode2", "drain2"]);
    }

    #[test]
    fn cold_symbols_cut_and_are_recorded() {
        let (_, g) = ws(
            "impl P { pub fn pump(&mut self) { self.cold_setup(); self.hot(); } \n\
                      fn cold_setup(&mut self) { self.deep(); } \n\
                      fn hot(&mut self) {} \n\
                      fn deep(&mut self) {} }\n",
        );
        let cold: BTreeSet<String> = ["P::cold_setup".to_owned()].into();
        let entries = g.by_qual("P::pump").to_vec();
        let r = g.reach(&entries, &cold, &|_| true);
        let got: Vec<_> = r.parent.keys().map(|&i| g.nodes[i].qual.clone()).collect();
        assert_eq!(got, ["P::pump", "P::hot"]);
        assert!(r.cold_cut.contains("P::cold_setup"));
    }

    #[test]
    fn every_reached_node_has_a_reconstructable_path() {
        let (_, g) = ws("impl P { pub fn pump(&mut self) { a(); } }\n\
             fn a() { b(); c(); }\n\
             fn b() { c(); }\n\
             fn c() {}\n");
        let entries = g.by_qual("P::pump").to_vec();
        let r = g.reach(&entries, &BTreeSet::new(), &|_| true);
        for &node in r.parent.keys() {
            let path = g.path(&r, node);
            assert_eq!(path.first().map(String::as_str), Some("P::pump"));
            assert_eq!(path.last(), Some(&g.nodes[node].qual));
        }
    }

    #[test]
    fn test_fns_are_marked() {
        let (_, g) = ws("fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { super::prod(); }\n\
             }\n");
        let t = g.by_qual("t")[0];
        assert!(g.nodes[t].is_test);
        let p = g.by_qual("prod")[0];
        assert!(!g.nodes[p].is_test);
    }
}
