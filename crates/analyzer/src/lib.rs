//! # swamp-analyzer — offline workspace invariant checker
//!
//! The reproduction's security claims (tamper/replay/Sybil refutation) rest
//! on two properties the compiler does not enforce: every experiment is
//! bit-for-bit deterministic, and every platform path is non-panicking with
//! honest `Result` handling. This crate checks those properties — plus the
//! crate-layering DAG and the deprecated-API contract from PR 2 — as named
//! lint rules over the workspace sources, with a committed allowlist
//! (`analyzer.allow.toml`) for documented exceptions and a JSON report for
//! tooling. `ci.sh` runs it with `--deny-all`; a violation fails CI.
//!
//! Rules: `determinism`, `panic-freedom`, `error-discard`, `layering`,
//! `deprecated-api`, plus the graph-aware `hot-path-alloc`,
//! `cast-safety`, `concurrency-discipline` and `obs-name-drift` — see
//! each module under [`rules`] for exact semantics, DESIGN.md §10 for the
//! PR-3 rationale and §15 for the item-graph layer. The analyzer is
//! dependency-free and lexes Rust itself ([`lexer`]); the PR-8 semantic
//! pass parses item structure ([`parser`]) and builds a conservative
//! workspace call graph ([`graph`]) — still with no type information,
//! because name-level over-approximation is sound for deny rules.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod allowlist;
pub mod graph;
pub mod lexer;
pub mod manifest;
pub mod parser;
pub mod report;
pub mod rules;
pub mod source;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

use allowlist::AllowEntry;
use graph::{Graph, Workspace};
use manifest::Manifest;
use rules::Finding;
use source::{SourceFile, TargetKind};

/// Analyzer configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root (the directory holding the top-level `Cargo.toml`).
    pub root: PathBuf,
    /// Allowlist path; defaults to `<root>/analyzer.allow.toml`. A missing
    /// file means an empty allowlist.
    pub allowlist: Option<PathBuf>,
    /// If non-empty, only run rules with these names.
    pub only_rules: Vec<String>,
}

impl Config {
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            allowlist: None,
            only_rules: Vec::new(),
        }
    }
}

/// A finding suppressed by an allowlist entry (kept for the report).
#[derive(Clone, Debug)]
pub struct AllowedFinding {
    pub finding: Finding,
    pub allow_path: String,
    pub justification: String,
}

/// Full analysis result.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Violations after allowlist filtering, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Violations matched by an allowlist entry.
    pub allowed: Vec<AllowedFinding>,
    pub files_scanned: usize,
    pub manifests_checked: usize,
}

/// Analyzer-level failures (I/O, malformed workspace).
#[derive(Debug)]
pub enum AnalyzerError {
    Io {
        path: PathBuf,
        error: std::io::Error,
    },
    NotAWorkspace(PathBuf),
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Io { path, error } => {
                write!(f, "io error at {}: {error}", path.display())
            }
            AnalyzerError::NotAWorkspace(p) => {
                write!(f, "{} does not contain a Cargo.toml", p.display())
            }
        }
    }
}

impl std::error::Error for AnalyzerError {}

/// One package discovered in the workspace.
struct Package {
    manifest: Manifest,
    manifest_rel: String,
    /// (absolute path, workspace-relative path, target kind)
    sources: Vec<(PathBuf, String, TargetKind)>,
}

/// Runs the full analysis over the workspace at `config.root`.
pub fn run(config: &Config) -> Result<Analysis, AnalyzerError> {
    let root = &config.root;
    if !root.join("Cargo.toml").is_file() {
        return Err(AnalyzerError::NotAWorkspace(root.clone()));
    }
    let packages = discover_packages(root)?;
    let member_names: Vec<String> = packages
        .iter()
        .filter(|p| !p.manifest.name.is_empty())
        .map(|p| p.manifest.name.clone())
        .collect();

    // Allowlist first: `symbol =` scopes for hot-path-alloc double as the
    // cold-path cut set, so the graph rules need them before running.
    let allow_path = config
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("analyzer.allow.toml"));
    let (entries, allow_errors) = if allow_path.is_file() {
        allowlist::parse(&read(&allow_path)?, rules::RULE_NAMES)
    } else {
        (Vec::new(), Vec::new())
    };
    let allow_rel = rel_of(root, &allow_path);
    let cold: BTreeSet<String> = entries
        .iter()
        .filter(|e| e.rule == rules::hot_path_alloc::NAME && !e.symbol.is_empty())
        .map(|e| e.symbol.clone())
        .collect();

    let mut raw: Vec<Finding> = Vec::new();

    // Manifest rules.
    rules::layering::check_table(&mut raw);
    let mut manifests_checked = 0;
    for pkg in &packages {
        if pkg.manifest.name.is_empty() {
            continue;
        }
        manifests_checked += 1;
        rules::layering::check(&pkg.manifest, &pkg.manifest_rel, &member_names, &mut raw);
    }

    // Source rules (per file), then the workspace graph rules.
    let mut sources = Vec::new();
    for pkg in &packages {
        for (abs, rel, kind) in &pkg.sources {
            let text = read(abs)?;
            sources.push(SourceFile::parse(rel, &pkg.manifest.name, *kind, &text));
        }
    }
    let ws = Workspace::from_sources(sources);
    let files_scanned = ws.files.len();
    for wf in &ws.files {
        rules::check_source(&wf.source, &mut raw);
    }
    let graph = Graph::build(&ws);
    let used_cold = rules::check_workspace(&ws, &graph, &cold, &mut raw);

    if !config.only_rules.is_empty() {
        raw.retain(|f| config.only_rules.iter().any(|r| r == f.rule));
    }

    for e in &allow_errors {
        raw.push(Finding {
            rule: "allowlist-error",
            path: allow_rel.clone(),
            line: e.line,
            message: e.message.clone(),
            snippet: String::new(),
            symbol: String::new(),
        });
    }

    let mut analysis = Analysis {
        files_scanned,
        manifests_checked,
        ..Analysis::default()
    };
    let mut used = vec![false; entries.len()];
    for f in raw {
        match entries
            .iter()
            .enumerate()
            .find(|(_, e)| e.matches(f.rule, &f.path, &f.snippet, &f.symbol))
        {
            Some((idx, e)) => {
                used[idx] = true;
                analysis.allowed.push(AllowedFinding {
                    finding: f,
                    allow_path: e.path.clone(),
                    justification: e.justification.clone(),
                });
            }
            None => analysis.findings.push(f),
        }
    }
    // Stale entries are findings too: exceptions must not outlive their
    // violations. A cold `symbol =` scope counts as used when it cut an
    // edge out of the hot-path walk.
    for (idx, e) in entries.iter().enumerate() {
        let used_as_cold_cut = !e.symbol.is_empty() && used_cold.contains(&e.symbol);
        if !used[idx] && !used_as_cold_cut {
            analysis.findings.push(Finding {
                rule: "allowlist-unused",
                path: allow_rel.clone(),
                line: e.defined_at,
                message: format!(
                    "stale allowlist entry (rule `{}`, path `{}`, symbol `{}`): \
                     nothing matches it; remove it",
                    e.rule, e.path, e.symbol
                ),
                snippet: String::new(),
                symbol: String::new(),
            });
        }
    }

    analysis
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(analysis)
}

/// Convenience for rule fixtures: analyze one source string as if it were a
/// file at `rel_path` in package `package` with the given target kind.
/// Runs both the per-file rules and the graph rules (as a one-file
/// workspace with an empty cold set).
pub fn analyze_str(rel_path: &str, package: &str, kind: TargetKind, src: &str) -> Vec<Finding> {
    analyze_files(&[(rel_path, package, kind, src)])
}

/// Multi-file variant of [`analyze_str`] for cross-file graph fixtures.
pub fn analyze_files(files: &[(&str, &str, TargetKind, &str)]) -> Vec<Finding> {
    analyze_files_with_cold(files, &BTreeSet::new()).0
}

/// Like [`analyze_files`], with a hot-path cold-symbol cut set; returns
/// the findings plus the cold symbols that actually cut an edge.
pub fn analyze_files_with_cold(
    files: &[(&str, &str, TargetKind, &str)],
    cold: &BTreeSet<String>,
) -> (Vec<Finding>, BTreeSet<String>) {
    let ws = graph::workspace_from(files);
    let g = Graph::build(&ws);
    let mut out = Vec::new();
    for wf in &ws.files {
        rules::check_source(&wf.source, &mut out);
    }
    let used_cold = rules::check_workspace(&ws, &g, cold, &mut out);
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    (out, used_cold)
}

/// Applies allowlist entries to findings (fixture-test helper mirroring the
/// driver's matching logic). Returns (kept, allowed).
pub fn apply_allowlist(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<AllowedFinding>) {
    let mut kept = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        match entries
            .iter()
            .find(|e| e.matches(f.rule, &f.path, &f.snippet, &f.symbol))
        {
            Some(e) => allowed.push(AllowedFinding {
                finding: f,
                allow_path: e.path.clone(),
                justification: e.justification.clone(),
            }),
            None => kept.push(f),
        }
    }
    (kept, allowed)
}

fn read(path: &Path) -> Result<String, AnalyzerError> {
    std::fs::read_to_string(path).map_err(|error| AnalyzerError::Io {
        path: path.to_owned(),
        error,
    })
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Finds workspace packages: the root package (if the root manifest has a
/// `[package]` section) plus every `crates/*` directory with a Cargo.toml.
fn discover_packages(root: &Path) -> Result<Vec<Package>, AnalyzerError> {
    let mut packages = Vec::new();
    let mut package_dirs = vec![root.to_owned()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut subdirs: Vec<PathBuf> = list_dir(&crates_dir)?
            .into_iter()
            .filter(|p| p.join("Cargo.toml").is_file())
            .collect();
        subdirs.sort();
        package_dirs.extend(subdirs);
    }
    for dir in package_dirs {
        let manifest_path = dir.join("Cargo.toml");
        if !manifest_path.is_file() {
            continue;
        }
        let manifest = manifest::parse(&read(&manifest_path)?);
        if manifest.name.is_empty() && dir != root {
            continue;
        }
        let mut sources = Vec::new();
        if !manifest.name.is_empty() {
            collect_sources(root, &dir, &mut sources)?;
        }
        packages.push(Package {
            manifest_rel: rel_of(root, &manifest_path),
            manifest,
            sources,
        });
    }
    Ok(packages)
}

/// Collects `.rs` files of one package, classifying them by target kind.
fn collect_sources(
    root: &Path,
    pkg_dir: &Path,
    out: &mut Vec<(PathBuf, String, TargetKind)>,
) -> Result<(), AnalyzerError> {
    let kinds: &[(&str, TargetKind)] = &[
        ("src", TargetKind::Lib),
        ("tests", TargetKind::Test),
        ("benches", TargetKind::Bench),
        ("examples", TargetKind::Example),
    ];
    for (sub, kind) in kinds {
        let dir = pkg_dir.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&dir, &mut files)?;
        files.sort();
        for f in files {
            let rel = rel_of(root, &f);
            // `src/bin/**` is a bin target, not part of the library.
            let kind = if *kind == TargetKind::Lib && rel.contains("/src/bin/") {
                TargetKind::Bin
            } else {
                *kind
            };
            out.push((f, rel, kind));
        }
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), AnalyzerError> {
    for entry in list_dir(dir)? {
        if entry.is_dir() {
            // Never descend into nested packages or build output.
            if entry.join("Cargo.toml").is_file() || entry.ends_with("target") {
                continue;
            }
            walk_rs(&entry, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            out.push(entry);
        }
    }
    Ok(())
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, AnalyzerError> {
    let rd = std::fs::read_dir(dir).map_err(|error| AnalyzerError::Io {
        path: dir.to_owned(),
        error,
    })?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|error| AnalyzerError::Io {
            path: dir.to_owned(),
            error,
        })?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}
