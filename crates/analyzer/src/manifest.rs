//! A minimal `Cargo.toml` reader: package name plus dependency names.
//!
//! This is not a TOML parser — it reads exactly the manifest idioms this
//! workspace uses (`[package] name = "…"`, `[dependencies]` entries in the
//! `name.workspace = true`, `name = "ver"` and `name = { … }` forms) and
//! ignores everything else. The layering rule only needs the dependency
//! *names*; versions, features and paths are irrelevant.

/// Parsed manifest facts.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    /// `[package] name`, empty for a virtual manifest.
    pub name: String,
    /// Dependency names from `[dependencies]`.
    pub deps: Vec<String>,
    /// Dependency names from `[dev-dependencies]` and `[build-dependencies]`.
    pub dev_deps: Vec<String>,
}

/// Parses manifest text. Infallible: unknown constructs are skipped.
pub fn parse(text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut m = Manifest::default();
    for raw in text.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" | "[build-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key_full = line[..eq].trim();
        // `swamp-sim.workspace = true` → dependency name `swamp-sim`;
        // quoted keys (`"weird.name".workspace`) keep their dots.
        let key = if let Some(stripped) = key_full.strip_prefix('"') {
            stripped.split('"').next().unwrap_or(key_full)
        } else {
            key_full.split('.').next().unwrap_or(key_full)
        };
        match section {
            Section::Package if key == "name" => {
                let val = line[eq + 1..].trim();
                m.name = val.trim_matches('"').to_owned();
            }
            Section::Deps => m.deps.push(key.to_owned()),
            Section::DevDeps => m.dev_deps.push(key.to_owned()),
            _ => {}
        }
    }
    m.deps.sort();
    m.deps.dedup();
    m.dev_deps.sort();
    m.dev_deps.dedup();
    m
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_workspace_style_manifest() {
        let m = parse(
            r#"
[package]
name = "swamp-core" # the core
version.workspace = true

[dependencies]
swamp-sim.workspace = true
swamp-net = { path = "../net" }
serde = "1"

[dev-dependencies]
criterion.workspace = true

[features]
proptest-tests = []
"#,
        );
        assert_eq!(m.name, "swamp-core");
        assert_eq!(m.deps, vec!["serde", "swamp-net", "swamp-sim"]);
        assert_eq!(m.dev_deps, vec!["criterion"]);
    }

    #[test]
    fn virtual_manifest_has_no_name() {
        let m = parse("[workspace]\nmembers = [\"crates/*\"]\n");
        assert_eq!(m.name, "");
        assert!(m.deps.is_empty());
    }

    #[test]
    fn comments_and_strings_do_not_confuse() {
        let m = parse("[package]\nname = \"x#y\" # real comment\n");
        assert_eq!(m.name, "x#y");
    }
}
