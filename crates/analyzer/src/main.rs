//! CLI for the SWAMP workspace invariant checker.
//!
//! ```text
//! swamp-analyzer [--root DIR] [--deny-all] [--json PATH|-] [--sarif PATH|-]
//!                [--rule NAME]… [--allowlist PATH] [--list-rules] [--verbose]
//! ```
//!
//! Exit codes: 0 clean (or advisory mode), 2 findings under `--deny-all`,
//! 3 analyzer error. CI runs `cargo run -p swamp-analyzer -- --deny-all`.

use std::path::PathBuf;
use std::process::ExitCode;

use swamp_analyzer::{report, rules, Config};

struct Args {
    config: Config,
    deny_all: bool,
    json: Option<String>,
    sarif: Option<String>,
    list_rules: bool,
    verbose: bool,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("swamp-analyzer: {msg}");
            eprintln!(
                "usage: swamp-analyzer [--root DIR] [--deny-all] [--json PATH|-] \
                 [--sarif PATH|-] [--rule NAME]... [--allowlist PATH] \
                 [--list-rules] [--verbose]"
            );
            return ExitCode::from(3);
        }
    };
    if args.list_rules {
        for r in rules::RULE_NAMES {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }
    let analysis = match swamp_analyzer::run(&args.config) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("swamp-analyzer: {e}");
            return ExitCode::from(3);
        }
    };
    type Render = fn(&swamp_analyzer::Analysis) -> String;
    let outputs: [(&Option<String>, Render); 2] = [
        (&args.json, report::to_json),
        (&args.sarif, report::to_sarif),
    ];
    for (target, render) in outputs {
        let Some(target) = target else { continue };
        let doc = render(&analysis);
        if target == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(target, &doc) {
            eprintln!("swamp-analyzer: cannot write {target}: {e}");
            return ExitCode::from(3);
        }
    }
    eprint!("{}", report::to_text(&analysis, args.verbose));
    if args.deny_all && !analysis.findings.is_empty() {
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: Config::new(default_root()),
        deny_all: false,
        json: None,
        sarif: None,
        list_rules: false,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny-all" => args.deny_all = true,
            "--list-rules" => args.list_rules = true,
            "--verbose" | "-v" => args.verbose = true,
            "--root" => args.config.root = PathBuf::from(want(&mut it, "--root")?),
            "--json" => args.json = Some(want(&mut it, "--json")?),
            "--sarif" => args.sarif = Some(want(&mut it, "--sarif")?),
            "--allowlist" => {
                args.config.allowlist = Some(PathBuf::from(want(&mut it, "--allowlist")?));
            }
            "--rule" => {
                let name = want(&mut it, "--rule")?;
                if !rules::RULE_NAMES.contains(&name.as_str()) {
                    return Err(format!("unknown rule `{name}` (try --list-rules)"));
                }
                args.config.only_rules.push(name);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn want(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

/// Default workspace root: the current directory if it holds a Cargo.toml
/// (the `ci.sh` case), else `CARGO_MANIFEST_DIR/../..` (running from
/// somewhere else via `cargo run -p swamp-analyzer`).
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("Cargo.toml").is_file() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
}
