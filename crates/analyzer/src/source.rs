//! Source-file model: token stream plus the structural facts rules need —
//! which lines are test-only code, which function bodies are covered by a
//! rustdoc `# Panics` section, and which Cargo target a file belongs to.

use crate::lexer::{self, DocLine, Lexed, Tok, Token};

/// Which Cargo target a source file belongs to. Rules scope themselves by
/// target kind: panic-freedom and error-discard apply to library code only,
/// determinism also covers binaries, deprecated-API covers everything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` excluding `src/bin/**`.
    Lib,
    /// `src/bin/**` or a `[[bin]]`-declared path.
    Bin,
    /// `tests/**` integration tests.
    Test,
    /// `benches/**`.
    Bench,
    /// `examples/**`.
    Example,
}

/// An inclusive 1-based line range.
#[derive(Clone, Copy, Debug)]
pub struct LineSpan {
    pub start: u32,
    pub end: u32,
}

impl LineSpan {
    pub fn contains(&self, line: u32) -> bool {
        self.start <= line && line <= self.end
    }
}

/// A `fn` item body span and whether its doc comment has a `# Panics`
/// section (the documented-panic escape hatch for `expect`).
#[derive(Clone, Copy, Debug)]
pub struct FnSpan {
    pub span: LineSpan,
    pub panics_documented: bool,
}

/// A lexed source file with the structural maps rules consume.
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Package (crate) the file belongs to.
    pub package: String,
    pub kind: TargetKind,
    pub tokens: Vec<Token>,
    /// Raw source lines, for finding snippets and allowlist `contains`.
    pub lines: Vec<String>,
    /// Line ranges of items behind `#[cfg(test)]` / `#[test]` /
    /// `#[should_panic]` attributes.
    test_spans: Vec<LineSpan>,
    /// Every `fn` body, with its `# Panics` doc status.
    fn_spans: Vec<FnSpan>,
    /// The file declares its own `fn expect(` — method calls through `self`
    /// are then the parser's combinator, not `Option::expect`.
    pub defines_expect_method: bool,
}

impl SourceFile {
    pub fn parse(rel_path: &str, package: &str, kind: TargetKind, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let test_spans = find_test_spans(&lexed.tokens);
        let fn_spans = find_fn_spans(&lexed);
        let defines_expect_method = lexed.tokens.windows(2).any(|w| {
            matches!((&w[0].tok, &w[1].tok),
                (Tok::Ident(a), Tok::Ident(b)) if a == "fn" && b == "expect")
        });
        SourceFile {
            rel_path: rel_path.to_owned(),
            package: package.to_owned(),
            kind,
            tokens: lexed.tokens,
            lines: src.lines().map(str::to_owned).collect(),
            test_spans,
            fn_spans,
            defines_expect_method,
        }
    }

    /// Is this line inside test-only code? Integration tests, benches and
    /// examples are test-like as a whole.
    pub fn is_test_line(&self, line: u32) -> bool {
        !matches!(self.kind, TargetKind::Lib | TargetKind::Bin)
            || self.test_spans.iter().any(|s| s.contains(line))
    }

    /// Is this line inside a `fn` whose rustdoc has a `# Panics` section?
    pub fn in_panics_documented_fn(&self, line: u32) -> bool {
        self.fn_spans
            .iter()
            .any(|f| f.panics_documented && f.span.contains(line))
    }

    /// The trimmed source text of a 1-based line (empty if out of range).
    pub fn snippet(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim())
            .unwrap_or("")
    }
}

/// Finds items guarded by a test-only attribute and returns their line
/// spans. An attribute guards the next item; the item's extent is found by
/// brace matching (or the terminating `;` for braceless items).
fn find_test_spans(tokens: &[Token]) -> Vec<LineSpan> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if lexer::is_punct(tokens, i, '#') && lexer::is_punct(tokens, i + 1, '[') {
            let (attr_idents, after) = read_attr(tokens, i + 2);
            if attr_is_test_only(&attr_idents) {
                // Skip any further attributes between this one and the item.
                let mut j = after;
                while lexer::is_punct(tokens, j, '#') && lexer::is_punct(tokens, j + 1, '[') {
                    let (_, next) = read_attr(tokens, j + 2);
                    j = next;
                }
                let start = tokens.get(i).map(|t| t.line).unwrap_or(1);
                let end = item_end(tokens, j);
                spans.push(LineSpan { start, end });
                i = after;
                continue;
            }
            i = after;
            continue;
        }
        i += 1;
    }
    spans
}

/// A flattened attribute element: identifiers plus grouping parens, enough
/// structure to understand `not(…)` scoping inside `cfg`.
#[derive(Clone, Debug, PartialEq, Eq)]
enum AttrAtom {
    Ident(String),
    Open,
    Close,
}

/// Reads an attribute starting just inside `#[`, returning its flattened
/// atoms and the index just past the closing `]`.
fn read_attr(tokens: &[Token], mut i: usize) -> (Vec<AttrAtom>, usize) {
    let mut depth = 1u32; // the `[` we are inside
    let mut atoms = Vec::new();
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (atoms, i + 1);
                }
            }
            Tok::Punct('(') => atoms.push(AttrAtom::Open),
            Tok::Punct(')') => atoms.push(AttrAtom::Close),
            Tok::Ident(s) => atoms.push(AttrAtom::Ident(s.clone())),
            _ => {}
        }
        i += 1;
    }
    (atoms, i)
}

/// Does this attribute make the next item test-only?
///
/// - `#[test]`, `#[should_panic]`, `#[bench]` → yes.
/// - `#[cfg(…)]` → yes iff `test` appears outside any `not(…)` group, so
///   `#[cfg(test)]` and `#[cfg(all(test, unix))]` count while
///   `#[cfg(not(test))]` does not.
/// - `#[cfg_attr(…)]` → never: the item itself is always compiled.
fn attr_is_test_only(atoms: &[AttrAtom]) -> bool {
    match atoms.first() {
        Some(AttrAtom::Ident(first))
            if first == "test" || first == "should_panic" || first == "bench" =>
        {
            true
        }
        Some(AttrAtom::Ident(first)) if first == "cfg" => {
            let mut not_depth = 0u32; // paren depth inside a not(…) group
            let mut i = 1;
            while i < atoms.len() {
                match &atoms[i] {
                    AttrAtom::Ident(s)
                        if s == "not" && atoms.get(i + 1) == Some(&AttrAtom::Open) =>
                    {
                        not_depth += 1;
                        i += 2;
                        continue;
                    }
                    AttrAtom::Open if not_depth > 0 => not_depth += 1,
                    AttrAtom::Close if not_depth > 0 => not_depth -= 1,
                    AttrAtom::Ident(s) if s == "test" && not_depth == 0 => return true,
                    _ => {}
                }
                i += 1;
            }
            false
        }
        _ => false,
    }
}

/// The last line of the item starting at token `i`: the matching `}` of the
/// first top-level brace, or the first top-level `;` if one comes first
/// (trait method declarations, `use` items, macro invocation statements).
fn item_end(tokens: &[Token], i: usize) -> u32 {
    let mut depth = 0i32;
    let mut j = i;
    let mut entered = false;
    while j < tokens.len() {
        match tokens[j].tok {
            Tok::Punct('{') => {
                depth += 1;
                entered = true;
            }
            Tok::Punct('}') => {
                depth -= 1;
                if entered && depth <= 0 {
                    return tokens[j].line;
                }
            }
            Tok::Punct(';') if !entered && depth == 0 => return tokens[j].line,
            _ => {}
        }
        j += 1;
    }
    tokens.last().map(|t| t.line).unwrap_or(1)
}

/// Finds every `fn` body span and marks those whose attached doc block has
/// a `# Panics` section. The doc block for a fn at line L is the contiguous
/// run of doc-comment lines directly above L, allowing attribute-only and
/// blank lines in between (`/// docs`, `#[inline]`, `fn f()`).
fn find_fn_spans(lexed: &Lexed) -> Vec<FnSpan> {
    let tokens = &lexed.tokens;
    // Lines occupied by attributes: tokens inside `#[…]` runs.
    let mut attr_lines = std::collections::BTreeSet::new();
    let mut code_lines = std::collections::BTreeSet::new();
    {
        let mut i = 0;
        while i < tokens.len() {
            if lexer::is_punct(tokens, i, '#') && lexer::is_punct(tokens, i + 1, '[') {
                let from = tokens[i].line;
                let (_, after) = read_attr(tokens, i + 2);
                let to = tokens
                    .get(after.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(from);
                for l in from..=to {
                    attr_lines.insert(l);
                }
                i = after;
            } else {
                code_lines.insert(tokens[i].line);
                i += 1;
            }
        }
    }

    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if lexer::is_ident(tokens, i, "fn") {
            let fn_line = tokens[i].line;
            let panics_documented =
                doc_block_has_panics(&lexed.docs, &attr_lines, &code_lines, fn_line);
            // Body: first `{` at paren/bracket depth 0; a `;` first means a
            // bodiless declaration.
            let mut j = i + 1;
            let mut paren = 0i32;
            let mut body_start = None;
            while j < tokens.len() {
                match tokens[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') => paren += 1,
                    Tok::Punct(')') | Tok::Punct(']') => paren -= 1,
                    Tok::Punct(';') if paren == 0 => break,
                    Tok::Punct('{') if paren == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(open) = body_start {
                let end = item_end(tokens, open);
                spans.push(FnSpan {
                    span: LineSpan {
                        start: fn_line,
                        end,
                    },
                    panics_documented,
                });
            }
        }
        i += 1;
    }
    spans
}

/// Does the doc block attached to an item at `item_line` contain
/// `# Panics`? Walk upward from the line above the item, skipping attribute
/// lines and blank (token-free, doc-free) lines, then consume the
/// contiguous doc block.
fn doc_block_has_panics(
    docs: &[DocLine],
    attr_lines: &std::collections::BTreeSet<u32>,
    code_lines: &std::collections::BTreeSet<u32>,
    item_line: u32,
) -> bool {
    let doc_lines: std::collections::BTreeMap<u32, &str> =
        docs.iter().map(|d| (d.line, d.text.as_str())).collect();
    let mut l = item_line.saturating_sub(1);
    // Skip attribute lines directly above the item.
    while l >= 1 && attr_lines.contains(&l) && !doc_lines.contains_key(&l) {
        l -= 1;
    }
    // Consume the doc block.
    let mut found = false;
    while l >= 1 {
        if let Some(text) = doc_lines.get(&l) {
            if text.contains("# Panics") {
                found = true;
            }
            l -= 1;
        } else if attr_lines.contains(&l) && !code_lines.contains(&l) {
            // `#[cfg_attr(…)]` interleaved inside the doc block.
            l -= 1;
        } else {
            break;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> SourceFile {
        SourceFile::parse("x/src/lib.rs", "x", TargetKind::Lib, src)
    }

    #[test]
    fn cfg_test_module_lines_are_test_lines() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    fn helper() { value.unwrap(); }
}
fn after() {}
";
        let f = lib(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_attr_guards_single_fn() {
        let src = "\
#[test]
fn t() {
    boom();
}
fn real() {}
";
        let f = lib(src);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
    }

    #[test]
    fn panics_doc_covers_fn_body() {
        let src = "\
/// Creates a thing.
///
/// # Panics
/// Panics on bad input.
#[inline]
pub fn new(x: u32) -> u32 {
    x.checked_add(1).expect(\"bad input\")
}
pub fn other() -> u32 {
    1
}
";
        let f = lib(src);
        assert!(f.in_panics_documented_fn(7));
        assert!(!f.in_panics_documented_fn(10));
    }

    #[test]
    fn cfg_not_test_and_cfg_attr_are_not_test_only() {
        let src = "\
#[cfg(not(test))]
fn prod_only() { x.unwrap(); }
#[cfg_attr(not(test), deny(clippy::unwrap_used))]
fn always() { y.unwrap(); }
#[cfg(all(test, unix))]
fn test_only() {}
";
        let f = lib(src);
        assert!(!f.is_test_line(2));
        assert!(!f.is_test_line(4));
        assert!(f.is_test_line(6));
    }

    #[test]
    fn integration_tests_are_entirely_test_code() {
        let f = SourceFile::parse("x/tests/t.rs", "x", TargetKind::Test, "fn a() {}");
        assert!(f.is_test_line(1));
    }

    #[test]
    fn expect_method_definition_detected() {
        let f = lib("impl P { fn expect(&mut self, b: u8) -> R { r() } }");
        assert!(f.defines_expect_method);
        assert!(!lib("fn other() {}").defines_expect_method);
    }
}
