//! The committed exception file: `analyzer.allow.toml`.
//!
//! Every entry must carry a written justification; entries that stop
//! matching anything are themselves reported (stale exceptions rot the
//! guarantee). Format — an array of tables, strings only:
//!
//! ```toml
//! [[allow]]
//! rule = "determinism"
//! path = "crates/pilots/src/bin/bench_e11.rs"   # file or directory prefix
//! contains = "Instant"                           # optional line substring
//! justification = "wall-clock bench harness; output never reaches EXPERIMENTS.md"
//!
//! [[allow]]
//! rule = "hot-path-alloc"
//! symbol = "Platform::rebuild_routes"            # qualified fn name scope
//! justification = "cold reconfiguration path, runs outside the pump loop"
//! ```
//!
//! `symbol =` entries scope to the qualified name of the containing
//! function (`Type::name` or bare `name`). For `hot-path-alloc` they
//! additionally *cut* the named function out of the hot-path walk (a
//! cold/setup path); a symbol scope that no longer cuts anything or
//! matches any finding fails as `allowlist-unused`, same as a stale path
//! entry.

/// One exception entry.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    /// Workspace-relative path prefix (`/`-separated). A directory prefix
    /// covers every file under it.
    pub path: String,
    /// Optional substring the offending source line must contain; empty
    /// matches any line in `path`.
    pub contains: String,
    /// Optional qualified-fn-name scope (`Type::name` or `name`); empty
    /// matches findings with any (or no) symbol. An entry may carry
    /// `symbol` without `path`.
    pub symbol: String,
    pub justification: String,
    /// Line in `analyzer.allow.toml` where the entry starts (diagnostics).
    pub defined_at: u32,
}

/// Problems found while reading the allowlist itself.
#[derive(Clone, Debug)]
pub struct AllowlistError {
    pub line: u32,
    pub message: String,
}

/// Parses allowlist text. Returns entries plus any format errors; errors
/// are reported as findings so a malformed allowlist cannot silently allow
/// everything (or nothing).
pub fn parse(text: &str, known_rules: &[&str]) -> (Vec<AllowEntry>, Vec<AllowlistError>) {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut errors = Vec::new();
    let mut current: Option<AllowEntry> = None;

    let mut close = |cur: &mut Option<AllowEntry>, errors: &mut Vec<AllowlistError>| {
        if let Some(e) = cur.take() {
            if e.rule.is_empty() || (e.path.is_empty() && e.symbol.is_empty()) {
                errors.push(AllowlistError {
                    line: e.defined_at,
                    message: "allow entry needs `rule` plus `path` and/or `symbol`".to_owned(),
                });
            } else if e.justification.trim().len() < 10 {
                errors.push(AllowlistError {
                    line: e.defined_at,
                    message: format!(
                        "allow entry for rule `{}` needs a written `justification` (≥ 10 chars)",
                        e.rule
                    ),
                });
            } else if !known_rules.contains(&e.rule.as_str()) {
                errors.push(AllowlistError {
                    line: e.defined_at,
                    message: format!("unknown rule `{}` in allow entry", e.rule),
                });
            } else {
                entries.push(e);
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            close(&mut current, &mut errors);
            current = Some(AllowEntry {
                rule: String::new(),
                path: String::new(),
                contains: String::new(),
                symbol: String::new(),
                justification: String::new(),
                defined_at: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            close(&mut current, &mut errors);
            errors.push(AllowlistError {
                line: lineno,
                message: format!(
                    "unexpected section `{line}` (only [[allow]] tables are supported)"
                ),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            errors.push(AllowlistError {
                line: lineno,
                message: format!("unparseable line: `{line}`"),
            });
            continue;
        };
        let key = line[..eq].trim().to_owned();
        let Some(value) = parse_string(line[eq + 1..].trim()) else {
            errors.push(AllowlistError {
                line: lineno,
                message: format!("value for `{key}` must be a double-quoted string"),
            });
            continue;
        };
        match current.as_mut() {
            None => errors.push(AllowlistError {
                line: lineno,
                message: format!("`{key}` outside any [[allow]] entry"),
            }),
            Some(e) => match key.as_str() {
                "rule" => e.rule = value,
                "path" => e.path = value,
                "contains" => e.contains = value,
                "symbol" => e.symbol = value,
                "justification" => e.justification = value,
                other => errors.push(AllowlistError {
                    line: lineno,
                    message: format!("unknown key `{other}` in allow entry"),
                }),
            },
        }
    }
    close(&mut current, &mut errors);
    (entries, errors)
}

/// Parses a double-quoted TOML basic string with the common escapes.
fn parse_string(v: &str) -> Option<String> {
    let inner = v.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            },
            other => out.push(other),
        }
    }
    None
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

impl AllowEntry {
    /// Does this entry cover a finding at `path`:`snippet` inside fn
    /// `symbol`? (An empty `self.path` prefix matches every path.)
    pub fn matches(&self, rule: &str, path: &str, snippet: &str, symbol: &str) -> bool {
        self.rule == rule
            && path.starts_with(&self.path)
            && (self.contains.is_empty() || snippet.contains(&self.contains))
            && (self.symbol.is_empty() || self.symbol == symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["determinism", "panic-freedom"];

    #[test]
    fn parses_entries_and_rejects_missing_justification() {
        let (entries, errors) = parse(
            r#"
# exceptions
[[allow]]
rule = "determinism"
path = "crates/x/src/bin/bench.rs"
contains = "Instant"
justification = "wall-clock bench; output is a bench artifact"

[[allow]]
rule = "panic-freedom"
path = "crates/y/"
justification = "harness code may abort loudly"
"#,
            RULES,
        );
        assert_eq!(entries.len(), 2);
        assert!(errors.is_empty());
        assert!(entries[0].matches(
            "determinism",
            "crates/x/src/bin/bench.rs",
            "let t = Instant::now();",
            ""
        ));
        assert!(!entries[0].matches("determinism", "crates/x/src/lib.rs", "Instant", ""));
        assert!(!entries[0].matches("panic-freedom", "crates/x/src/bin/bench.rs", "Instant", ""));
    }

    #[test]
    fn symbol_scoped_entries_parse_and_match() {
        let (entries, errors) = parse(
            "[[allow]]\nrule = \"determinism\"\nsymbol = \"Platform::setup\"\n\
             justification = \"cold setup path, allocation is fine here\"\n",
            RULES,
        );
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(entries.len(), 1);
        assert!(entries[0].matches("determinism", "crates/x/src/lib.rs", "x", "Platform::setup"));
        assert!(!entries[0].matches("determinism", "crates/x/src/lib.rs", "x", "Platform::pump"));
        assert!(!entries[0].matches("determinism", "crates/x/src/lib.rs", "x", ""));
    }

    #[test]
    fn short_justification_is_an_error() {
        let (entries, errors) = parse(
            "[[allow]]\nrule = \"determinism\"\npath = \"x\"\njustification = \"meh\"\n",
            RULES,
        );
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (entries, errors) = parse(
            "[[allow]]\nrule = \"nope\"\npath = \"x\"\njustification = \"long enough words\"\n",
            RULES,
        );
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
    }
}
