//! Report rendering: human-readable text and a machine-readable JSON
//! document (hand-rolled writer — the analyzer is dependency-free).

use crate::rules::Finding;
use crate::Analysis;

/// Renders the analysis as pretty-printed JSON.
pub fn to_json(analysis: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"files_scanned\": {},\n  \"manifests_checked\": {},\n",
        analysis.files_scanned, analysis.manifests_checked
    ));
    s.push_str(&format!(
        "  \"finding_count\": {},\n  \"allowed_count\": {},\n",
        analysis.findings.len(),
        analysis.allowed.len()
    ));
    s.push_str("  \"findings\": [\n");
    for (i, f) in analysis.findings.iter().enumerate() {
        s.push_str(&finding_json(f, "    "));
        s.push_str(if i + 1 < analysis.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n  \"allowed\": [\n");
    for (i, a) in analysis.allowed.iter().enumerate() {
        let mut obj = finding_json(&a.finding, "    ");
        // Splice the justification into the object.
        obj.truncate(obj.len() - 2); // drop " }"
        obj.push_str(&format!(
            ", \"justification\": {} }}",
            json_str(&a.justification)
        ));
        s.push_str(&obj);
        s.push_str(if i + 1 < analysis.allowed.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

fn finding_json(f: &Finding, indent: &str) -> String {
    let symbol = if f.symbol.is_empty() {
        String::new()
    } else {
        format!(", \"symbol\": {}", json_str(&f.symbol))
    };
    format!(
        "{indent}{{ \"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}{symbol} }}",
        json_str(f.rule),
        json_str(&f.path),
        f.line,
        json_str(&f.message),
        json_str(&f.snippet),
    )
}

/// Renders the findings as a SARIF 2.1.0 document (static subset: rule
/// id, message, file/line) so CI systems can annotate diffs. Allowlisted
/// findings are not results — SARIF consumers should see what fails,
/// not what is sanctioned.
pub fn to_sarif(analysis: &Analysis) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"swamp-analyzer\",\n");
    s.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    s.push_str("          \"rules\": [\n");
    for (i, r) in crate::rules::RULE_NAMES.iter().enumerate() {
        s.push_str(&format!(
            "            {{ \"id\": {} }}{}\n",
            json_str(r),
            if i + 1 < crate::rules::RULE_NAMES.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (i, f) in analysis.findings.iter().enumerate() {
        s.push_str(&format!(
            "        {{ \"ruleId\": {}, \"level\": \"error\", \"message\": {{ \"text\": {} }}, \
             \"locations\": [ {{ \"physicalLocation\": {{ \"artifactLocation\": {{ \"uri\": {} }}, \
             \"region\": {{ \"startLine\": {} }} }} }} ] }}{}\n",
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.path),
            f.line.max(1),
            if i + 1 < analysis.findings.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// JSON string escaping.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders findings as compiler-style text diagnostics.
pub fn to_text(analysis: &Analysis, verbose: bool) -> String {
    let mut s = String::new();
    for f in &analysis.findings {
        s.push_str(&format!(
            "error[{}]: {}\n  --> {}:{}\n",
            f.rule, f.message, f.path, f.line
        ));
        if !f.snippet.is_empty() {
            s.push_str(&format!("   | {}\n", f.snippet));
        }
    }
    if verbose {
        for a in &analysis.allowed {
            let f = &a.finding;
            s.push_str(&format!(
                "allowed[{}]: {} ({}:{})\n  justification: {}\n",
                f.rule, f.message, f.path, f.line, a.justification
            ));
        }
    }
    s.push_str(&format!(
        "swamp-analyzer: {} file(s), {} manifest(s) checked; {} finding(s), {} allowlisted\n",
        analysis.files_scanned,
        analysis.manifests_checked,
        analysis.findings.len(),
        analysis.allowed.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_analysis_renders() {
        let a = Analysis::default();
        let j = to_json(&a);
        assert!(j.contains("\"finding_count\": 0"));
        let t = to_text(&a, true);
        assert!(t.contains("0 finding(s)"));
    }
}
