//! A small Rust lexer: just enough tokenization for invariant checking.
//!
//! The analyzer never needs types or name resolution — every rule works on
//! token patterns (`Instant :: now`, `. unwrap (`, `let _ =`) plus a map of
//! which lines belong to `#[cfg(test)]` items. So this lexer produces a flat
//! token stream with line numbers and a side-channel of doc comments (used
//! to honor `# Panics` sections). It understands the lexical shapes that
//! would otherwise cause false positives: nested block comments, raw
//! strings, byte strings, char literals vs. lifetimes, and raw identifiers.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (including `_` and raw `r#idents`).
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    /// The raw (uncooked) contents are carried for the few rules that need
    /// string *values* (obs instrument names); token-shape rules must never
    /// match identifier patterns inside string data — the distinct variant
    /// guarantees they cannot.
    Str(String),
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (split at `.`, which rules never care about).
    Num,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// One line of doc comment text (`///`, `//!`, `/** */`, `/*! */`).
#[derive(Clone, Debug)]
pub struct DocLine {
    pub line: u32,
    pub text: String,
}

/// Lexer output: the token stream and every doc-comment line.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub docs: Vec<DocLine>,
}

/// Tokenizes Rust source. Never fails: unexpected bytes are skipped, and an
/// unterminated literal simply ends the stream (the compiler proper is the
/// authority on well-formedness; we only need a faithful token shape for
/// code that already builds).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(b) = self.peek(0) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.quoted_string();
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead_at(1) => {
                    self.pos += 1;
                    self.raw_string();
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                b'"' => self.quoted_string(),
                b'\'' => self.quote(),
                b'r' if self.peek(1) == Some(b'#') && is_ident_start(self.peek(2)) => {
                    // Raw identifier r#type.
                    self.pos += 2;
                    self.ident();
                }
                b if is_ident_start(Some(b)) => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(Tok::Punct(b as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.out.tokens.push(Token {
            tok,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        // `///` and `//!` are doc comments; `////…` is not (rustdoc rule).
        let is_doc =
            (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        if is_doc {
            self.out.docs.push(DocLine {
                line: self.line,
                text,
            });
        }
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let start_line = self.line;
        let mut depth = 0u32;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                if b == b'\n' {
                    self.line += 1;
                }
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        // `/** … */` and `/*! … */` are doc comments (`/**/` and `/***/`
        // are not — they have no body).
        if (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 5)
            || text.starts_with("/*!")
        {
            for (i, l) in text.lines().enumerate() {
                self.out.docs.push(DocLine {
                    line: start_line + i as u32,
                    text: l.to_owned(),
                });
            }
        }
    }

    fn raw_string_ahead(&self) -> bool {
        self.raw_string_ahead_at(0)
    }

    /// Is `r"…"` / `r#"…"#` (any number of hashes) starting at offset `at`?
    fn raw_string_ahead_at(&self, at: usize) -> bool {
        if self.peek(at) != Some(b'r') {
            return false;
        }
        let mut i = at + 1;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    fn raw_string(&mut self) {
        // At `r`: count hashes, then scan for `"` followed by that many `#`.
        let start_line = self.line;
        self.pos += 1;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        let body_start = self.pos;
        let body_end;
        loop {
            match self.peek(0) {
                None => {
                    body_end = self.pos;
                    break;
                }
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    if (0..hashes).all(|h| self.peek(1 + h) == Some(b'#')) {
                        body_end = self.pos;
                        self.pos += 1 + hashes;
                        break;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[body_start..body_end]).into_owned();
        self.out.tokens.push(Token {
            tok: Tok::Str(text),
            line: start_line,
        });
    }

    fn quoted_string(&mut self) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let body_start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    // An escape consumes the next byte too — which may be
                    // the newline of a `\`-continuation; it still ends a
                    // source line, so the count must keep up or every
                    // finding below it lands one line off.
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'"' => {
                    let text =
                        String::from_utf8_lossy(&self.bytes[body_start..self.pos]).into_owned();
                    self.pos += 1;
                    self.out.tokens.push(Token {
                        tok: Tok::Str(text),
                        line: start_line,
                    });
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[body_start..self.pos]).into_owned();
        self.out.tokens.push(Token {
            tok: Tok::Str(text),
            line: start_line,
        });
    }

    /// At a `'`: disambiguate char literal from lifetime.
    fn quote(&mut self) {
        if self.peek(1) == Some(b'\\') {
            self.char_literal();
            return;
        }
        // `'x'` is a char; `'x` followed by anything else is a lifetime
        // (or a label). `'static`, `'a`, `'_`.
        if is_ident_start(self.peek(1)) {
            let mut i = 2;
            while is_ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) == Some(b'\'') && i == 2 {
                self.char_literal();
            } else {
                self.push(Tok::Lifetime);
                self.pos += i;
            }
        } else {
            self.char_literal();
        }
    }

    fn char_literal(&mut self) {
        self.push(Tok::Char);
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // malformed; bail at line end
                _ => self.pos += 1,
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Tok::Ident(text));
    }

    fn number(&mut self) {
        // Digits plus alphanumerics and underscores covers hex/octal/suffix
        // forms; `.` is deliberately excluded so `0..10` lexes as
        // `Num .. Num` and `1.5` as `Num . Num` — no rule inspects numbers.
        self.push(Tok::Num);
        while is_ident_continue(self.peek(0)) {
            self.pos += 1;
        }
    }
}

fn is_ident_start(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c.is_ascii_alphabetic())
}

fn is_ident_continue(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// True if the token at `i` is the identifier `name`.
pub fn is_ident(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Ident(s), .. }) if s == name)
}

/// True if the token at `i` is the punctuation `c`.
pub fn is_punct(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i), Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

/// The raw contents of a string literal token at `i`, if it is one.
pub fn str_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

/// True if tokens at `i` spell `a :: b`.
pub fn is_path2(tokens: &[Token], i: usize, a: &str, b: &str) -> bool {
    is_ident(tokens, i, a)
        && is_punct(tokens, i + 1, ':')
        && is_punct(tokens, i + 2, ':')
        && is_ident(tokens, i + 3, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            // Instant::now in a comment
            /* block Instant */
            /* nested /* Instant */ still comment */
            let s = "Instant::now()";
            let r = r#"Instant "quoted" here"#;
            let b = b"Instant";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "Instant"), "{ids:?}");
        assert!(ids.iter().any(|s| s == "real_ident"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let lx = lex(src);
        let lifetimes = lx.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = lx.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 1);
    }

    #[test]
    fn doc_comments_are_captured_with_lines() {
        let src = "/// # Panics\n/// on bad input\nfn f() {}\n";
        let lx = lex(src);
        assert_eq!(lx.docs.len(), 2);
        assert_eq!(lx.docs[0].line, 1);
        assert!(lx.docs[0].text.contains("# Panics"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nInstant::now();\n";
        let lx = lex(src);
        let inst = lx
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("Instant".into()))
            .map(|t| t.line);
        assert_eq!(inst, Some(3));
    }

    #[test]
    fn line_numbers_survive_string_continuations() {
        // A `\`-continuation escape consumes its newline; the line count
        // must not (regression: every finding below such a string landed
        // one line off, breaking `contains`-scoped allowlist entries).
        let src = "let a = \"one \\\n    two\";\nInstant::now();\n";
        let lx = lex(src);
        let inst = lx
            .tokens
            .iter()
            .find(|t| t.tok == Tok::Ident("Instant".into()))
            .map(|t| t.line);
        assert_eq!(inst, Some(3));
    }

    #[test]
    fn string_literal_contents_are_carried() {
        let lx = lex("let a = \"net.sent\"; let b = r#\"sync\"quoted\"\"#; let c = b\"bytes\";");
        let strs: Vec<&str> = lx
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(strs, ["net.sent", "sync\"quoted\"", "bytes"]);
    }

    #[test]
    fn raw_idents_lex_as_idents() {
        let ids = idents("let r#type = 1; let x = r\"raw\";");
        assert!(ids.iter().any(|s| s == "type"));
    }
}
