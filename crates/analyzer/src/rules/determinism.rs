//! Rule `determinism`: every experiment must be bit-for-bit reproducible
//! from its seed, so wall clocks and OS entropy are banned from platform
//! code, and hash-order iteration must not feed serialized output.
//!
//! Two checks:
//!
//! 1. **Wall-clock / entropy tokens** (per file). `Instant`, `SystemTime`,
//!    `UNIX_EPOCH`, `thread_rng`, `from_entropy` are flagged in lib and bin
//!    targets outside `#[cfg(test)]`. The `criterion` shim package is the
//!    one sanctioned wall-clock site (benchmarks measure real time by
//!    definition). Use `swamp_sim::SimTime` / seeded `SimRng` instead.
//! 2. **Unordered iteration feeding serialization** (graph-scoped, PR 8).
//!    Iterating a `HashMap`/`HashSet` local or field
//!    (`.iter()`/`.keys()`/`.values()`/`.into_iter()`/`for … in`) is
//!    flagged when — and only when — the iterating function is reachable
//!    from a serialization/export entry point: the `ObsSnapshot`/report
//!    renderers, the `EXPERIMENTS.md` table writers, and the wire
//!    encoders (see [`EXPORT_ENTRY_NAMES`]). The PR-3 version used a
//!    file-level marker heuristic ("mentions `to_json` somewhere") that
//!    both over-flagged unrelated functions in serializing files and
//!    missed iteration in helper files; call-graph reachability replaces
//!    it. Use `BTreeMap`/`BTreeSet`, or collect and sort before emitting.

use std::collections::BTreeSet;

use crate::graph::{Graph, Workspace};
use crate::lexer::{is_ident, is_punct, Tok, Token};
use crate::source::{SourceFile, TargetKind};

use super::Finding;

pub const NAME: &str = "determinism";

const BANNED: &[(&str, &str)] = &[
    (
        "Instant",
        "use swamp_sim::SimTime (sim clock) instead of the wall clock",
    ),
    (
        "SystemTime",
        "use swamp_sim::SimTime (sim clock) instead of the wall clock",
    ),
    (
        "UNIX_EPOCH",
        "use swamp_sim::SimTime (sim clock) instead of the wall clock",
    ),
    (
        "thread_rng",
        "use a seeded swamp_sim::SimRng stream instead of OS entropy",
    ),
    (
        "from_entropy",
        "use a seeded swamp_sim::SimRng stream instead of OS entropy",
    ),
];

/// Function names that emit serialized/exported bytes: any fn with one of
/// these names (free or method) roots the hash-iteration walk. Covers the
/// obs export (`to_json_string`/`to_pretty_string`/`to_compact_string`,
/// `to_markdown`, `render`), the pilots report writers (`push_row`,
/// `to_json`), and the wire encoders (`encode`, `encode_record`,
/// `encode_acks`).
pub const EXPORT_ENTRY_NAMES: &[&str] = &[
    "to_json",
    "to_json_string",
    "to_markdown",
    "to_pretty_string",
    "to_compact_string",
    "render",
    "push_row",
    "encode",
    "encode_record",
    "encode_acks",
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(file.kind, TargetKind::Lib | TargetKind::Bin) {
        return;
    }
    // The criterion shim is the sanctioned wall-clock harness.
    if file.package == "criterion" {
        return;
    }
    let tokens = &file.tokens;
    // A `use std::time::Instant` line and each call site all flag, which
    // is intentional — removal fixes every finding at once.
    for t in tokens.iter() {
        let Tok::Ident(name) = &t.tok else { continue };
        let Some((_, fix)) = BANNED.iter().find(|(b, _)| b == name) else {
            continue;
        };
        if file.is_test_line(t.line) {
            continue;
        }
        out.push(Finding::at(
            NAME,
            file,
            t.line,
            format!("non-deterministic API `{name}`: {fix}"),
        ));
    }
}

/// Graph-scoped hash-iteration check: flags unordered iteration only in
/// functions reachable from a serialization/export entry point.
pub fn check_graph(ws: &Workspace, graph: &Graph, out: &mut Vec<Finding>) {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            EXPORT_ENTRY_NAMES.contains(&n.item.name.as_str())
                && !n.is_test
                && matches!(
                    ws.files[n.file].source.kind,
                    TargetKind::Lib | TargetKind::Bin
                )
        })
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reach(&entries, &BTreeSet::new(), &|n| {
        !n.is_test
            && matches!(
                ws.files[n.file].source.kind,
                TargetKind::Lib | TargetKind::Bin
            )
    });
    // Hash-typed names are collected per *file* (fields and locals alike
    // bind in file scope for a name-based checker); iteration sites are
    // only flagged inside reachable bodies.
    let mut hash_names_of_file: Vec<Option<Vec<String>>> = vec![None; ws.files.len()];
    for &idx in reach.parent.keys() {
        let node = &graph.nodes[idx];
        let source = &ws.files[node.file].source;
        if source.package == "criterion" {
            continue;
        }
        let Some(body) = node.item.body.clone() else {
            continue;
        };
        let names =
            hash_names_of_file[node.file].get_or_insert_with(|| collect_hash_names(&source.tokens));
        if names.is_empty() {
            continue;
        }
        let tokens = &source.tokens;
        for i in body {
            let Some(Tok::Ident(name)) = tokens.get(i).map(|t| &t.tok) else {
                continue;
            };
            if !names.contains(name) || source.is_test_line(tokens[i].line) {
                continue;
            }
            if is_iteration_site(tokens, i) {
                let path = graph.path(&reach, idx).join(" → ");
                out.push(Finding::at_symbol(
                    NAME,
                    source,
                    tokens[i].line,
                    &node.qual,
                    format!(
                        "hash-order iteration of `{name}` feeds serialized output \
                         (reachable via {path}); use BTreeMap/BTreeSet or sort \
                         before emitting"
                    ),
                ));
            }
        }
    }
}

/// Names bound to a `HashMap`/`HashSet` type anywhere in the file:
/// `name: HashMap<…>` fields and arguments, and `let name = HashMap::new()`.
fn collect_hash_names(tokens: &[Token]) -> Vec<String> {
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        let is_hash_ty = matches!(&tokens[i].tok,
            Tok::Ident(s) if s == "HashMap" || s == "HashSet");
        if !is_hash_ty {
            continue;
        }
        // `name : [&] ['a] [mut] HashMap` (field, param, or annotated let).
        let mut j = i;
        while j >= 1 {
            match &tokens[j - 1].tok {
                Tok::Punct('&') | Tok::Lifetime => j -= 1,
                Tok::Ident(s) if s == "mut" => j -= 1,
                _ => break,
            }
        }
        if j >= 2 && is_punct(tokens, j - 1, ':') && !is_punct(tokens, j - 2, ':') {
            if let Some(Tok::Ident(name)) = tokens.get(j - 2).map(|t| &t.tok) {
                hash_names.push(name.clone());
            }
        }
        // `let name = HashMap::new(…)` / `= HashSet::with_capacity(…)`.
        if i >= 2 && is_punct(tokens, i - 1, '=') {
            if let Some(Tok::Ident(name)) = tokens.get(i - 2).map(|t| &t.tok) {
                hash_names.push(name.clone());
            }
        }
    }
    hash_names
}

/// `name.iter()` / `.keys()` / `.values()` / `.into_iter()`, or
/// `for x in [&] name {`.
fn is_iteration_site(tokens: &[Token], i: usize) -> bool {
    let method_iter = is_punct(tokens, i + 1, '.')
        && matches!(tokens.get(i + 2).map(|t| &t.tok),
            Some(Tok::Ident(m)) if m == "iter" || m == "keys" || m == "values" || m == "into_iter")
        && is_punct(tokens, i + 3, '(');
    let for_iter = (is_ident(tokens, i.wrapping_sub(1), "in")
        || (is_punct(tokens, i.wrapping_sub(1), '&') && is_ident(tokens, i.wrapping_sub(2), "in")))
        && is_punct(tokens, i + 1, '{');
    method_iter || for_iter
}
