//! Rule `determinism`: every experiment must be bit-for-bit reproducible
//! from its seed, so wall clocks and OS entropy are banned from platform
//! code, and hash-order iteration must not feed serialized output.
//!
//! Two checks:
//!
//! 1. **Wall-clock / entropy tokens.** `Instant`, `SystemTime`,
//!    `UNIX_EPOCH`, `thread_rng`, `from_entropy` are flagged in lib and bin
//!    targets outside `#[cfg(test)]`. The `criterion` shim package is the
//!    one sanctioned wall-clock site (benchmarks measure real time by
//!    definition). Use `swamp_sim::SimTime` / seeded `SimRng` instead.
//! 2. **Unordered iteration feeding serialization.** In files that emit
//!    reports or serialized documents, iterating a `HashMap`/`HashSet`
//!    local or field leaks hash order into output. Flagged when a name
//!    declared with a `HashMap`/`HashSet` type is iterated
//!    (`.iter()`/`.keys()`/`.values()`/`.into_iter()`/`for … in`) in a file
//!    that also mentions a serialization marker (`to_json`, `Report`,
//!    `push_row`, `to_markdown`, `to_pretty_string`, `to_compact_string`).
//!    Use `BTreeMap`/`BTreeSet`, or collect and sort before emitting.

use crate::lexer::{is_ident, is_punct, Tok};
use crate::source::{SourceFile, TargetKind};

use super::Finding;

pub const NAME: &str = "determinism";

const BANNED: &[(&str, &str)] = &[
    (
        "Instant",
        "use swamp_sim::SimTime (sim clock) instead of the wall clock",
    ),
    (
        "SystemTime",
        "use swamp_sim::SimTime (sim clock) instead of the wall clock",
    ),
    (
        "UNIX_EPOCH",
        "use swamp_sim::SimTime (sim clock) instead of the wall clock",
    ),
    (
        "thread_rng",
        "use a seeded swamp_sim::SimRng stream instead of OS entropy",
    ),
    (
        "from_entropy",
        "use a seeded swamp_sim::SimRng stream instead of OS entropy",
    ),
];

const SERIALIZATION_MARKERS: &[&str] = &[
    "to_json",
    "to_markdown",
    "to_pretty_string",
    "to_compact_string",
    "push_row",
    "Report",
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(file.kind, TargetKind::Lib | TargetKind::Bin) {
        return;
    }
    // The criterion shim is the sanctioned wall-clock harness.
    if file.package == "criterion" {
        return;
    }
    let tokens = &file.tokens;
    // A `use std::time::Instant` line and each call site all flag, which
    // is intentional — removal fixes every finding at once.
    for t in tokens.iter() {
        let Tok::Ident(name) = &t.tok else { continue };
        let Some((_, fix)) = BANNED.iter().find(|(b, _)| b == name) else {
            continue;
        };
        if file.is_test_line(t.line) {
            continue;
        }
        out.push(Finding::at(
            NAME,
            file,
            t.line,
            format!("non-deterministic API `{name}`: {fix}"),
        ));
    }
    check_hash_iteration(file, out);
}

fn check_hash_iteration(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    let mentions_serialization = tokens
        .iter()
        .any(|t| matches!(&t.tok, Tok::Ident(s) if SERIALIZATION_MARKERS.contains(&s.as_str())));
    if !mentions_serialization {
        return;
    }
    // Names bound to a HashMap/HashSet type: `name: HashMap<…>` fields and
    // arguments, and `let name = HashMap::new()` / `HashSet::from(…)`.
    let mut hash_names: Vec<String> = Vec::new();
    for i in 0..tokens.len() {
        let is_hash_ty = matches!(&tokens[i].tok,
            Tok::Ident(s) if s == "HashMap" || s == "HashSet");
        if !is_hash_ty {
            continue;
        }
        // `name : [&] ['a] [mut] HashMap` (field, param, or annotated let).
        let mut j = i;
        while j >= 1 {
            match &tokens[j - 1].tok {
                Tok::Punct('&') | Tok::Lifetime => j -= 1,
                Tok::Ident(s) if s == "mut" => j -= 1,
                _ => break,
            }
        }
        if j >= 2 && is_punct(tokens, j - 1, ':') && !is_punct(tokens, j - 2, ':') {
            if let Some(Tok::Ident(name)) = tokens.get(j - 2).map(|t| &t.tok) {
                hash_names.push(name.clone());
            }
        }
        // `let name = HashMap::new(…)` / `= HashSet::with_capacity(…)`.
        if i >= 2 && is_punct(tokens, i - 1, '=') {
            if let Some(Tok::Ident(name)) = tokens.get(i - 2).map(|t| &t.tok) {
                hash_names.push(name.clone());
            }
        }
    }
    if hash_names.is_empty() {
        return;
    }
    for i in 0..tokens.len() {
        let Tok::Ident(name) = &tokens[i].tok else {
            continue;
        };
        if !hash_names.contains(name) || file.is_test_line(tokens[i].line) {
            continue;
        }
        // `name.iter()` / `.keys()` / `.values()` / `.into_iter()`.
        let method_iter = is_punct(tokens, i + 1, '.')
            && matches!(tokens.get(i + 2).map(|t| &t.tok),
                Some(Tok::Ident(m)) if m == "iter" || m == "keys" || m == "values" || m == "into_iter")
            && is_punct(tokens, i + 3, '(');
        // `for x in name` / `for x in &name` (next token ends the header).
        let for_iter = (is_ident(tokens, i.wrapping_sub(1), "in")
            || (is_punct(tokens, i.wrapping_sub(1), '&')
                && is_ident(tokens, i.wrapping_sub(2), "in")))
            && is_punct(tokens, i + 1, '{');
        if method_iter || for_iter {
            out.push(Finding::at(
                NAME,
                file,
                tokens[i].line,
                format!(
                    "hash-order iteration of `{name}` in a file that serializes output; \
                     use BTreeMap/BTreeSet or sort before emitting"
                ),
            ));
        }
    }
}
