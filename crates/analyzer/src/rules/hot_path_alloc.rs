//! Rule `hot-path-alloc`: the steady-state hot paths are zero-alloc by
//! contract (the alloc-counting tests of PR 1/4/6 pin specific scenarios);
//! this rule holds the contract **across every path** by walking the call
//! graph from the hot entry points and banning allocating APIs in every
//! transitively reachable library function.
//!
//! Entry points (qualified names): `Platform::pump`, the sync engine's
//! steady-state rounds (`FogSync::sync_round/poll_acks/process_ack`), the
//! `ShardedPlatform` worker rounds (`pump_round` / `ingest_round` in the
//! shard pool), the obs hot ops (`Obs::inc/add/set/record/enter/exit`),
//! and — since PR 9 — the typed read path (`Platform::query`,
//! `ShardedPlatform::query`, `ViewIndexer::catch_up`,
//! `ViewSnapshot::merge`).
//!
//! Banned inside reachable bodies (outside test lines):
//!
//! - `format!` / `vec!` — always allocate;
//! - `.to_string()` / `.to_owned()` / `.to_vec()` — owned copies;
//! - `.clone()` — cloning owned containers (`Arc::clone(&x)` is the
//!   sanctioned refcount bump: qualified, so it does not match the
//!   method shape);
//! - `String::from/new/with_capacity`, `Vec::new/with_capacity`,
//!   `Box::new` — fresh containers on the hot path exist to be filled.
//!
//! Cold/setup functions reached from an entry (builders, registration,
//! error paths that end the run) are cut from the walk via allowlist
//! `symbol =` scopes; a scope that no longer cuts anything fails CI as
//! `allowlist-unused`. Known conservatism: `.collect()` and `.push()` are
//! not banned (reused, pre-reserved buffers push legitimately); the fresh
//! containers that would feed them are.

use std::collections::BTreeSet;

use crate::graph::{Graph, Workspace};
use crate::lexer::{is_ident, is_punct, Tok};
use crate::source::TargetKind;

use super::Finding;

pub const NAME: &str = "hot-path-alloc";

/// Qualified names of the hot-path roots. Names that do not exist in the
/// workspace are simply absent from the entry set.
pub const ENTRY_QUALS: &[&str] = &[
    "Platform::pump",
    "FogSync::sync_round",
    "FogSync::poll_acks",
    "FogSync::process_ack",
    "pump_round",
    "ingest_round",
    "Obs::inc",
    "Obs::add",
    "Obs::set",
    "Obs::record",
    "Obs::enter",
    "Obs::exit",
    // PR 9 read path: the query fan-out and the incremental view fold.
    // Response *materialization* allocates by design (the caller owns the
    // result); the scan/prune machinery feeding it must not — cold cuts
    // in the allowlist mark the materializing leaves explicitly.
    "Platform::query",
    "ShardedPlatform::query",
    "ViewIndexer::catch_up",
    "ViewSnapshot::merge",
    // PR 10 behavioral baseline: scoring runs per ingested record at
    // E11 rates. Device admission and flag raising are one-shot per
    // device — cold cuts in the allowlist mark them explicitly.
    "BehaviorBank::ingest",
];

/// `Type::method(` shapes that allocate.
const BANNED_QUALIFIED: &[(&str, &str)] = &[
    ("String", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
];

/// `.method(` shapes that allocate.
const BANNED_METHODS: &[&str] = &["to_string", "to_owned", "to_vec", "clone"];

/// Checks every library function reachable from the hot entry points.
/// Returns the cold `symbol =` scopes that actually cut an edge.
pub fn check(
    ws: &Workspace,
    graph: &Graph,
    cold: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) -> BTreeSet<String> {
    let entries: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            ENTRY_QUALS.contains(&n.qual.as_str())
                && !n.is_test
                && ws.files[n.file].source.kind == TargetKind::Lib
        })
        .map(|(i, _)| i)
        .collect();
    let reach = graph.reach(&entries, cold, &|n| {
        !n.is_test && ws.files[n.file].source.kind == TargetKind::Lib
    });
    for &idx in reach.parent.keys() {
        let node = &graph.nodes[idx];
        // Entry points that are themselves cold-scoped never enqueue, so
        // idx here is always hot; scan its body.
        let Some(body) = node.item.body.clone() else {
            continue;
        };
        let source = &ws.files[node.file].source;
        let tokens = &source.tokens;
        let path = graph.path(&reach, idx).join(" → ");
        for i in body {
            let line = match tokens.get(i) {
                Some(t) => t.line,
                None => continue,
            };
            if source.is_test_line(line) {
                continue;
            }
            let site: Option<String> = if (is_ident(tokens, i, "format")
                || is_ident(tokens, i, "vec"))
                && is_punct(tokens, i + 1, '!')
            {
                match &tokens[i].tok {
                    Tok::Ident(m) => Some(format!("{m}!")),
                    _ => None,
                }
            } else if is_punct(tokens, i, '.') && is_punct(tokens, i + 2, '(') {
                BANNED_METHODS
                    .iter()
                    .find(|m| is_ident(tokens, i + 1, m))
                    .map(|m| format!(".{m}()"))
            } else if is_punct(tokens, i + 1, ':')
                && is_punct(tokens, i + 2, ':')
                && is_punct(tokens, i + 4, '(')
            {
                BANNED_QUALIFIED
                    .iter()
                    .find(|(ty, m)| is_ident(tokens, i, ty) && is_ident(tokens, i + 3, m))
                    .map(|(ty, m)| format!("{ty}::{m}()"))
            } else {
                None
            };
            if let Some(site) = site {
                out.push(Finding::at_symbol(
                    NAME,
                    source,
                    line,
                    &node.qual,
                    format!(
                        "allocating call `{site}` on the zero-alloc hot path \
                         (reachable via {path}); hoist the allocation to setup, \
                         reuse a scratch buffer, or cut the callee with an \
                         allowlist `symbol =` scope if it is genuinely cold"
                    ),
                ));
            }
        }
    }
    reach.cold_cut
}
