//! Rule `cast-safety`: wire/codec paths must not silently truncate.
//!
//! A lossy `as` cast in an encode/decode path corrupts data *quietly* —
//! the PR-8 seed bug was `n as i64` in the JSON number writer mangling
//! non-integral and out-of-range doubles. In scope:
//!
//! - every file under `crates/codec/src/` (the wire formats),
//! - `crates/fog/src/timer_wheel.rs` (slot math feeding the sync
//!   scheduler),
//! - the `UpdateRecord` codec functions in `crates/fog/src/sync.rs`
//!   (`encode_record`/`decode_record`/`encode_acks`/`decode_acks` and the
//!   `UpdateRecord::encode/decode` methods), located via the item graph.
//!
//! In-scope code (outside test lines) must not use numeric `as` casts —
//! use `From`/`Into` widening (`u64::from`, `usize::from`) where lossless,
//! `try_into()`/`checked_*` with an honest error path where not — and may
//! use `wrapping_*` arithmetic only on a line carrying a `//` comment
//! saying why wraparound is correct there.

use std::collections::BTreeSet;
use std::ops::Range;

use crate::graph::{Graph, Workspace};
use crate::lexer::Tok;
use crate::source::SourceFile;

use super::Finding;

pub const NAME: &str = "cast-safety";

/// Directory prefixes whose every file is wire/codec scope.
const PATH_SCOPES: &[&str] = &["crates/codec/src/", "crates/fog/src/timer_wheel.rs"];

/// Qualified fn names that are wire/codec scope wherever they live.
const FN_SCOPES: &[&str] = &[
    "UpdateRecord::encode",
    "UpdateRecord::decode",
    "encode_record",
    "decode_record",
    "encode_acks",
    "decode_acks",
];

/// Cast-target type names considered numeric (plus `char`, which `as`
/// reaches only lossily from integers).
const NUMERIC: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64", "char",
];

pub fn check(ws: &Workspace, graph: &Graph, out: &mut Vec<Finding>) {
    // Whole-file scopes.
    for wf in &ws.files {
        if PATH_SCOPES
            .iter()
            .any(|p| wf.source.rel_path.starts_with(p))
        {
            scan(&wf.source, 0..wf.source.tokens.len(), None, out);
        }
    }
    // Fn scopes, outside the whole-file paths (avoid double reporting).
    for node in &graph.nodes {
        if !FN_SCOPES.contains(&node.qual.as_str()) {
            continue;
        }
        let source = &ws.files[node.file].source;
        if PATH_SCOPES.iter().any(|p| source.rel_path.starts_with(p)) {
            continue;
        }
        if let Some(body) = node.item.body.clone() {
            scan(source, body, Some(&node.qual), out);
        }
    }
}

fn scan(source: &SourceFile, range: Range<usize>, symbol: Option<&str>, out: &mut Vec<Finding>) {
    let tokens = &source.tokens;
    let mut seen_lines: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    for i in range {
        let Some(t) = tokens.get(i) else { continue };
        if source.is_test_line(t.line) {
            continue;
        }
        match &t.tok {
            Tok::Ident(kw) if kw == "as" => {
                let Some(Tok::Ident(ty)) = tokens.get(i + 1).map(|t| &t.tok) else {
                    continue;
                };
                if !NUMERIC.contains(&ty.as_str()) {
                    continue;
                }
                push(
                    source,
                    t.line,
                    symbol,
                    out,
                    format!(
                        "`as {ty}` cast in a wire/codec path silently truncates: \
                     use `{ty}::from`/`usize::from` where the widening is lossless, \
                     or `try_into()`/`checked_*` with an honest error path"
                    ),
                );
            }
            Tok::Ident(m) if m.starts_with("wrapping_") || m.starts_with("unchecked_") => {
                // One finding per (line, kind) — chained wrapping ops on a
                // justified line stay quiet together.
                let kind: &'static str = if m.starts_with("wrapping_") {
                    "wrapping"
                } else {
                    "unchecked"
                };
                if source.snippet(t.line).contains("//") || !seen_lines.insert((t.line, kind)) {
                    continue;
                }
                push(
                    source,
                    t.line,
                    symbol,
                    out,
                    format!(
                        "`{m}` in a wire/codec path needs a same-line `//` comment \
                     saying why {kind} arithmetic is correct here (or use `checked_*`)"
                    ),
                );
            }
            _ => {}
        }
    }
}

fn push(source: &SourceFile, line: u32, symbol: Option<&str>, out: &mut Vec<Finding>, msg: String) {
    match symbol {
        Some(s) => out.push(Finding::at_symbol(NAME, source, line, s, msg)),
        None => out.push(Finding::at(NAME, source, line, msg)),
    }
}
