//! Rule `error-discard`: silently dropping a `Result` in library code hides
//! failures the platform is contractually required to surface (PR 2's
//! non-panicking Result API is only honest if callers look at it).
//!
//! Flagged in non-test library code:
//!
//! - `let _ = …;` — the classic discard. A lexer cannot prove the
//!   right-hand side is a `Result`, so *every* wildcard discard is flagged:
//!   either the value is worth handling (handle or count it) or the
//!   discard is deliberate (allowlist it with a justification).
//!   `let _name = …` and partial destructuring are not flagged.
//! - `….ok();` as a statement — converts a `Result` to an `Option` and
//!   drops it on the floor.

use crate::lexer::{is_ident, is_punct, Tok};
use crate::source::{SourceFile, TargetKind};

use super::Finding;

pub const NAME: &str = "error-discard";

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != TargetKind::Lib {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if file.is_test_line(line) {
            continue;
        }
        // `let _ =` (not `let _x`, not `let (_, …)`).
        if is_ident(tokens, i, "let")
            && is_ident(tokens, i + 1, "_")
            && is_punct(tokens, i + 2, '=')
            && !is_punct(tokens, i + 3, '=')
        {
            out.push(Finding::at(
                NAME,
                file,
                line,
                "`let _ = …` discards a value in library code: handle it, count it, \
                 or allowlist the discard with a justification"
                    .to_owned(),
            ));
            continue;
        }
        // `.ok();` — statement-position Result discard. `let y = x.ok();`,
        // `return x.ok();` and other value-position uses don't match: the
        // statement must not bind, assign or flow its value anywhere.
        if is_punct(tokens, i, '.')
            && is_ident(tokens, i + 1, "ok")
            && is_punct(tokens, i + 2, '(')
            && is_punct(tokens, i + 3, ')')
            && is_punct(tokens, i + 4, ';')
            && statement_is_expression(tokens, i)
        {
            out.push(Finding::at(
                NAME,
                file,
                line,
                "statement-position `.ok();` discards a Result in library code: \
                 handle it, count it, or allowlist with a justification"
                    .to_owned(),
            ));
        }
    }
}

/// Walks back from token `i` to the start of the enclosing statement and
/// returns true if the statement is a bare expression (its value is
/// dropped): no `let`, no assignment, no `return`/`break`/`match`/`=>` arm
/// between the statement boundary and here.
fn statement_is_expression(tokens: &[crate::lexer::Token], i: usize) -> bool {
    let mut j = i;
    let mut depth = 0u32; // balanced (…)/[…] groups inside the chain
    while j > 0 {
        j -= 1;
        match &tokens[j].tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') if depth > 0 => depth -= 1,
            _ if depth > 0 => {}
            // An unbalanced open paren means the value is a call argument.
            Tok::Punct('(') | Tok::Punct('[') => return false,
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return true,
            // Value flows somewhere: assignment, tuple/argument position.
            Tok::Punct('=') | Tok::Punct(',') => return false,
            Tok::Ident(s) if s == "let" || s == "return" || s == "break" || s == "match" => {
                return false;
            }
            _ => {}
        }
    }
    true
}
