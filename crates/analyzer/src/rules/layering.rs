//! Rule `layering`: the crate-dependency DAG is declared here and every
//! workspace manifest is checked against it, so an accidental
//! `swamp-net → swamp-pilots` edge (or any other layer inversion) fails CI
//! instead of quietly fusing layers.
//!
//! The table lists, per workspace package, exactly which *workspace*
//! dependencies it may declare (normal + dev). External registry deps are
//! out of scope — the offline build bans them anyway. A package missing
//! from the table is itself a finding: adding a crate means declaring its
//! place in the architecture.

use crate::manifest::Manifest;

use super::Finding;

pub const NAME: &str = "layering";

/// The architecture: substrate (sim/codec/crypto) → domain (net, agro,
/// sensors) → services (irrigation, fog, security, views) → platform
/// (core) → harness (pilots, bench). `criterion` is the in-tree bench shim;
/// `swamp-analyzer` and the substrate depend on nothing. `swamp` is the
/// root umbrella package.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("swamp-sim", &[]),
    ("swamp-codec", &[]),
    ("swamp-crypto", &[]),
    ("swamp-analyzer", &[]),
    ("criterion", &[]),
    ("swamp-obs", &["swamp-sim"]),
    ("swamp-net", &["swamp-sim", "swamp-obs"]),
    ("swamp-agro", &["swamp-sim"]),
    ("swamp-sensors", &["swamp-sim", "swamp-codec", "swamp-agro"]),
    (
        "swamp-irrigation",
        &["swamp-sim", "swamp-agro", "swamp-sensors"],
    ),
    (
        "swamp-fog",
        &["swamp-sim", "swamp-obs", "swamp-net", "swamp-codec"],
    ),
    ("swamp-views", &["swamp-sim", "swamp-codec", "swamp-fog"]),
    ("swamp-workload", &["swamp-sim", "swamp-codec"]),
    (
        "swamp-security",
        &[
            "swamp-sim",
            "swamp-obs",
            "swamp-codec",
            "swamp-crypto",
            "swamp-net",
            "swamp-sensors",
            "swamp-agro",
        ],
    ),
    (
        "swamp-core",
        &[
            "swamp-sim",
            "swamp-obs",
            "swamp-codec",
            "swamp-crypto",
            "swamp-net",
            "swamp-sensors",
            "swamp-security",
            "swamp-irrigation",
            "swamp-fog",
            "swamp-views",
        ],
    ),
    (
        "swamp-shard",
        &[
            "swamp-sim",
            "swamp-obs",
            "swamp-codec",
            "swamp-net",
            "swamp-sensors",
            "swamp-fog",
            "swamp-core",
        ],
    ),
    (
        "swamp-pilots",
        &[
            "swamp-sim",
            "swamp-obs",
            "swamp-codec",
            "swamp-crypto",
            "swamp-net",
            "swamp-agro",
            "swamp-sensors",
            "swamp-irrigation",
            "swamp-fog",
            "swamp-security",
            "swamp-workload",
            "swamp-core",
            "swamp-shard",
        ],
    ),
    (
        "swamp-bench",
        &[
            "swamp-sim",
            "swamp-obs",
            "swamp-codec",
            "swamp-crypto",
            "swamp-net",
            "swamp-agro",
            "swamp-sensors",
            "swamp-irrigation",
            "swamp-fog",
            "swamp-security",
            "swamp-core",
            "swamp-shard",
            "swamp-pilots",
            "criterion",
        ],
    ),
    (
        "swamp",
        &[
            "swamp-sim",
            "swamp-obs",
            "swamp-codec",
            "swamp-crypto",
            "swamp-net",
            "swamp-agro",
            "swamp-sensors",
            "swamp-irrigation",
            "swamp-fog",
            "swamp-security",
            "swamp-workload",
            "swamp-core",
            "swamp-shard",
            "swamp-pilots",
        ],
    ),
];

/// Checks one workspace manifest against [`ALLOWED_DEPS`]. `rel_path` is
/// the manifest's workspace-relative path for findings.
pub fn check(
    manifest: &Manifest,
    rel_path: &str,
    workspace_members: &[String],
    out: &mut Vec<Finding>,
) {
    let Some((_, allowed)) = ALLOWED_DEPS.iter().find(|(n, _)| *n == manifest.name) else {
        out.push(finding(
            rel_path,
            format!(
                "package `{}` is not in the declared dependency DAG \
                 (crates/analyzer/src/rules/layering.rs); declare its layer to add it",
                manifest.name
            ),
        ));
        return;
    };
    for dep in manifest.deps.iter().chain(manifest.dev_deps.iter()) {
        // Only workspace-internal edges are layering-relevant.
        if !workspace_members.iter().any(|m| m == dep) {
            continue;
        }
        if !allowed.contains(&dep.as_str()) {
            out.push(finding(
                rel_path,
                format!(
                    "undeclared dependency edge `{}` → `{dep}`: not allowed by the \
                     layering DAG (crates/analyzer/src/rules/layering.rs)",
                    manifest.name
                ),
            ));
        }
    }
}

/// Sanity-checks [`ALLOWED_DEPS`] itself: every allowed dep must be a known
/// package and the declared graph must be acyclic (defense against editing
/// the table into an inconsistent state).
pub fn check_table(out: &mut Vec<Finding>) {
    let names: Vec<&str> = ALLOWED_DEPS.iter().map(|(n, _)| *n).collect();
    for (name, allowed) in ALLOWED_DEPS {
        for dep in *allowed {
            if !names.contains(dep) {
                out.push(finding(
                    "crates/analyzer/src/rules/layering.rs",
                    format!("DAG table lists unknown package `{dep}` under `{name}`"),
                ));
            }
        }
    }
    // Cycle check by repeated leaf elimination (Kahn).
    let mut remaining: Vec<(&str, Vec<&str>)> =
        ALLOWED_DEPS.iter().map(|(n, d)| (*n, d.to_vec())).collect();
    loop {
        let leaves: Vec<&str> = remaining
            .iter()
            .filter(|(_, deps)| deps.is_empty())
            .map(|(n, _)| *n)
            .collect();
        if leaves.is_empty() {
            break;
        }
        remaining.retain(|(n, _)| !leaves.contains(n));
        for (_, deps) in remaining.iter_mut() {
            deps.retain(|d| !leaves.contains(d));
        }
    }
    if !remaining.is_empty() {
        let cycle: Vec<&str> = remaining.iter().map(|(n, _)| *n).collect();
        out.push(finding(
            "crates/analyzer/src/rules/layering.rs",
            format!("DAG table contains a dependency cycle among {cycle:?}"),
        ));
    }
}

/// Transitive closure of [`ALLOWED_DEPS`] for `pkg`, including `pkg`
/// itself. The call graph uses this to keep name-based resolution inside
/// the architecture: a call in `swamp-core` can only resolve into
/// packages core may depend on — never "upward" into pilots or sideways
/// into the analyzer just because a method name collides.
pub fn dep_closure(pkg: &str) -> std::collections::BTreeSet<&'static str> {
    let mut out = std::collections::BTreeSet::new();
    let Some((canonical, direct)) = ALLOWED_DEPS.iter().find(|(n, _)| *n == pkg) else {
        return out;
    };
    out.insert(*canonical);
    let mut pending: Vec<&[&str]> = vec![direct];
    while let Some(deps) = pending.pop() {
        for d in deps {
            if out.insert(d) {
                if let Some((_, dd)) = ALLOWED_DEPS.iter().find(|(n, _)| n == d) {
                    pending.push(dd);
                }
            }
        }
    }
    out
}

fn finding(path: &str, message: String) -> Finding {
    Finding {
        rule: NAME,
        path: path.to_owned(),
        line: 1,
        message,
        snippet: String::new(),
        symbol: String::new(),
    }
}
