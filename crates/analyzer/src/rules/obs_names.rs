//! Rule `obs-name-drift`: every family-prefixed instrument name string
//! (`"net.*"`, `"sync.*"`, `"ingest.*"`, …) used anywhere in the workspace
//! must resolve to exactly one registration site, with matching kind.
//!
//! PR 4 closed the typo'd-counter bug *dynamically*: `ObsSnapshot` lookups
//! return `Err(ObsError::Unknown)` instead of silently minting a zero.
//! But a typo in a test assertion that only runs `is_ok()`-blind, or a
//! counter renamed at the registration site while a dashboard query keeps
//! the old string, still drifts. This rule closes the hole statically:
//!
//! - a **registration** is `obs.counter("…")` / `gauge` / `hist` /
//!   `span` — the receiver is literally the `obs` handle (the workspace
//!   convention for instrument-struct constructors: `fn register(obs:
//!   &mut Obs)`);
//! - a **read** is the same four method names on any other receiver
//!   (snapshots, reports, `Metrics` views), in any target including
//!   tests;
//! - every family-prefixed read must name a registered instrument, with
//!   the same kind; every family-prefixed name may have at most one
//!   non-test library registration site.
//!
//! Names outside the family prefixes (scratch names in obs's own unit
//! tests, sim's legacy `Metrics` fixtures) are not checked. Deliberate
//! negative tests of the Unknown-instrument error path carry allowlist
//! entries with `contains =` the typo'd name.

use std::collections::BTreeMap;

use crate::graph::Workspace;
use crate::lexer::{is_punct, str_at, Tok};
use crate::source::TargetKind;

use super::Finding;

pub const NAME: &str = "obs-name-drift";

/// Instrument name families under the drift contract (see DESIGN.md §15).
pub const FAMILIES: &[&str] = &[
    "net.",
    "sync.",
    "cloud.",
    "ingest.",
    "relay.",
    "platform.",
    "security.",
    "shard.",
    "shardfwd.",
];

const METHODS: &[&str] = &["counter", "gauge", "hist", "span"];

struct Site {
    file: usize,
    line: u32,
    kind: &'static str,
    /// Non-test library registration (counts toward the exactly-one rule).
    canonical: bool,
}

pub fn check(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut regs: BTreeMap<String, Vec<Site>> = BTreeMap::new();
    let mut reads: Vec<(String, Site)> = Vec::new();
    for (fi, wf) in ws.files.iter().enumerate() {
        let tokens = &wf.source.tokens;
        for i in 0..tokens.len() {
            // `<recv> . <method> ( "name"`.
            if !is_punct(tokens, i, '.') || !is_punct(tokens, i + 2, '(') {
                continue;
            }
            let Some(kind) = METHODS.iter().find(
                |m| matches!(tokens.get(i + 1).map(|t| &t.tok), Some(Tok::Ident(s)) if s == *m),
            ) else {
                continue;
            };
            let Some(name) = str_at(tokens, i + 3) else {
                continue;
            };
            if !FAMILIES.iter().any(|f| name.starts_with(f)) {
                continue;
            }
            let line = tokens[i].line;
            let is_reg = i >= 1 && matches!(&tokens[i - 1].tok, Tok::Ident(r) if r == "obs");
            let site = Site {
                file: fi,
                line,
                kind,
                canonical: is_reg
                    && wf.source.kind == TargetKind::Lib
                    && !wf.source.is_test_line(line),
            };
            if is_reg {
                regs.entry(name.to_owned()).or_default().push(site);
            } else {
                reads.push((name.to_owned(), site));
            }
        }
    }
    // At most one canonical registration site per name.
    for (name, sites) in &regs {
        let canonical: Vec<&Site> = sites.iter().filter(|s| s.canonical).collect();
        for extra in canonical.iter().skip(1) {
            let source = &ws.files[extra.file].source;
            let first = &ws.files[canonical[0].file].source;
            out.push(Finding::at(
                NAME,
                source,
                extra.line,
                format!(
                    "instrument `{name}` is registered more than once (first at \
                     {}:{}); one name must mean one instrument",
                    first.rel_path, canonical[0].line
                ),
            ));
        }
    }
    // Every read resolves, with matching kind.
    for (name, site) in &reads {
        let source = &ws.files[site.file].source;
        match regs.get(name) {
            None => out.push(Finding::at(
                NAME,
                source,
                site.line,
                format!(
                    "instrument name `{name}` does not resolve to any \
                     registration site (`obs.counter/gauge/hist/span`): \
                     typo'd or renamed-away name"
                ),
            )),
            Some(sites) => {
                if !sites.iter().any(|s| s.kind == site.kind) {
                    let reg = &sites[0];
                    let reg_src = &ws.files[reg.file].source;
                    out.push(Finding::at(
                        NAME,
                        source,
                        site.line,
                        format!(
                            "instrument `{name}` is registered as a `{}` \
                             ({}:{}) but read as a `{}`",
                            reg.kind, reg_src.rel_path, reg.line, site.kind
                        ),
                    ));
                }
            }
        }
    }
}
