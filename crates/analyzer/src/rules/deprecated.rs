//! Rule `deprecated-api`: the PR-2 compatibility shims `Platform::new` and
//! `FogSync::new` exist so external users get a deprecation window, but
//! *internal* code must use the builders — otherwise the shims' frozen
//! defaults fossilize inside the workspace and can never be retired.
//!
//! Flagged everywhere (lib, bin, tests, benches, examples) except inside
//! the `#[cfg(test)]` modules of the files that define them, which keep one
//! exercising test each so the shims stay compiled and behaviorally pinned
//! until removal.

use crate::lexer::is_path2;
use crate::source::SourceFile;

use super::Finding;

pub const NAME: &str = "deprecated-api";

/// (type, method, defining file, replacement)
const DEPRECATED: &[(&str, &str, &str, &str)] = &[
    (
        "Platform",
        "new",
        "crates/core/src/platform.rs",
        "Platform::builder(config).seed(seed).build()",
    ),
    (
        "FogSync",
        "new",
        "crates/fog/src/sync.rs",
        "FogSync::builder(node, cloud)…build()",
    ),
];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        for (ty, method, defining_file, replacement) in DEPRECATED {
            if !is_path2(tokens, i, ty, method) {
                continue;
            }
            let line = tokens[i].line;
            // The defining file's own unit tests pin the shim's behavior.
            if file.rel_path == *defining_file && file.is_test_line(line) {
                continue;
            }
            out.push(Finding::at(
                NAME,
                file,
                line,
                format!("internal caller of deprecated `{ty}::{method}`: use `{replacement}`"),
            ));
        }
    }
}
