//! Rule `deprecated-api`: compatibility shims exist so external users get
//! a deprecation window, but *internal* code must use the replacements —
//! otherwise the shims' frozen defaults fossilize inside the workspace and
//! can never be retired.
//!
//! Two shapes of shim are policed:
//!
//! - **Constructors** (`Platform::new`, `FogSync::new`, from PR 2): flagged
//!   everywhere except inside the `#[cfg(test)]` modules of the files that
//!   define them, which keep one exercising test each so the shims stay
//!   compiled and behaviorally pinned until removal.
//! - **String-keyed `Metrics` mutators** (`.incr(…)`, `.incr_by(…)`,
//!   `metrics.observe(…)`, from PR 4): the old registry hashes a string
//!   key per event and silently mints counters on typos. New
//!   instrumentation must register typed handles on `swamp_obs::Obs` and
//!   record through them. `Metrics` itself stays as a read-compat view.
//!   Mutator calls are flagged in non-test code everywhere except the
//!   defining file `crates/sim/src/metrics.rs`; test code keeps the shims
//!   pinned. `.observe(…)` / `.set_gauge(…)` are only flagged on a
//!   receiver literally named `metrics`, since `observe` is also the name
//!   of the *new* snapshot API (`platform.observe()`).

use crate::lexer::{is_ident, is_path2, is_punct};
use crate::source::SourceFile;

use super::Finding;

pub const NAME: &str = "deprecated-api";

/// (type, method, defining file, replacement)
const DEPRECATED: &[(&str, &str, &str, &str)] = &[
    (
        "Platform",
        "new",
        "crates/core/src/platform.rs",
        "Platform::builder(config).seed(seed).build()",
    ),
    (
        "FogSync",
        "new",
        "crates/fog/src/sync.rs",
        "FogSync::builder(node, cloud)…build()",
    ),
];

/// The string-keyed `Metrics` registry and its defining file. Methods in
/// [`ANY_RECEIVER_MUTATORS`] are unambiguous (no other workspace type has
/// them); methods in [`METRICS_RECEIVER_MUTATORS`] collide with the new
/// obs API names and are only flagged on a receiver named `metrics`.
const METRICS_DEFINING_FILE: &str = "crates/sim/src/metrics.rs";
const ANY_RECEIVER_MUTATORS: &[&str] = &["incr", "incr_by"];
const METRICS_RECEIVER_MUTATORS: &[&str] = &["observe", "set_gauge"];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        for (ty, method, defining_file, replacement) in DEPRECATED {
            if !is_path2(tokens, i, ty, method) {
                continue;
            }
            let line = tokens[i].line;
            // The defining file's own unit tests pin the shim's behavior.
            if file.rel_path == *defining_file && file.is_test_line(line) {
                continue;
            }
            out.push(Finding::at(
                NAME,
                file,
                line,
                format!("internal caller of deprecated `{ty}::{method}`: use `{replacement}`"),
            ));
        }
    }
    // `Metrics` mutator calls: `<recv> . <method> (`. The defining file
    // keeps its impl and pinning tests; test code elsewhere may exercise
    // the shims too (deprecation attrs still warn there at compile time).
    if file.rel_path == METRICS_DEFINING_FILE {
        return;
    }
    for i in 0..tokens.len() {
        if !is_punct(tokens, i, '.') || !is_punct(tokens, i + 2, '(') {
            continue;
        }
        let line = tokens[i].line;
        if file.is_test_line(line) {
            continue;
        }
        let any = ANY_RECEIVER_MUTATORS
            .iter()
            .any(|m| is_ident(tokens, i + 1, m));
        let named = METRICS_RECEIVER_MUTATORS
            .iter()
            .any(|m| is_ident(tokens, i + 1, m))
            && i > 0
            && is_ident(tokens, i - 1, "metrics");
        if any || named {
            out.push(Finding::at(
                NAME,
                file,
                line,
                "string-keyed `Metrics` mutator: register a typed handle on \
                 `swamp_obs::Obs` and record through it; `Metrics` is a \
                 read-compat view only"
                    .to_owned(),
            ));
        }
    }
}
