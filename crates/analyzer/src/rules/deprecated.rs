//! Rule `deprecated-api`: APIs that went through their deprecation window
//! and have been **removed** must never come back — not as new call sites
//! (the compiler already rejects those) and, more importantly, not as
//! fresh *definitions* re-introducing the old shape under the old name.
//! The rule bans the names themselves, so a revival fails CI in the same
//! commit that writes it.
//!
//! Three shapes are policed, everywhere — library, binary and test code
//! alike (the removal left nothing for tests to pin):
//!
//! - **Constructors** (`Platform::new`, `FogSync::new`, removed in PR 7
//!   after deprecation in PR 2): both types are builder-only; any
//!   qualified `Type::new` path is flagged.
//! - **String-keyed `Metrics` mutators** (`.incr(…)`, `.incr_by(…)`,
//!   removed in PR 7 after deprecation in PR 4): the old registry hashed a
//!   string key per event and silently minted counters on typos. The
//!   explicit setters (`set_counter`/`set_gauge`/`set_summary`) remain for
//!   building read-compat views; event-shaped mutation goes through typed
//!   `swamp_obs::Obs` handles. `.observe(…)` / `.set_gauge(…)` are only
//!   flagged on a receiver literally named `metrics`, since both names
//!   also belong to the *new* API surface (`platform.observe()`,
//!   snapshot-derived views).
//! - **Removed getters** (`.sync_health(…)`, `.acks_refused(…)`,
//!   `.metrics(…)`, removed in PR 7): superseded by the one observe
//!   surface — `degraded_mode()` plus the typed `sync.*` gauges, the
//!   `cloud.acks_refused` counter, and `observe()` /
//!   `ObsSnapshot::to_metrics` respectively. No workspace type may grow
//!   methods with these names again.
//!
//! A fourth shape is *deprecated* rather than removed — the raw store
//! accessors superseded in PR 9 by the typed query surface
//! (`Drive::query`): `.cloud_replica_mut(…)` on any receiver, and
//! `.context(…)` / `.history(…)` on receivers conventionally naming a
//! platform (`platform`, `p`, `shard`, `sp`). Existing call sites were
//! migrated in the same PR; this rule keeps new ones from appearing
//! during the deprecation window.

use crate::lexer::{is_ident, is_path2, is_punct};
use crate::source::SourceFile;

use super::Finding;

pub const NAME: &str = "deprecated-api";

/// (type, method, replacement) — removed constructors, banned as
/// qualified paths everywhere.
const REMOVED_CONSTRUCTORS: &[(&str, &str, &str)] = &[
    (
        "Platform",
        "new",
        "Platform::builder(config).seed(seed).build()",
    ),
    ("FogSync", "new", "FogSync::builder(node, cloud)…build()"),
];

/// (method, replacement) — removed methods whose names are unambiguous in
/// the workspace, banned as `.method(` on any receiver.
const REMOVED_ANY_RECEIVER: &[(&str, &str)] = &[
    (
        "incr",
        "register a typed Counter on `swamp_obs::Obs` and `inc` through it",
    ),
    (
        "incr_by",
        "register a typed Counter on `swamp_obs::Obs` and `inc_by` through it",
    ),
    (
        "sync_health",
        "`degraded_mode()` plus the `sync.pending` / `sync.in_flight` gauges in `observe()`",
    ),
    (
        "acks_refused",
        "the `cloud.acks_refused` counter in `observe()`",
    ),
    (
        "metrics",
        "`observe()` (use `ObsSnapshot::to_metrics` for a legacy `Metrics` view)",
    ),
];

/// Removed `Metrics` mutators whose names collide with the new obs API;
/// flagged only on a receiver literally named `metrics`.
const REMOVED_METRICS_RECEIVER: &[&str] = &["observe", "set_gauge"];

/// Raw read accessors deprecated in PR 9, superseded by the typed query
/// surface (`Drive::query`). Unlike the removed shapes above they still
/// exist — `#[deprecated]` covers compiled code — but this rule stops
/// *new* call sites at CI before the next PR removes them.
/// `cloud_replica_mut` is unambiguous workspace-wide and banned on any
/// receiver.
const DEPRECATED_QUERY_ANY_RECEIVER: &[(&str, &str)] = &[(
    "cloud_replica_mut",
    "`Drive::query(QueryRequest::ReplicaSeqs)` for reads; mutation belongs inside the platform",
)];

/// `context`/`history` also name live APIs (`CloudStore::history`,
/// broker/query contexts), so — like the `metrics` receiver check — they
/// are flagged only on receivers conventionally naming a platform.
const DEPRECATED_PLATFORM_RECEIVER: &[(&str, &str)] = &[
    (
        "context",
        "`Drive::query(QueryRequest::Last { … })`, or the platform's public `broker` surface",
    ),
    (
        "history",
        "`Drive::query(QueryRequest::Range / SeriesDump / …)`, or the public `history` field",
    ),
];

/// Receiver idents the platform conventionally binds to in this
/// workspace. `self` is deliberately absent: the defining impl in
/// `crates/core/src/platform.rs` may keep delegating internally.
const PLATFORM_RECEIVERS: &[&str] = &["platform", "p", "shard", "sp"];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        for (ty, method, replacement) in REMOVED_CONSTRUCTORS {
            if !is_path2(tokens, i, ty, method) {
                continue;
            }
            out.push(Finding::at(
                NAME,
                file,
                tokens[i].line,
                format!("removed API `{ty}::{method}` must not come back: use `{replacement}`"),
            ));
        }
    }
    // Method-shaped bans: `<recv> . <method> (`.
    for i in 0..tokens.len() {
        if !is_punct(tokens, i, '.') || !is_punct(tokens, i + 2, '(') {
            continue;
        }
        let line = tokens[i].line;
        if let Some((method, replacement)) = REMOVED_ANY_RECEIVER
            .iter()
            .find(|(m, _)| is_ident(tokens, i + 1, m))
        {
            out.push(Finding::at(
                NAME,
                file,
                line,
                format!("removed method `.{method}(…)` must not come back: use {replacement}"),
            ));
            continue;
        }
        let named = REMOVED_METRICS_RECEIVER
            .iter()
            .any(|m| is_ident(tokens, i + 1, m))
            && i > 0
            && is_ident(tokens, i - 1, "metrics");
        if named {
            out.push(Finding::at(
                NAME,
                file,
                line,
                "removed string-keyed `Metrics` mutation: register a typed \
                 handle on `swamp_obs::Obs` and record through it; `Metrics` \
                 is a read-compat view built by `ObsSnapshot::to_metrics`"
                    .to_owned(),
            ));
            continue;
        }
        if let Some((method, replacement)) = DEPRECATED_QUERY_ANY_RECEIVER
            .iter()
            .find(|(m, _)| is_ident(tokens, i + 1, m))
        {
            out.push(Finding::at(
                NAME,
                file,
                line,
                format!(
                    "deprecated raw accessor `.{method}(…)` must not gain new callers: \
                     use {replacement}"
                ),
            ));
            continue;
        }
        let on_platform = i > 0
            && PLATFORM_RECEIVERS
                .iter()
                .any(|recv| is_ident(tokens, i - 1, recv));
        if on_platform {
            if let Some((method, replacement)) = DEPRECATED_PLATFORM_RECEIVER
                .iter()
                .find(|(m, _)| is_ident(tokens, i + 1, m))
            {
                out.push(Finding::at(
                    NAME,
                    file,
                    line,
                    format!(
                        "deprecated raw accessor `.{method}(…)` must not gain new callers: \
                         use {replacement}"
                    ),
                ));
            }
        }
    }
}
