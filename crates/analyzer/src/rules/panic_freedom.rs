//! Rule `panic-freedom`: no reachable panic in any library target.
//!
//! PR 2 introduced the unified `swamp_core::Error` Result API and denied
//! `unwrap`/`panic` in the core and fog lib targets via in-source clippy
//! attributes; this rule extends the contract to *every* lib target so the
//! platform path can never die on a reachable error.
//!
//! Flagged in non-test library code:
//!
//! - `.unwrap()` — always (convert to `?`, a match, or a documented
//!   `expect`).
//! - `.expect(…)` — unless the enclosing `fn` documents the invariant with
//!   a rustdoc `# Panics` section, or the receiver is `self` in a file
//!   that defines its own `fn expect(` (a parser combinator, not
//!   `Option::expect`).
//! - `panic!`, `unreachable!`, `todo!`, `unimplemented!` — always
//!   (restructure, or allowlist with a written justification).
//!
//! `assert!`/`debug_assert!` stay legal: they state invariants whose
//! violation is a bug, the same contract as arithmetic overflow checks.

use crate::lexer::{is_punct, Tok};
use crate::source::{SourceFile, TargetKind};

use super::Finding;

pub const NAME: &str = "panic-freedom";

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.kind != TargetKind::Lib {
        return;
    }
    let tokens = &file.tokens;
    for i in 0..tokens.len() {
        let Tok::Ident(name) = &tokens[i].tok else {
            continue;
        };
        let line = tokens[i].line;
        if file.is_test_line(line) {
            continue;
        }
        if name == "unwrap"
            && i >= 1
            && is_punct(tokens, i - 1, '.')
            && is_punct(tokens, i + 1, '(')
        {
            out.push(Finding::at(
                NAME,
                file,
                line,
                "`.unwrap()` in library code: use `?`, a match, or a documented `expect`"
                    .to_owned(),
            ));
            continue;
        }
        if name == "expect"
            && i >= 1
            && is_punct(tokens, i - 1, '.')
            && is_punct(tokens, i + 1, '(')
        {
            if file.in_panics_documented_fn(line) {
                continue;
            }
            // `self.expect(…)` where the file defines `fn expect(` is the
            // type's own method (e.g. the JSON parser combinator).
            let receiver_is_self = i >= 2
                && matches!(tokens.get(i - 2).map(|t| &t.tok),
                    Some(Tok::Ident(r)) if r == "self");
            if receiver_is_self && file.defines_expect_method {
                continue;
            }
            out.push(Finding::at(
                NAME,
                file,
                line,
                "`.expect(…)` without a `# Panics` doc section on the enclosing fn: \
                 document the invariant, or handle the error"
                    .to_owned(),
            ));
            continue;
        }
        if PANIC_MACROS.contains(&name.as_str()) && is_punct(tokens, i + 1, '!') {
            out.push(Finding::at(
                NAME,
                file,
                line,
                format!("`{name}!` in library code: restructure to return an error"),
            ));
        }
    }
}
